"""Mining datasets with many rows: the hybrid column-then-row strategy.

Section 8 of the paper sketches how TopkRGS extends beyond microarray
shapes (few rows, many columns): partition the data column-wise first,
row-enumerate within each partition, and aggregate the per-row top-k
lists.  This example runs the hybrid miner against the direct one on the
ovarian-cancer workload (210 rows — the paper's tallest) and on a
deliberately tall synthetic dataset, and demonstrates the disk-spill
mode that bounds resident memory by the largest partition.

Run:  python examples/tall_data_mining.py
"""

import tempfile
import time

from repro.core import mine_topk, mine_topk_hybrid, relative_minsup
from repro.data import random_discretized_dataset
from repro.data.loaders import load_benchmark


def compare(dataset, consequent, minsup, k, label):
    start = time.perf_counter()
    direct = mine_topk(dataset, consequent, minsup, k=k)
    direct_seconds = time.perf_counter() - start

    start = time.perf_counter()
    hybrid = mine_topk_hybrid(dataset, consequent, minsup, k=k)
    hybrid_seconds = time.perf_counter() - start

    agree = all(
        [(g.confidence, g.support) for g in direct.per_row[row]]
        == [(g.confidence, g.support) for g in hybrid.per_row[row]]
        for row in direct.per_row
    )
    stats = hybrid.hybrid_stats
    print(f"{label}:")
    print(f"  direct: {direct_seconds:.3f}s, "
          f"{direct.stats.nodes_visited} nodes")
    print(f"  hybrid: {hybrid_seconds:.3f}s, "
          f"{hybrid.stats.nodes_visited} nodes across "
          f"{stats.n_partitions} partitions "
          f"(largest holds {stats.max_partition_rows}/{dataset.n_rows} rows)")
    print(f"  outputs identical: {agree}")
    return hybrid


def main() -> None:
    # The paper's tallest dataset: 210 ovarian-cancer samples.
    benchmark = load_benchmark("OC", scale=0.05)
    items = benchmark.train_items
    minsup = relative_minsup(items, 1, 0.8)
    compare(items, 1, minsup, k=2, label=f"OC x0.05 ({items.n_rows} rows)")

    # A synthetic tall-and-narrow dataset.
    tall = random_discretized_dataset(
        n_rows=60, n_items=14, density=0.3, seed=9, name="tall"
    )
    compare(tall, 1, minsup=3, k=2, label="synthetic 60x14")

    # Disk-spill mode: partitions are written out and read back one at a
    # time, so peak memory is one partition, not the table.
    with tempfile.TemporaryDirectory() as spill:
        result = mine_topk_hybrid(
            tall, 1, minsup=3, k=2, spill_dir=spill
        )
        import pathlib

        n_files = len(list(pathlib.Path(spill).glob("partition_*.json")))
        print(f"\ndisk-spill run: {n_files} partition files written, "
              f"{len(result.covered_rows())} rows covered")


if __name__ == "__main__":
    main()
