"""Tests for the class-blind binning discretizers and the entropy ablation."""

import numpy as np
import pytest

from repro.data.binning import BinningDiscretizer
from repro.data.dataset import GeneExpressionDataset


def dataset(n=40, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.array([0, 1] * (n // 2))
    values = rng.normal(size=(n, 4))
    values[:, 0] += labels * 3.0
    return GeneExpressionDataset(values, labels)


class TestValidation:
    def test_n_bins(self):
        with pytest.raises(ValueError, match="n_bins"):
            BinningDiscretizer(n_bins=1)

    def test_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            BinningDiscretizer(strategy="magic")

    def test_transform_unfitted(self):
        with pytest.raises(RuntimeError, match="fitted"):
            BinningDiscretizer().transform(dataset())


class TestEqualFrequency:
    def test_all_genes_kept(self):
        ds = dataset()
        disc = BinningDiscretizer(n_bins=2).fit(ds)
        assert disc.n_selected_genes == ds.n_genes

    def test_median_split_balances_bins(self):
        ds = dataset()
        items = BinningDiscretizer(n_bins=2).fit_transform(ds)
        counts = [0] * items.n_items
        for row in items.rows:
            for item in row:
                counts[item] += 1
        # A 2-bin frequency split puts about half the samples in each bin.
        for item in items.items:
            assert abs(counts[item.item_id] - ds.n_samples / 2) <= 1

    def test_one_item_per_gene_per_row(self):
        ds = dataset()
        items = BinningDiscretizer(n_bins=3).fit_transform(ds)
        for row in items.rows:
            genes = [items.items[i].gene_index for i in row]
            assert len(genes) == len(set(genes)) == ds.n_genes

    def test_values_fall_in_intervals(self):
        ds = dataset()
        disc = BinningDiscretizer(n_bins=3).fit(ds)
        items = disc.transform(ds)
        for sample, row in enumerate(items.rows):
            for item_id in row:
                item = items.items[item_id]
                assert item.contains(ds.values[sample, item.gene_index])


class TestEqualWidth:
    def test_cuts_evenly_spaced(self):
        ds = dataset()
        disc = BinningDiscretizer(n_bins=4, strategy="width").fit(ds)
        for cuts in disc.cuts_.values():
            gaps = np.diff(cuts)
            assert np.allclose(gaps, gaps[0])

    def test_constant_gene_dropped(self):
        values = np.column_stack([np.ones(10), np.arange(10.0)])
        ds = GeneExpressionDataset(values, [0, 1] * 5)
        disc = BinningDiscretizer(n_bins=2, strategy="width").fit(ds)
        assert disc.selected_genes_ == [1]


class TestEntropyAblation:
    def test_entropy_discretization_finds_stronger_groups(self):
        """The paper's preprocessing matters: class-aligned cuts yield
        rule groups with higher confidence than class-blind bins."""
        from repro.core.topk_miner import mine_topk
        from repro.data.discretize import EntropyDiscretizer
        from repro.data.synthetic import generate_paper_dataset

        train, _ = generate_paper_dataset("ALL", scale=0.03)
        entropy_items = EntropyDiscretizer().fit_transform(train)
        binned_items = BinningDiscretizer(n_bins=2).fit_transform(
            train.select_genes(
                EntropyDiscretizer().fit(train).selected_genes_
            )
        )
        ms = 19  # 0.7 of the 27 class-1 rows
        entropy_top = mine_topk(entropy_items, 1, ms, k=1)
        binned_top = mine_topk(binned_items, 1, ms, k=1)

        def mean_conf(result):
            confs = [
                groups[0].confidence
                for groups in result.per_row.values()
                if groups
            ]
            return sum(confs) / len(confs) if confs else 0.0

        assert mean_conf(entropy_top) >= mean_conf(binned_top)
