"""LatencyHistogram bucketing (bisect fast path) and Telemetry registry."""

from __future__ import annotations

import pytest

from repro.service.telemetry import DEFAULT_BUCKETS, LatencyHistogram, Telemetry


class TestLatencyHistogram:
    def test_boundary_semantics(self):
        """An observation equal to an edge lands in that edge's bucket."""
        histogram = LatencyHistogram(buckets=(0.1, 1.0, float("inf")))
        histogram.observe(0.1)   # == first edge
        histogram.observe(0.05)  # below first edge
        histogram.observe(0.5)
        histogram.observe(1.0)   # == second edge
        histogram.observe(100.0)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5

    def test_matches_linear_scan_reference(self):
        """The bisect implementation reproduces the original linear scan."""
        histogram = LatencyHistogram()
        samples = [
            0.0, 0.0005, 0.001, 0.0011, 0.004, 0.005, 0.03, 0.05, 0.07,
            0.1, 0.3, 0.5, 0.9, 1.0, 2.5, 5.0, 10.0, 30.0, 31.0, 1e6,
        ]
        reference = [0] * len(DEFAULT_BUCKETS)
        for seconds in samples:
            histogram.observe(seconds)
            for index, edge in enumerate(DEFAULT_BUCKETS):
                if seconds <= edge:
                    reference[index] += 1
                    break
        assert histogram.counts == reference

    def test_max_seconds(self):
        histogram = LatencyHistogram()
        assert histogram.max_seconds == 0.0
        histogram.observe(0.2)
        histogram.observe(1.5)
        histogram.observe(0.4)
        assert histogram.max_seconds == 1.5
        assert histogram.as_dict()["max_seconds"] == 1.5

    def test_as_dict_shape(self):
        histogram = LatencyHistogram(buckets=(0.5, float("inf")))
        histogram.observe(0.25)
        payload = histogram.as_dict()
        assert payload["count"] == 1
        assert payload["sum_seconds"] == 0.25
        assert payload["mean_seconds"] == 0.25
        assert payload["max_seconds"] == 0.25
        assert payload["buckets"] == {"0.5": 1, "+inf": 0}

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(1.0, 0.5))


class TestTelemetry:
    def test_observe_and_snapshot(self):
        telemetry = Telemetry()
        telemetry.increment("requests")
        telemetry.observe("latency", 0.002)
        telemetry.observe("latency", 0.8)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["requests"] == 1
        latency = snapshot["latency"]["latency"]
        assert latency["count"] == 2
        assert latency["max_seconds"] == 0.8
