"""Tests pinning Figure 1(b)-(d) with the explicit transposed table."""

import pytest

from repro.core.transposed import TransposedTable

A, B, C, D, E, F, G, H, O, P = range(10)


@pytest.fixture
def tt(figure1):
    return TransposedTable.from_dataset(figure1)


class TestFigure1b:
    """TT — the root transposed table (0-based row ids)."""

    def test_tuples_match_figure(self, tt):
        assert tt.tuples[A] == (0, 1)
        assert tt.tuples[B] == (0, 1)
        assert tt.tuples[C] == (0, 1, 2, 3)
        assert tt.tuples[D] == (0, 2, 3)
        assert tt.tuples[E] == (0, 2, 3, 4)
        assert tt.tuples[F] == (2, 3, 4)
        assert tt.tuples[G] == (2, 3, 4)
        assert tt.tuples[H] == (4,)
        assert tt.tuples[O] == (1, 4)
        assert tt.tuples[P] == (1,)

    def test_all_items_present(self, tt):
        assert tt.items() == list(range(10))

    def test_not_projected(self, tt):
        assert tt.projected_on == frozenset()


class TestFigure1c:
    """TT|_{1} — projection on row r1 (id 0)."""

    def test_items_are_r1s(self, tt):
        projected = tt.project([0])
        assert projected.items() == [A, B, C, D, E]

    def test_remaining_rows(self, tt):
        projected = tt.project([0])
        assert projected.tuples[A] == (1,)
        assert projected.tuples[B] == (1,)
        assert projected.tuples[C] == (1, 2, 3)
        assert projected.tuples[D] == (2, 3)
        assert projected.tuples[E] == (2, 3, 4)


class TestFigure1d:
    """TT|_{1,3} — projection on rows r1, r3 (ids 0, 2)."""

    def test_items(self, tt):
        projected = tt.project([0, 2])
        assert projected.items() == [C, D, E]

    def test_remaining_rows(self, tt):
        projected = tt.project([0, 2])
        assert projected.tuples[C] == (3,)
        assert projected.tuples[D] == (3,)
        assert projected.tuples[E] == (3, 4)

    def test_incremental_projection_equivalent(self, tt):
        direct = tt.project([0, 2])
        chained = tt.project([0]).project([2])
        assert direct.tuples == chained.tuples
        assert direct.projected_on == chained.projected_on


class TestOperations:
    def test_row_frequencies(self, tt):
        # Tuples c:(3,), d:(3,), e:(3,4): row 3 in all three, row 4 in e.
        projected = tt.project([0, 2])
        assert projected.row_frequencies() == {3: 3, 4: 1}

    def test_closure_extension_finds_r4(self, tt):
        # I({r1, r3}) = cde and r4 contains cde, so r4 (id 3) joins X.
        projected = tt.project([0, 2])
        assert projected.closure_extension() == [3]

    def test_closure_extension_empty_when_tuple_exhausted(self, tt):
        # Projecting on r1, r2: items a, b, c; a and b have no rows
        # after r2, so nothing can be common to all tuples.
        projected = tt.project([0, 1])
        assert projected.items() == [A, B, C]
        assert projected.closure_extension() == []

    def test_project_empty_set_is_identity(self, tt):
        assert tt.project([]) is tt

    def test_render(self, tt, figure1):
        text = tt.project([0, 2]).render(
            item_namer=lambda i: figure1.item_label(i), row_offset=1
        )
        assert "c: {4}" in text
        assert "e: {4, 5}" in text


class TestAsExecutableSpecification:
    """TransposedTable is the spec the engines implement; check they agree."""

    def test_closure_matches_bitset_closure(self):
        from repro.core.bitset import from_indices, to_indices
        from repro.data.synthetic import random_discretized_dataset

        for seed in range(6):
            ds = random_discretized_dataset(9, 8, density=0.5, seed=seed)
            tt = TransposedTable.from_dataset(ds)
            for first in range(ds.n_rows):
                projected = tt.project([first])
                items = frozenset(projected.items())
                if not items:
                    continue
                # Spec: X ∪ closure_extension == R(I(X)).
                support = ds.support_set(items)
                extension = [
                    row for row in to_indices(support) if row > first
                ]
                # closure_extension only sees rows after `first`; earlier
                # rows in the support set are the backward-pruning case.
                assert projected.closure_extension() == extension

    def test_projected_items_match_common_items(self):
        from repro.core.bitset import from_indices
        from repro.data.synthetic import random_discretized_dataset

        for seed in range(6):
            ds = random_discretized_dataset(9, 8, density=0.5, seed=seed)
            tt = TransposedTable.from_dataset(ds)
            for rows in ([0, 1], [2, 5], [1, 3, 6]):
                projected = tt.project(rows)
                expected = ds.common_items(from_indices(rows))
                assert frozenset(projected.items()) == expected
