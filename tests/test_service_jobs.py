"""Tests for the mining job queue: polling, cancellation, shutdown."""

import threading
import time

import pytest

from repro.core.topk_miner import mine_topk
from repro.data import random_discretized_dataset
from repro.service.jobs import JobCancelled, JobQueue


def _nondaemon_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.is_alive()
        and not thread.daemon
        and thread is not threading.main_thread()
    ]


class TestLifecycle:
    def test_submit_poll_result(self):
        queue = JobQueue(workers=1)
        try:
            job = queue.submit(lambda job: 40 + 2)
            assert job.wait(5.0)
            assert job.status == "done"
            assert job.result == 42
            assert queue.get(job.job_id) is job
        finally:
            queue.shutdown()

    def test_failure_captures_traceback(self):
        queue = JobQueue(workers=1)
        try:
            job = queue.submit(lambda job: 1 / 0)
            assert job.wait(5.0)
            assert job.status == "failed"
            assert "ZeroDivisionError" in job.error
        finally:
            queue.shutdown()

    def test_unknown_job_raises(self):
        queue = JobQueue(workers=1)
        try:
            with pytest.raises(KeyError):
                queue.get("job-999")
        finally:
            queue.shutdown()

    def test_describe_counts_by_status(self):
        queue = JobQueue(workers=1)
        try:
            job = queue.submit(lambda job: None)
            assert job.wait(5.0)
            summary = queue.describe()
            assert summary["workers"] == 1
            assert summary["by_status"].get("done") == 1
        finally:
            queue.shutdown()


class TestCancellation:
    def test_queued_job_cancelled_immediately(self):
        release = threading.Event()
        queue = JobQueue(workers=1)
        try:
            blocker = queue.submit(lambda job: release.wait(10.0))
            queued = queue.submit(lambda job: "never runs")
            cancelled = queue.cancel(queued.job_id)
            assert cancelled.status == "cancelled"
            release.set()
            assert blocker.wait(5.0)
            assert blocker.status == "done"
            # The cancelled job's function never executed.
            assert queued.result is None
        finally:
            release.set()
            queue.shutdown()

    def test_running_job_acknowledges_cancel(self):
        started = threading.Event()

        def work(job):
            started.set()
            if job.cancel_event.wait(10.0):
                raise JobCancelled("stopped by test")
            return "finished"

        queue = JobQueue(workers=1)
        try:
            job = queue.submit(work)
            assert started.wait(5.0)
            queue.cancel(job.job_id)
            assert job.wait(5.0)
            assert job.status == "cancelled"
        finally:
            queue.shutdown()

    def test_running_mining_job_stops_via_cancel_event(self):
        # A dense random dataset whose full enumeration takes ~15s —
        # far longer than the cancellation round-trip.
        dataset = random_discretized_dataset(
            n_rows=56, n_items=200, density=0.95, seed=3
        )
        started = threading.Event()

        def work(job):
            started.set()
            return mine_topk(dataset, 1, 1, k=100, cancel=job.cancel_event)

        queue = JobQueue(workers=1)
        try:
            job = queue.submit(work)
            assert started.wait(5.0)
            queue.cancel(job.job_id)
            assert job.wait(30.0)
            assert job.status == "cancelled"
            # The miner returned partial per-row lists, budget-overrun
            # style, rather than raising.
            assert job.result is not None
            assert job.result.stats.completed is False
        finally:
            queue.shutdown()


class TestShutdown:
    def test_shutdown_cancels_queued_and_running(self):
        started = threading.Event()

        def slow(job):
            started.set()
            if job.cancel_event.wait(10.0):
                raise JobCancelled()
            return "finished"

        queue = JobQueue(workers=1)
        running = queue.submit(slow)
        queued = queue.submit(lambda job: "never runs")
        assert started.wait(5.0)
        queue.shutdown()
        assert running.status == "cancelled"
        assert queued.status == "cancelled"
        with pytest.raises(RuntimeError):
            queue.submit(lambda job: None)

    def test_shutdown_leaves_no_nondaemon_threads(self):
        before = set(_nondaemon_threads())
        queue = JobQueue(workers=3)
        for _ in range(5):
            queue.submit(lambda job: time.sleep(0.01))
        queue.shutdown()
        queue.shutdown()  # idempotent
        leaked = [t for t in _nondaemon_threads() if t not in before]
        assert leaked == []
