"""Hybrid column-then-row enumeration (the Section 8 extension).

The paper's row enumeration assumes few rows and many columns.  Its
discussion section sketches the extension to *tall* datasets: "utilizing
column-wise mining first, then switching to row-wise enumeration in later
levels to mine top-k covering rules in the partition formed by
column-wise mining, and finally aggregating the top-k covering rules in
all partitions."

This module implements that sketch as the production tall path:

1. **Column phase** — one partition per frequent item ``i``: the rows
   containing ``i``, with the item universe restricted to *frequent*
   items ``j >= i``.  Because every antecedent mined inside the
   partition contains ``i``, its support set lies entirely inside the
   partition, so supports and confidences measured locally are exact
   global values.  Partitions are built by a streaming two-pass
   :class:`_PartitionBuilder` over a replayable
   :class:`~repro.data.streaming.RowChunkSource` — the full cohort is
   never resident; pass one accumulates only the per-item row bitsets
   and labels, pass two buffers partition rows under a cell budget and
   spills the overflow to per-partition JSONL files in a unique
   per-run directory (the paper's "database projection (disk-based)
   techniques" route).
2. **Row phase** — ordinary MineTopkRGS row enumeration inside each
   partition, serial in anchor order or fanned out over the warm
   :class:`~repro.parallel.MinerPool` (partitions are independent,
   exactly the sharding shape the pool already supervises: worker
   crashes are retried, budget/cancel ride the shared slot array).
3. **Aggregation** — each discovered group is attributed to the
   partition of its closure's *smallest* item (so every group is
   produced exactly once) and offered into global per-row top-k lists.
   The local→global translation is one backend ``intersect_many`` fold
   over the pass-one item bitsets (the antecedent contains the anchor,
   so the fold *is* the group's global row set), and the canonicality
   test is a batched ``popcount_many`` over the lower frequent anchors
   — no per-bit Python loops.

The output is identical to :func:`repro.core.topk_miner.mine_topk` (the
cross-validation tests assert this); the benefit is that each row
enumeration runs over a partition instead of the whole table, and peak
memory is bounded by the cell budget rather than the cohort size.

Why the local closure needs no re-derivation: any item common to an
emitted group's rows has consequent-class support >= the group's
support >= minsup, hence is globally frequent; restricted to ids >= the
anchor such items are in the partition's universe and therefore already
in the local closure, and a common frequent item *below* the anchor is
exactly what the canonicality test rejects.  So for every group that
survives aggregation, the partition-local antecedent *is* the full
global closure.
"""

from __future__ import annotations

import json
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from .backends import resolve_backend
from .bitset import iter_indices, popcount
from .enumeration import MinerStats
from .rules import RuleGroup, TopKList
from .topk_miner import TopkResult, mine_topk

if TYPE_CHECKING:  # pragma: no cover - imports are for annotations only
    from ..data.dataset import DiscretizedDataset
    from ..data.streaming import RowChunkSource

__all__ = [
    "AUTO_HYBRID_ROWS",
    "AUTO_STRATEGY",
    "HybridPartitionRequest",
    "HybridStats",
    "PartitionCatalog",
    "STRATEGIES",
    "auto_strategy_stats",
    "mine_hybrid_partition",
    "mine_topk_hybrid",
    "plan_auto_strategy",
]

# Mining strategies accepted by ``mine_topk(strategy=...)`` and the
# service's ``"strategy"`` field; AUTO_STRATEGY resolves per dataset.
STRATEGIES = ("direct", "hybrid")
AUTO_STRATEGY = "auto"

# The planner rung for strategy="auto", the row-count sibling of
# ``backends.AUTO_TALL_ROWS``: below this row count the direct miner's
# single enumeration wins; at or above it the bounded-memory hybrid
# path takes over (tall-16k and up under the committed cohorts).
AUTO_HYBRID_ROWS = 8192

_AUTO_CHOICES = {"direct": 0, "hybrid": 0}


def plan_auto_strategy(n_rows: int) -> str:
    """Resolve ``strategy="auto"`` from the row count (observable)."""
    choice = "hybrid" if n_rows >= AUTO_HYBRID_ROWS else "direct"
    _AUTO_CHOICES[choice] += 1
    return choice


def auto_strategy_stats() -> dict:
    """Cumulative ``strategy="auto"`` choices, for honest reporting."""
    return dict(_AUTO_CHOICES)


@dataclass
class HybridStats:
    """Aggregate statistics of a hybrid run.

    ``completed`` is the honesty flag: False as soon as any partition
    hit a budget or the run was cancelled/timed out between partitions
    (``n_skipped_partitions`` counts the ones never mined).  The
    streaming builder reports ``total_cells`` (the full-matrix size,
    summed over pass one) against ``peak_resident_cells`` (the most
    partition cells ever buffered in memory) and
    ``spilled_partitions`` — the "never materializes the cohort" claim,
    measured rather than asserted.
    """

    n_partitions: int = 0
    n_skipped_partitions: int = 0
    total_nodes: int = 0
    max_partition_rows: int = 0
    completed: bool = True
    backend: str = "int"
    n_jobs: int = 1
    total_cells: int = 0
    peak_resident_cells: int = 0
    spilled_partitions: int = 0


class PartitionCatalog:
    """Item catalog + class names shared by every partition job.

    This is the ``dataset`` payload of the pool's ``"hybrid"`` job kind:
    pickled once per run (the per-partition rows travel in the
    requests), weak-keyed by the payload cache like any dataset.
    """

    __slots__ = ("items", "class_names", "name", "__weakref__")

    def __init__(self, items, class_names, name: str) -> None:
        self.items = list(items)
        self.class_names = list(class_names)
        self.name = name


@dataclass(frozen=True)
class HybridPartitionRequest:
    """One hybrid partition mine, shippable to a pool worker.

    ``rows`` holds the resident tail (tuples of frequent item ids
    ``>= anchor``, in global row order); rows spilled by the builder are
    read back from ``spill_path`` (JSONL, one ``[label, items]`` line
    per row, written in global row order before the resident tail).
    ``backend`` is the resolved backend *name*, pinned by the parent so
    every partition — and a worker's environment — resolves identically
    to what :func:`~repro.core.topk_miner.mine_topk` would pick for the
    full cohort.
    """

    anchor: int
    consequent: int
    minsup: int
    k: int = 1
    engine: str = "bitset"
    initialize_single_items: bool = True
    dynamic_minsup: bool = True
    use_topk_pruning: bool = True
    node_budget: Optional[int] = None
    backend: Optional[str] = None
    rows: tuple = ()
    labels: tuple = ()
    spill_path: Optional[str] = None


def _request_rows(
    request: HybridPartitionRequest,
) -> tuple[list[frozenset[int]], list[int]]:
    """Materialize one partition's rows: spilled prefix, resident tail."""
    rows: list[frozenset[int]] = []
    labels: list[int] = []
    if request.spill_path is not None:
        with open(request.spill_path, "r", encoding="utf-8") as handle:
            for line in handle:
                label, items = json.loads(line)
                rows.append(frozenset(items))
                labels.append(int(label))
    rows.extend(frozenset(row) for row in request.rows)
    labels.extend(request.labels)
    return rows, labels


def mine_hybrid_partition(
    request: HybridPartitionRequest,
    catalog: PartitionCatalog,
    cancel=None,
    time_budget: Optional[float] = None,
):
    """Mine one partition; returns ``(payload, stats)``.

    Shared by the serial loop and the pool workers (via the ``"hybrid"``
    job kind of :func:`repro.parallel._mine_shard`, which bridges the
    pool's slot cancellation and the degraded path's deadline into
    ``cancel``/``time_budget`` here).  The payload is a tuple of
    ``(sorted antecedent, support, confidence)`` triples — supports
    measured inside the partition are exact global values, so the
    parent only re-derives row sets, never counters.
    """
    from ..data.dataset import DiscretizedDataset

    rows, labels = _request_rows(request)
    partition = DiscretizedDataset(
        rows,
        labels,
        catalog.items,
        class_names=list(catalog.class_names),
        name=f"{catalog.name}|{request.anchor}",
    )
    result = mine_topk(
        partition,
        request.consequent,
        request.minsup,
        k=request.k,
        engine=request.engine,
        initialize_single_items=request.initialize_single_items,
        dynamic_minsup=request.dynamic_minsup,
        use_topk_pruning=request.use_topk_pruning,
        node_budget=request.node_budget,
        time_budget=time_budget,
        cancel=cancel,
        backend=request.backend,
    )
    payload = tuple(
        (tuple(sorted(group.antecedent)), group.support, group.confidence)
        for group in result.unique_groups()
    )
    return payload, result.stats


@dataclass
class _Partition:
    """One anchor's rows while the builder accumulates them."""

    anchor: int
    rows: list = field(default_factory=list)
    labels: list = field(default_factory=list)
    resident_cells: int = 0
    spill_path: Optional[Path] = None
    n_spilled_rows: int = 0

    @property
    def n_rows(self) -> int:
        return self.n_spilled_rows + len(self.rows)


class _PartitionBuilder:
    """Two streaming passes over a replayable chunk source.

    Pass one (:meth:`scan`) folds every chunk into per-item row bitsets,
    the label list, and the cell count — O(items) memory.  Pass two
    (:meth:`build`) re-streams the chunks and appends each row's
    frequent-item suffixes to their anchor partitions; whenever the
    buffered cells exceed ``max_resident_cells`` at a chunk boundary,
    the largest partitions are flushed to append-mode JSONL files until
    the budget holds again.  Spill files live in the caller's unique
    per-run directory and record rows in global row order, so a
    partition reads back exactly as if it had been built in memory.

    Restricting partition rows to *frequent* items >= the anchor is an
    exact optimization: a globally infrequent item is infrequent in
    every partition too, so the per-partition mining view would discard
    it anyway — dropping it here only shrinks the buffers.
    """

    def __init__(
        self,
        source: "RowChunkSource",
        consequent: int,
        minsup: int,
        run_dir: Optional[Path],
        max_resident_cells: Optional[int],
    ) -> None:
        self.source = source
        self.consequent = consequent
        self.minsup = minsup
        self.run_dir = run_dir
        self.max_resident_cells = max_resident_cells
        self.n_rows = 0
        self.total_cells = 0
        self.labels: list[int] = []
        self.item_rows: list[int] = []
        self.class_mask = 0
        self.frequent: list[int] = []
        self.partitions: list[_Partition] = []
        self.peak_resident_cells = 0

    def scan(self) -> None:
        """Pass one: item bitsets, class mask, labels, cell count."""
        item_rows = [0] * len(self.source.items)
        labels: list[int] = []
        total_cells = 0
        row_index = 0
        for rows, chunk_labels in self.source.chunks():
            for row in rows:
                mark = 1 << row_index
                for item in row:
                    item_rows[item] |= mark
                total_cells += len(row)
                row_index += 1
            labels.extend(int(label) for label in chunk_labels)
        if len(labels) != row_index:
            raise ValueError(
                f"chunk source yielded {len(labels)} labels for "
                f"{row_index} rows"
            )
        class_mask = 0
        for row, label in enumerate(labels):
            if label == self.consequent:
                class_mask |= 1 << row
        self.item_rows = item_rows
        self.labels = labels
        self.n_rows = row_index
        self.total_cells = total_cells
        self.class_mask = class_mask
        # Frequent items by consequent-class support (Figure 3 step 1).
        self.frequent = [
            item
            for item in range(len(item_rows))
            if popcount(item_rows[item] & class_mask) >= self.minsup
        ]

    def build(self) -> None:
        """Pass two: accumulate per-anchor partitions under the budget."""
        frequent_set = set(self.frequent)
        partitions = {anchor: _Partition(anchor) for anchor in self.frequent}
        resident = 0
        peak = 0
        for rows, chunk_labels in self.source.chunks():
            for row, label in zip(rows, chunk_labels):
                kept = sorted(item for item in row if item in frequent_set)
                for position, anchor in enumerate(kept):
                    suffix = tuple(kept[position:])
                    partition = partitions[anchor]
                    partition.rows.append(suffix)
                    partition.labels.append(int(label))
                    partition.resident_cells += len(suffix)
                    resident += len(suffix)
            # Peak is sampled before the flush: it measures what this
            # process actually had buffered at the chunk boundary.
            peak = max(peak, resident)
            if (
                self.max_resident_cells is not None
                and resident > self.max_resident_cells
            ):
                resident = self._flush(partitions, resident)
        self.peak_resident_cells = peak
        self.partitions = [partitions[anchor] for anchor in self.frequent]

    def _flush(self, partitions: dict, resident: int) -> int:
        """Spill largest-first until the budget holds again."""
        by_size = sorted(
            partitions.values(),
            key=lambda partition: partition.resident_cells,
            reverse=True,
        )
        for partition in by_size:
            if resident <= self.max_resident_cells:
                break
            if partition.resident_cells == 0:
                break
            resident -= self._spill(partition)
        return resident

    def _spill(self, partition: _Partition) -> int:
        if self.run_dir is None:
            raise ValueError(
                "max_resident_cells requires spill_dir: the builder has "
                "nowhere to flush the overflow"
            )
        if partition.spill_path is None:
            partition.spill_path = (
                self.run_dir / f"p{partition.anchor:05d}.jsonl"
            )
        with partition.spill_path.open("a", encoding="utf-8") as handle:
            for label, row in zip(partition.labels, partition.rows):
                handle.write(json.dumps([label, list(row)]))
                handle.write("\n")
        freed = partition.resident_cells
        partition.n_spilled_rows += len(partition.rows)
        partition.rows = []
        partition.labels = []
        partition.resident_cells = 0
        return freed


def mine_topk_hybrid(
    dataset: Optional["DiscretizedDataset"] = None,
    consequent: int = 1,
    minsup: int = 1,
    k: int = 1,
    engine: str = "bitset",
    node_budget_per_partition: Optional[int] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    *,
    source: Optional["RowChunkSource"] = None,
    max_resident_cells: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
    n_jobs: Union[int, str, None] = 1,
    backend=None,
    initialize_single_items: bool = True,
    dynamic_minsup: bool = True,
    use_topk_pruning: bool = True,
    fault=None,
) -> TopkResult:
    """Top-k covering rule groups via column-partitioned row enumeration.

    Args:
        dataset: materialized discretized dataset.  Exactly one of
            ``dataset`` and ``source`` must be given; a dataset is
            wrapped in a chunk source so both entries share the
            streaming builder.
        consequent: class id of the rule consequent.
        minsup: absolute minimum support.
        k: rule groups to keep per row.
        engine: row-enumeration engine used inside each partition.
        node_budget_per_partition: optional per-partition node cap; a
            capped partition marks the overall result incomplete.
        spill_dir: when set, partitions beyond the cell budget are
            projected to disk in a unique per-run subdirectory — the
            paper's Section 8 "database projection (disk-based)" route.
            Each partition's file is deleted right after it is mined and
            the subdirectory is removed on exit, error paths included.
        source: a replayable :class:`~repro.data.streaming.RowChunkSource`
            to mine without ever materializing the cohort.
        max_resident_cells: builder cell budget (items buffered across
            all partition rows).  Requires ``spill_dir``; defaults to 0
            when ``spill_dir`` is set — classic disk projection where
            only the partition being mined is resident — and to
            unlimited otherwise.
        time_budget: wall-clock budget in seconds for the whole call;
            on expiry the remaining partitions are skipped and the
            result is marked incomplete.
        cancel: object with ``is_set()`` polled between partitions and
            inside each partition's enumeration.
        n_jobs: partition fan-out over the warm miner pool; ``"auto"``
            plans from the cohort's cell count, other values follow
            :func:`repro.parallel.resolve_n_jobs`.
        backend: bitset backend name/instance/None/"auto" — resolved
            once against the *full* cohort's row count (identical to
            the direct miner's resolution) and pinned for every
            partition.
        initialize_single_items, dynamic_minsup, use_topk_pruning:
            Section 4.1.1 optimization flags, forwarded to each
            per-partition mine.
        fault: deterministic :class:`repro.parallel.FaultPlan` for the
            pool path (testing hook; ignored by the serial loop).

    Returns:
        A :class:`TopkResult` equal to the direct miner's output; its
        ``stats`` sums the per-partition counters and its
        ``hybrid_stats`` attribute carries the :class:`HybridStats`.
    """
    started = time.perf_counter()
    start_monotonic = time.monotonic()
    if (dataset is None) == (source is None):
        raise ValueError("provide exactly one of dataset= and source=")
    if source is None:
        from ..data.streaming import DatasetChunkSource

        source = DatasetChunkSource(dataset)
    if minsup < 1:
        raise ValueError(f"minsup must be >= 1, got {minsup}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n_classes = len(source.class_names)
    if not 0 <= consequent < n_classes:
        raise ValueError(
            f"consequent {consequent} out of range for {n_classes} classes"
        )
    if max_resident_cells is not None:
        if spill_dir is None:
            raise ValueError("max_resident_cells requires spill_dir")
        if max_resident_cells < 0:
            raise ValueError(
                f"max_resident_cells must be >= 0, got {max_resident_cells}"
            )
    elif spill_dir is not None:
        max_resident_cells = 0

    run_dir: Optional[Path] = None
    if spill_dir is not None:
        # Unique per run: concurrent mines sharing spill_dir never
        # collide, and the finally below owns exactly this subtree.
        # spill_dir itself must already exist (mkdir without parents
        # raises FileNotFoundError otherwise) — the caller owns it.
        run_dir = Path(spill_dir) / f"hybrid-{uuid.uuid4().hex}"
        run_dir.mkdir()
    try:
        return _mine_streamed(
            source=source,
            consequent=consequent,
            minsup=minsup,
            k=k,
            engine=engine,
            node_budget_per_partition=node_budget_per_partition,
            run_dir=run_dir,
            max_resident_cells=max_resident_cells,
            time_budget=time_budget,
            cancel=cancel,
            n_jobs=n_jobs,
            backend=backend,
            initialize_single_items=initialize_single_items,
            dynamic_minsup=dynamic_minsup,
            use_topk_pruning=use_topk_pruning,
            fault=fault,
            started=started,
            start_monotonic=start_monotonic,
        )
    finally:
        if run_dir is not None:
            shutil.rmtree(run_dir, ignore_errors=True)


def _mine_streamed(
    *,
    source,
    consequent,
    minsup,
    k,
    engine,
    node_budget_per_partition,
    run_dir,
    max_resident_cells,
    time_budget,
    cancel,
    n_jobs,
    backend,
    initialize_single_items,
    dynamic_minsup,
    use_topk_pruning,
    fault,
    started,
    start_monotonic,
) -> TopkResult:
    builder = _PartitionBuilder(
        source, consequent, minsup, run_dir, max_resident_cells
    )
    builder.scan()
    builder.build()

    # One resolution against the full cohort's row count — exactly what
    # the direct miner's MiningView would resolve — then pinned by name
    # into every partition request (satellite: backend parity).
    resolved = resolve_backend(backend, n_rows=builder.n_rows, task="topk")

    from ..parallel import (
        _AUTO_TOPK_SERIAL_UNITS,
        AUTO_JOBS,
        plan_auto_workers,
        resolve_n_jobs,
    )

    if n_jobs == AUTO_JOBS:
        n_workers = plan_auto_workers(
            builder.total_cells * (1 + k), _AUTO_TOPK_SERIAL_UNITS
        )
    else:
        n_workers = resolve_n_jobs(n_jobs)

    stats = HybridStats(
        n_partitions=len(builder.partitions),
        backend=resolved.name,
        n_jobs=n_workers,
        total_cells=builder.total_cells,
        peak_resident_cells=builder.peak_resident_cells,
        spilled_partitions=sum(
            1 for partition in builder.partitions
            if partition.n_spilled_rows
        ),
        max_partition_rows=max(
            (partition.n_rows for partition in builder.partitions), default=0
        ),
    )

    requests = [
        HybridPartitionRequest(
            anchor=partition.anchor,
            consequent=consequent,
            minsup=minsup,
            k=k,
            engine=engine,
            initialize_single_items=initialize_single_items,
            dynamic_minsup=dynamic_minsup,
            use_topk_pruning=use_topk_pruning,
            node_budget=node_budget_per_partition,
            backend=resolved.name,
            rows=tuple(partition.rows),
            labels=tuple(partition.labels),
            spill_path=(
                str(partition.spill_path)
                if partition.spill_path is not None
                else None
            ),
        )
        for partition in builder.partitions
    ]
    catalog = PartitionCatalog(
        source.items, source.class_names, source.name
    )

    deadline = (
        start_monotonic + time_budget if time_budget is not None else None
    )
    outputs: list = [None] * len(requests)
    recovery = None
    already_stopped = (
        deadline is not None and time.monotonic() >= deadline
    ) or (cancel is not None and cancel.is_set())
    if already_stopped:
        # Same contract as the serial loop's first-iteration check: a
        # cancel/expiry observed before the fan-out skips every
        # partition instead of paying a pool round-trip to learn it.
        stats.n_skipped_partitions = len(requests)
        stats.completed = False
    elif n_workers > 1 and len(requests) > 1:
        from ..parallel import run_hybrid_partitions

        remaining = (
            None
            if deadline is None
            else max(deadline - time.monotonic(), 1e-9)
        )
        outputs, recovery = run_hybrid_partitions(
            catalog,
            requests,
            n_workers,
            time_budget=remaining,
            cancel=cancel,
            fault=fault,
        )
        skipped = sum(1 for output in outputs if output is None)
        if skipped:
            stats.n_skipped_partitions = skipped
            stats.completed = False
    else:
        for index, request in enumerate(requests):
            expired = deadline is not None and time.monotonic() >= deadline
            if expired or (cancel is not None and cancel.is_set()):
                stats.n_skipped_partitions = len(requests) - index
                stats.completed = False
                break
            remaining = (
                None
                if deadline is None
                else max(deadline - time.monotonic(), 1e-9)
            )
            outputs[index] = mine_hybrid_partition(
                request, catalog, cancel=cancel, time_budget=remaining
            )
            # Bounded memory: drop the partition as soon as it is mined.
            partition = builder.partitions[index]
            partition.rows = []
            partition.labels = []
            if partition.spill_path is not None:
                partition.spill_path.unlink(missing_ok=True)

    # -- aggregation ------------------------------------------------------
    lists: dict[int, TopKList] = {
        row: TopKList(k)
        for row, label in enumerate(builder.labels)
        if label == consequent
    }
    item_rows = builder.item_rows
    handle = resolved.encode_supports(item_rows, max(builder.n_rows, 1))
    class_mask = builder.class_mask
    anchor_position = {
        anchor: position for position, anchor in enumerate(builder.frequent)
    }
    loose = tight = backward = 0
    for index, output in enumerate(outputs):
        if output is None:
            # Skipped partition (serial break above, or a parallel job
            # the supervisor never completed): already accounted for in
            # n_skipped_partitions / completed.
            continue
        payload, partition_stats = output
        stats.total_nodes += partition_stats.nodes_visited
        loose += partition_stats.loose_pruned
        tight += partition_stats.tight_pruned
        backward += partition_stats.backward_pruned
        if not partition_stats.completed:
            stats.completed = False
        anchor = requests[index].anchor
        lower = builder.frequent[: anchor_position[anchor]]
        for antecedent_items, support, confidence in payload:
            # Backend batch fold: the antecedent contains the anchor,
            # so this intersection *is* the global row set (satellite:
            # no per-bit translation loops).
            global_bits = resolved.intersect_many(handle, antecedent_items)
            if lower:
                total = popcount(global_bits)
                overlaps = resolved.popcount_many(
                    [global_bits & item_rows[item] for item in lower]
                )
                if any(count == total for count in overlaps):
                    # A lower frequent item covers every row: the
                    # closure's smallest item is below this anchor, so
                    # the group's canonical partition is an earlier one.
                    continue
            group = RuleGroup(
                antecedent=frozenset(antecedent_items),
                consequent=consequent,
                row_set=global_bits,
                support=support,
                confidence=confidence,
            )
            for row in iter_indices(global_bits & class_mask):
                lists[row].offer(group)

    per_row = {row: list(topk) for row, topk in lists.items()}
    miner_stats = MinerStats(
        nodes_visited=stats.total_nodes,
        groups_emitted=sum(len(groups) for groups in per_row.values()),
        loose_pruned=loose,
        tight_pruned=tight,
        backward_pruned=backward,
        elapsed_seconds=time.perf_counter() - started,
        engine=f"hybrid/{engine}",
        completed=stats.completed,
        degraded=bool(recovery and recovery["degraded"]),
    )
    result = TopkResult(
        per_row=per_row,
        consequent=consequent,
        minsup=minsup,
        k=k,
        stats=miner_stats,
    )
    result.hybrid_stats = stats  # type: ignore[attr-defined]
    return result
