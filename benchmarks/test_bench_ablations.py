"""Ablation benchmarks for the design choices DESIGN.md calls out.

* top-k pruning on/off — the paper's core algorithmic contribution;
* single-item list initialization on/off;
* dynamic minsup raising on/off;
* enumeration engine comparison (bitset / table / tree) at equal output;
* FindLB with and without the entropy item ranking.
"""

import pytest

from repro.analysis.gene_ranking import gene_entropy_scores, item_scores
from repro.core.lower_bounds import find_lower_bounds
from repro.core.topk_miner import mine_topk, relative_minsup

FRACTION = 0.85


@pytest.mark.parametrize("use_pruning", (True, False))
def test_ablation_topk_pruning(benchmark, all_benchmark, use_pruning):
    """Isolate the dynamic-minconf pruning: the other two optimizations
    are held off in both arms (with them on, the per-row lists saturate
    so early that nothing is left for the confidence bound to prune)."""
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    result = benchmark(
        lambda: mine_topk(
            train, 1, minsup, k=1,
            use_topk_pruning=use_pruning,
            initialize_single_items=False,
            dynamic_minsup=False,
        )
    )
    benchmark.extra_info.update(
        {"topk_pruning": use_pruning, "nodes": result.stats.nodes_visited}
    )


@pytest.mark.parametrize("initialize", (True, False))
def test_ablation_single_item_init(benchmark, all_benchmark, initialize):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    result = benchmark(
        lambda: mine_topk(
            train, 1, minsup, k=1, initialize_single_items=initialize
        )
    )
    benchmark.extra_info.update(
        {"single_item_init": initialize, "nodes": result.stats.nodes_visited}
    )


@pytest.mark.parametrize("dynamic", (True, False))
def test_ablation_dynamic_minsup(benchmark, all_benchmark, dynamic):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    result = benchmark(
        lambda: mine_topk(train, 1, minsup, k=1, dynamic_minsup=dynamic)
    )
    benchmark.extra_info.update(
        {"dynamic_minsup": dynamic, "nodes": result.stats.nodes_visited}
    )


@pytest.mark.parametrize("engine", ("bitset", "table", "tree"))
def test_ablation_engines(benchmark, all_benchmark, engine):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    result = benchmark(
        lambda: mine_topk(train, 1, minsup, k=10, engine=engine)
    )
    assert result.stats.completed
    benchmark.extra_info.update({"engine": engine})


@pytest.mark.parametrize("ranked", (True, False))
def test_ablation_findlb_ranking(benchmark, all_benchmark, ranked):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, 0.7)
    group = mine_topk(train, 1, minsup, k=1).unique_groups()[0]
    scores = (
        item_scores(train, gene_entropy_scores(train)) if ranked else None
    )
    result = benchmark(
        lambda: find_lower_bounds(train, group, nl=10, item_scores=scores)
    )
    assert result.rules
    benchmark.extra_info.update(
        {"entropy_ranking": ranked, "tested": result.subsets_tested}
    )


def test_ablation_pruning_shape(all_benchmark):
    """Top-k pruning must reduce enumeration effort, all else equal."""
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    pruned = mine_topk(
        train, 1, minsup, k=1, use_topk_pruning=True,
        initialize_single_items=False, dynamic_minsup=False,
    )
    unpruned = mine_topk(
        train, 1, minsup, k=1, use_topk_pruning=False,
        initialize_single_items=False, dynamic_minsup=False,
    )
    assert pruned.stats.nodes_visited * 10 < unpruned.stats.nodes_visited


def test_ablation_initialization_shape(all_benchmark):
    """Single-item initialization shrinks the search given pruning."""
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, FRACTION)
    with_init = mine_topk(
        train, 1, minsup, k=1, initialize_single_items=True,
        dynamic_minsup=False,
    )
    without = mine_topk(
        train, 1, minsup, k=1, initialize_single_items=False,
        dynamic_minsup=False,
    )
    assert (
        with_init.stats.nodes_visited <= without.stats.nodes_visited
    )


def test_ablation_hybrid_vs_direct(benchmark, oc_benchmark):
    """Section 8 extension: partitioned mining on the tallest dataset.

    The hybrid miner re-derives each partition independently, so it does
    more total work here — its value is that partitions are independent
    (memory-bounded / disk-friendly), not raw speed.  The benchmark
    records node counts for both so the report shows the trade.
    """
    from repro.core.hybrid import mine_topk_hybrid

    train = oc_benchmark.train_items
    minsup = relative_minsup(train, 1, 0.8)
    direct = mine_topk(train, 1, minsup, k=2)
    result = benchmark(lambda: mine_topk_hybrid(train, 1, minsup, k=2))
    assert result.stats.completed
    benchmark.extra_info.update(
        {
            "direct_nodes": direct.stats.nodes_visited,
            "hybrid_nodes": result.stats.nodes_visited,
            "partitions": result.hybrid_stats.n_partitions,
        }
    )
