"""Tests for the Fayyad-Irani MDL discretization."""

import numpy as np
import pytest

from repro.data.dataset import GeneExpressionDataset
from repro.data.discretize import EntropyDiscretizer, entropy, mdl_cut_points


class TestEntropy:
    def test_pure_is_zero(self):
        assert entropy(np.array([5, 0])) == 0.0

    def test_uniform_two_classes_is_one_bit(self):
        assert entropy(np.array([4, 4])) == pytest.approx(1.0)

    def test_empty_is_zero(self):
        assert entropy(np.array([0, 0])) == 0.0

    def test_skewed(self):
        value = entropy(np.array([1, 3]))
        assert 0.0 < value < 1.0


class TestMdlCutPoints:
    def test_perfect_separation_accepted(self):
        values = [1, 2, 3, 4, 10, 11, 12, 13]
        labels = [0, 0, 0, 0, 1, 1, 1, 1]
        cuts = mdl_cut_points(values, labels)
        assert len(cuts) == 1
        assert 4 < cuts[0] < 10

    def test_cut_at_midpoint(self):
        values = [0.0, 0.0, 10.0, 10.0]
        labels = [0, 0, 1, 1]
        assert mdl_cut_points(values, labels) == [5.0]

    def test_random_labels_rejected(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=40)
        labels = rng.integers(0, 2, size=40)
        assert mdl_cut_points(values, labels) == []

    def test_constant_values_no_cut(self):
        assert mdl_cut_points([1.0] * 10, [0, 1] * 5) == []

    def test_single_value(self):
        assert mdl_cut_points([1.0], [0]) == []

    def test_three_segments_two_cuts(self):
        # class 0 low, class 1 middle, class 0 high -> two cuts (segments
        # must be large enough to pay the MDL model cost).
        values = list(range(60))
        labels = [0] * 20 + [1] * 20 + [0] * 20
        cuts = mdl_cut_points(values, labels)
        assert len(cuts) == 2
        assert cuts[0] < cuts[1]

    def test_cuts_sorted(self):
        values = list(range(40))
        labels = [0] * 10 + [1] * 10 + [0] * 10 + [1] * 10
        cuts = mdl_cut_points(values, labels)
        assert cuts == sorted(cuts)

    def test_weak_signal_rejected_by_mdl(self):
        # A slightly-shifted overlap should not pay the MDL cost.
        rng = np.random.default_rng(1)
        values = np.concatenate([rng.normal(0, 1, 15), rng.normal(0.3, 1, 15)])
        labels = [0] * 15 + [1] * 15
        assert mdl_cut_points(values, labels) == []


def separable_dataset(n_informative=3, n_noise=5, n=30, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.array([0, 1] * (n // 2))
    informative = rng.normal(0, 0.5, size=(n, n_informative))
    informative += labels[:, None] * 4.0
    noise = rng.normal(size=(n, n_noise))
    values = np.hstack([informative, noise])
    return GeneExpressionDataset(values, labels)


class TestEntropyDiscretizer:
    def test_selects_informative_genes(self):
        disc = EntropyDiscretizer().fit(separable_dataset())
        assert disc.selected_genes_ == [0, 1, 2]

    def test_transform_items_match_cuts(self):
        ds = separable_dataset()
        disc = EntropyDiscretizer().fit(ds)
        items = disc.transform(ds)
        for row_items, label in zip(items.rows, items.labels):
            for item_id in row_items:
                item = items.items[item_id]
                assert item.gene_index in disc.cuts_

    def test_one_item_per_selected_gene_per_row(self):
        ds = separable_dataset()
        disc = EntropyDiscretizer().fit(ds)
        items = disc.transform(ds)
        for row in items.rows:
            genes = [items.items[i].gene_index for i in row]
            assert len(genes) == len(set(genes)) == disc.n_selected_genes

    def test_value_falls_in_item_interval(self):
        ds = separable_dataset()
        disc = EntropyDiscretizer().fit(ds)
        items = disc.transform(ds)
        for sample, row in enumerate(items.rows):
            for item_id in row:
                item = items.items[item_id]
                assert item.contains(ds.values[sample, item.gene_index])

    def test_transform_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            EntropyDiscretizer().transform(separable_dataset())

    def test_transform_new_data_shares_catalog(self):
        train = separable_dataset(seed=0)
        test = separable_dataset(seed=1)
        disc = EntropyDiscretizer().fit(train)
        train_items = disc.transform(train)
        test_items = disc.transform(test)
        assert train_items.items == test_items.items

    def test_max_cuts_per_gene(self):
        values = np.array([list(range(40))]).T.astype(float)
        labels = [0] * 10 + [1] * 10 + [0] * 10 + [1] * 10
        ds = GeneExpressionDataset(values, labels)
        disc = EntropyDiscretizer(max_cuts_per_gene=1).fit(ds)
        if disc.selected_genes_:
            assert all(len(c) <= 1 for c in disc.cuts_.values())

    def test_fit_transform_equals_fit_then_transform(self):
        ds = separable_dataset()
        a = EntropyDiscretizer().fit_transform(ds)
        disc = EntropyDiscretizer().fit(ds)
        b = disc.transform(ds)
        assert a.rows == b.rows

    def test_item_ids_dense_and_ordered(self):
        ds = separable_dataset()
        disc = EntropyDiscretizer().fit(ds)
        assert [item.item_id for item in disc.items_] == list(
            range(len(disc.items_))
        )

    def test_no_informative_genes_yields_empty_catalog(self):
        rng = np.random.default_rng(3)
        ds = GeneExpressionDataset(
            rng.normal(size=(20, 4)), rng.integers(0, 2, size=20)
        )
        disc = EntropyDiscretizer().fit(ds)
        items = disc.transform(ds)
        assert items.n_items == 0
        assert all(len(row) == 0 for row in items.rows)


class TestFromCuts:
    def test_rebuilt_discretizer_transforms_identically(self):
        ds = separable_dataset()
        fitted = EntropyDiscretizer().fit(ds)
        rebuilt = EntropyDiscretizer.from_cuts(
            fitted.cuts_, ds.gene_names, ds.class_names
        )
        assert rebuilt.transform(ds).rows == fitted.transform(ds).rows
        assert rebuilt.items_ == fitted.items_

    def test_empty_cut_lists_dropped(self):
        rebuilt = EntropyDiscretizer.from_cuts(
            {0: [1.0], 1: []}, ["g0", "g1"]
        )
        assert rebuilt.selected_genes_ == [0]

    def test_string_free_cut_coercion(self):
        rebuilt = EntropyDiscretizer.from_cuts({0: [2.0, 1.0]}, ["g0"])
        assert rebuilt.cuts_[0] == [1.0, 2.0]


class TestMissingValues:
    def test_mdl_ignores_nans(self):
        values = [1, 2, 3, 4, float("nan"), 10, 11, 12, 13]
        labels = [0, 0, 0, 0, 1, 1, 1, 1, 1]
        cuts = mdl_cut_points(values, labels)
        assert len(cuts) == 1

    def test_transform_skips_missing_measurements(self):
        ds = separable_dataset()
        disc = EntropyDiscretizer().fit(ds)
        holey = GeneExpressionDataset(
            ds.values.copy(), ds.labels, ds.gene_names, ds.class_names
        )
        holey.values[0, disc.selected_genes_[0]] = float("nan")
        items = disc.transform(holey)
        full = disc.transform(ds)
        assert len(items.rows[0]) == len(full.rows[0]) - 1
        assert items.rows[1] == full.rows[1]

    def test_generator_missing_rate(self):
        import dataclasses

        import numpy as np

        from repro.data.synthetic import ALL_AML, generate_dataset

        spec = dataclasses.replace(ALL_AML.scaled(0.05), missing_rate=0.1)
        train, test = generate_dataset(spec)
        train_missing = np.isnan(train.values).mean()
        assert 0.05 < train_missing < 0.15
        assert np.isnan(test.values).any()

    def test_pipeline_with_missing_values_end_to_end(self):
        import dataclasses

        from repro.classifiers import RCBTClassifier
        from repro.data.synthetic import ALL_AML, generate_dataset

        spec = dataclasses.replace(ALL_AML.scaled(0.05), missing_rate=0.05)
        train, test = generate_dataset(spec)
        disc = EntropyDiscretizer().fit(train)
        train_items = disc.transform(train)
        lengths = {len(row) for row in train_items.rows}
        assert len(lengths) > 1  # rows now vary in item count
        model = RCBTClassifier(k=3, nl=5).fit(train_items)
        assert model.score(disc.transform(test)) >= 0.7
