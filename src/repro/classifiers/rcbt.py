"""RCBT: Refined Classification Based on TopkRGS (Section 5.2).

RCBT attacks the two weaknesses of CBA on gene expression data:

* *default-class predictions*: when the main classifier matches nothing,
  k-1 **standby classifiers** — built from the rule groups ranked 2nd,
  3rd, ... k-th in the per-row top-k lists — get a chance before the
  default class does;
* *single-rule decisions*: within a classifier level, all matching rules
  vote.  Each rule scores ``S(γ) = γ.conf · γ.sup / d_c`` (``d_c`` = the
  number of training rows of its class) and a class's vote is the sum of
  its matching rules' scores normalized by the total score mass of that
  class in the level.  The class with the highest normalized vote wins.

Each level is assembled from the ``nl`` shortest lower bounds of its rule
groups (FindLB over entropy-ranked items) and pruned by the same CBA
coverage test as the main classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..analysis.gene_ranking import gene_entropy_scores, item_scores
from ..core.lower_bounds import find_lower_bounds_batch
from ..core.rules import Rule, RuleGroup
from ..core.topk_miner import TopkResult, mine_topk, relative_minsup
from .base import RuleBasedClassifier
from .selection import cba_select_groups, majority_class

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["RCBTClassifier", "ClassifierLevel"]


@dataclass
class ClassifierLevel:
    """One classifier in the main/standby cascade."""

    rules: list[Rule]
    score_norms: list[float]  # per class: total score mass in this level

    def vote(
        self, row_items: frozenset[int], rule_scores: dict[int, float]
    ) -> Optional[int]:
        """Class decided by this level, or None when nothing matches."""
        matched = [
            index
            for index, rule in enumerate(self.rules)
            if rule.antecedent <= row_items
        ]
        return self.vote_indices(matched, rule_scores)

    def vote_indices(
        self, matched: Sequence[int], rule_scores: dict[int, float]
    ) -> Optional[int]:
        """Class decided by the given matching rule indices, if any."""
        if not matched:
            return None
        totals = [0.0] * len(self.score_norms)
        for index in matched:
            totals[self.rules[index].consequent] += rule_scores[index]
        best_class = 0
        best_score = -1.0
        for class_id, total in enumerate(totals):
            norm = self.score_norms[class_id]
            normalized = total / norm if norm > 0 else 0.0
            if normalized > best_score:
                best_score = normalized
                best_class = class_id
        return best_class


class RCBTClassifier(RuleBasedClassifier):
    """Refined classification based on top-k covering rule groups.

    Args:
        k: covering rule groups per row — one main classifier plus up to
            ``k - 1`` standby classifiers (paper default 10).
        nl: shortest lower bounds extracted per rule group (paper
            default 20).
        minsup_fraction: minimum support as a fraction of each class
            size (paper default 0.7).
        engine: row-enumeration engine for the mining step.
        max_lb_size: largest lower bound length FindLB searches.
        max_lb_items: optional cap on ranked items FindLB considers.
        use_voting: aggregate matching rules by score (paper behaviour);
            False falls back to first-match within each level, the
            ablation of Section 6.2's "collective decision" factor.
        n_jobs: worker processes for the mining step; 1 mines each class
            serially, any other value pools every class's enumeration
            shards into one process pool via
            :func:`repro.parallel.mine_topk_sharded` (``None``/0 = all
            cores).  The fitted model is identical either way.
    """

    def __init__(
        self,
        k: int = 10,
        nl: int = 20,
        minsup_fraction: float = 0.7,
        engine: str = "bitset",
        max_lb_size: int = 6,
        max_lb_items: Optional[int] = None,
        use_voting: bool = True,
        n_jobs: int = 1,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if nl < 1:
            raise ValueError(f"nl must be >= 1, got {nl}")
        self.k = k
        self.nl = nl
        self.minsup_fraction = minsup_fraction
        self.engine = engine
        self.max_lb_size = max_lb_size
        self.max_lb_items = max_lb_items
        self.use_voting = use_voting
        self.n_jobs = n_jobs
        self.levels_: list[ClassifierLevel] = []
        self.default_class_: int = 0
        self._level_scores: list[dict[int, float]] = []
        self._class_counts: list[int] = []
        self.topk_results_: dict[int, TopkResult] = {}
        self._rule_bits: Optional[list[list[int]]] = None

    def fit(self, train: "DiscretizedDataset") -> "RCBTClassifier":
        """Mine top-k covering rule groups and build the classifier cascade."""
        scores = item_scores(train, gene_entropy_scores(train))
        self._class_counts = train.class_counts()
        self.topk_results_ = {}
        if self.n_jobs != 1:
            # Pool every class's enumeration shards into one executor so
            # workers stay busy even when class trees differ in size.
            from ..parallel import MineRequest, mine_topk_sharded

            requests = [
                MineRequest(
                    consequent=class_id,
                    minsup=relative_minsup(
                        train, class_id, self.minsup_fraction
                    ),
                    k=self.k,
                    engine=self.engine,
                )
                for class_id in range(train.n_classes)
            ]
            for class_id, result in enumerate(
                mine_topk_sharded(train, requests, n_jobs=self.n_jobs)
            ):
                self.topk_results_[class_id] = result
        else:
            for class_id in range(train.n_classes):
                minsup = relative_minsup(train, class_id, self.minsup_fraction)
                self.topk_results_[class_id] = mine_topk(
                    train, class_id, minsup, k=self.k, engine=self.engine
                )

        self.levels_ = []
        self._level_scores = []
        default_set = False
        lb_cache: dict[tuple[int, int], list[Rule]] = {}
        for rank in range(1, self.k + 1):
            groups: list[RuleGroup] = []
            for class_id in range(train.n_classes):
                groups.extend(self.topk_results_[class_id].rank_set(rank))
            if not groups:
                continue
            # Coverage test at rule-group granularity: every lower bound
            # of a group matches exactly the rows of its support set, so
            # the CBA selection is run once per group and the surviving
            # groups each contribute all nl of their shortest lower
            # bounds to the level's voting committee.
            selected = cba_select_groups(groups, train)
            if not default_set:
                # The default class comes from the main classifier's
                # coverage test (Section 5.2).
                self.default_class_ = selected.default_class
                default_set = True
            if not selected.groups:
                continue
            lb_cache.update(
                find_lower_bounds_batch(
                    train,
                    [
                        group
                        for group in selected.groups
                        if (group.row_set, group.consequent) not in lb_cache
                    ],
                    nl=self.nl,
                    item_scores=scores,
                    max_items=self.max_lb_items,
                    max_size=self.max_lb_size,
                )
            )
            rules: list[Rule] = []
            for group in selected.groups:
                rules.extend(lb_cache[(group.row_set, group.consequent)])
            if rules:
                self._append_level(rules, train.n_classes)
        if not default_set:
            self.default_class_ = majority_class(train.labels, train.n_classes)
        self._rule_bits = None
        self._fitted = True
        return self

    def _append_level(self, rules: list[Rule], n_classes: int) -> None:
        rule_scores = {
            index: self._rule_score(rule) for index, rule in enumerate(rules)
        }
        norms = [0.0] * n_classes
        for index, rule in enumerate(rules):
            norms[rule.consequent] += rule_scores[index]
        self.levels_.append(ClassifierLevel(rules=rules, score_norms=norms))
        self._level_scores.append(rule_scores)

    def _rule_score(self, rule: Rule) -> float:
        """``S(γ) = conf · sup / d_c`` of Section 5.2 (in [0, 1])."""
        class_size = self._class_counts[rule.consequent]
        return rule.confidence * rule.support / class_size if class_size else 0.0

    def predict_row(self, row_items: frozenset[int]) -> tuple[int, str]:
        """Consult main then standby levels; fall back to the default class."""
        self._check_fitted()
        for level_index, level in enumerate(self.levels_):
            if self.use_voting:
                decision = level.vote(row_items, self._level_scores[level_index])
            else:
                matching = next(
                    (
                        rule
                        for rule in level.rules
                        if rule.antecedent <= row_items
                    ),
                    None,
                )
                decision = matching.consequent if matching else None
            if decision is not None:
                source = "main" if level_index == 0 else "standby"
                return decision, source
        return self.default_class_, "default"

    def _compiled_rule_bits(self) -> list[list[int]]:
        """Per level, each rule's antecedent as an item bitset (cached).

        Compiling once per fitted model turns the per-row subset test into
        a two-int ``&``/``==`` probe, which is what lets a batch of rows
        amortize the rule-matching work.
        """
        if self._rule_bits is None:
            compiled: list[list[int]] = []
            for level in self.levels_:
                bits_per_rule = []
                for rule in level.rules:
                    bits = 0
                    for item in rule.antecedent:
                        bits |= 1 << item
                    bits_per_rule.append(bits)
                compiled.append(bits_per_rule)
            self._rule_bits = compiled
        return self._rule_bits

    def predict_batch(
        self, rows: Sequence[frozenset[int]]
    ) -> list[tuple[int, str]]:
        """Bitset fast path; output identical to per-row prediction."""
        self._check_fitted()
        compiled = self._compiled_rule_bits()
        results: list[tuple[int, str]] = []
        for row_items in rows:
            row_bits = 0
            for item in row_items:
                row_bits |= 1 << item
            prediction: Optional[tuple[int, str]] = None
            for level_index, level in enumerate(self.levels_):
                matched = [
                    index
                    for index, bits in enumerate(compiled[level_index])
                    if bits & row_bits == bits
                ]
                if not matched:
                    continue
                if self.use_voting:
                    decision = level.vote_indices(
                        matched, self._level_scores[level_index]
                    )
                else:
                    decision = level.rules[matched[0]].consequent
                if decision is not None:
                    source = "main" if level_index == 0 else "standby"
                    prediction = (decision, source)
                    break
            if prediction is None:
                prediction = (self.default_class_, "default")
            results.append(prediction)
        return results

    @property
    def n_levels_(self) -> int:
        """Number of built classifiers (main + standby)."""
        self._check_fitted()
        return len(self.levels_)
