"""Edge cases across modules: degenerate datasets, extreme parameters."""

import numpy as np
import pytest

from repro.classifiers import CBAClassifier, RCBTClassifier, SVMClassifier
from repro.core.topk_miner import mine_topk
from repro.data.dataset import DiscretizedDataset, GeneExpressionDataset, Item
from repro.data.discretize import EntropyDiscretizer, mdl_cut_points


def itemized(rows, labels, n_items=None):
    if n_items is None:
        n_items = max((max(r) for r in rows if r), default=-1) + 1
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf"))
        for i in range(n_items)
    ]
    return DiscretizedDataset(rows, labels, items, class_names=["c0", "c1"])


class TestDegenerateMining:
    def test_single_positive_row(self):
        ds = itemized([{0, 1}, {2}], [1, 0])
        result = mine_topk(ds, 1, minsup=1, k=2)
        assert len(result.per_row) == 1
        groups = result.per_row[0]
        assert groups and groups[0].support == 1

    def test_minsup_above_class_size_empty_lists(self):
        ds = itemized([{0}, {0}, {1}], [1, 1, 0])
        result = mine_topk(ds, 1, minsup=3, k=1)
        assert all(not groups for groups in result.per_row.values())

    def test_identical_rows_one_group(self):
        ds = itemized([{0, 1}, {0, 1}, {0, 1}, {2}], [1, 1, 1, 0])
        result = mine_topk(ds, 1, minsup=2, k=5)
        for groups in result.per_row.values():
            assert len(groups) == 1
            assert groups[0].support == 3

    def test_k_larger_than_group_count(self):
        ds = itemized([{0}, {1}], [1, 0])
        result = mine_topk(ds, 1, minsup=1, k=100)
        assert len(result.per_row[0]) >= 1

    def test_disjoint_classes_full_confidence(self):
        ds = itemized([{0}, {0}, {1}, {1}], [1, 1, 0, 0])
        result = mine_topk(ds, 1, minsup=2, k=1)
        for groups in result.per_row.values():
            assert groups[0].confidence == 1.0

    def test_rows_with_no_frequent_items_uncovered(self):
        # Row 1's only item appears once; with minsup=2 it has no groups.
        ds = itemized([{0, 1}, {2}, {0}], [1, 1, 1])
        result = mine_topk(ds, 1, minsup=2, k=1)
        assert result.per_row[1] == []
        assert result.per_row[0] and result.per_row[2]


class TestDegenerateClassifiers:
    def test_cba_single_class_training(self):
        ds = DiscretizedDataset(
            [{0}, {0}],
            [0, 0],
            [Item(0, 0, "g0", float("-inf"), float("inf"))],
            class_names=["only", "other"],
        )
        model = CBAClassifier(minsup_fraction=0.5).fit(ds)
        assert model.predict_row(frozenset({0}))[0] == 0

    def test_rcbt_trains_on_tiny_data(self):
        ds = itemized([{0}, {0}, {1}, {1}], [1, 1, 0, 0])
        model = RCBTClassifier(k=2, nl=2, minsup_fraction=0.5).fit(ds)
        assert model.score(ds) == 1.0

    def test_svm_tiny_sample(self):
        X = np.array([[0.0, 1.0], [1.0, 0.0], [0.1, 0.9], [0.9, 0.1]])
        y = [0, 1, 0, 1]
        model = SVMClassifier(kernel="linear").fit(X, y)
        assert model.score(X, y) >= 0.75

    def test_svm_explicit_gamma(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = (X[:, 0] > 0).astype(int)
        model = SVMClassifier(kernel="poly", gamma=0.5).fit(X, y)
        assert model.score(X, y) >= 0.8


class TestMulticlassDiscretization:
    def test_three_class_mdl(self):
        # Three pure blocks along the value axis -> two accepted cuts.
        values = list(range(90))
        labels = [0] * 30 + [1] * 30 + [2] * 30
        cuts = mdl_cut_points(values, labels, n_classes=3)
        assert len(cuts) == 2

    def test_three_class_discretizer(self):
        rng = np.random.default_rng(1)
        labels = np.array([0, 1, 2] * 20)
        values = rng.normal(size=(60, 3))
        values[:, 0] += labels * 4.0
        ds = GeneExpressionDataset(values, labels)
        disc = EntropyDiscretizer().fit(ds)
        assert 0 in disc.selected_genes_
        items = disc.transform(ds)
        assert items.n_classes == 3


class TestCaching:
    def test_item_row_sets_cached(self, figure1):
        first = figure1.item_row_sets()
        assert figure1.item_row_sets() is first

    def test_class_mask_cached(self, figure1):
        figure1.class_mask(0)
        assert figure1._class_masks is not None
