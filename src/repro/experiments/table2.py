"""Table 2: classification accuracy of RCBT vs. the comparator suite.

Runs RCBT (k=10, nl=20), CBA (from top-1 covering rule groups), the IRG
classifier, the C4.5 family (single tree, bagging, boosting) and SVM
(best of linear and polynomial kernels, as the paper reports) on each
dataset, using the paper's protocol: rule classifiers see the discretized
items, numeric classifiers see the original expression values of the
genes the discretization selected, minimum support is 0.7 of the
consequent class size.

``--details`` adds the Section 6.2 bookkeeping: how many test samples
each rule classifier decided by default class or standby classifiers.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..analysis.metrics import ClassificationReport, evaluate
from ..classifiers import (
    AdaBoostTrees,
    BaggingTrees,
    CBAClassifier,
    DecisionTreeC45,
    IRGClassifier,
    RCBTClassifier,
    SVMClassifier,
)
from ..data.loaders import Benchmark
from .harness import DATASET_NAMES, prepare, render_table

__all__ = ["Table2Cell", "Table2Result", "run", "run_top_genes", "render", "main"]

CLASSIFIER_NAMES = (
    "RCBT",
    "CBA",
    "IRG",
    "C4.5-single",
    "C4.5-bagging",
    "C4.5-boosting",
    "SVM",
)

# Published accuracies (percent) for the "paper" comparison block.
_PAPER = {
    "ALL": (91.18, 91.18, 64.71, 91.18, 91.18, 91.18, 97.06),
    "LC": (97.99, 81.88, 89.93, 81.88, 96.64, 81.88, 96.64),
    "OC": (97.67, 93.02, None, 97.67, 97.67, 97.67, 97.67),
    "PC": (97.06, 82.35, 88.24, 26.47, 26.47, 26.47, 79.41),
}


@dataclass
class Table2Cell:
    """One classifier's result on one dataset."""

    accuracy: float
    report: Optional[ClassificationReport] = None
    note: str = ""


@dataclass
class Table2Result:
    """Accuracy grid: dataset -> classifier -> cell."""

    cells: dict[str, dict[str, Table2Cell]] = field(default_factory=dict)
    k: int = 10
    nl: int = 20
    minsup_fraction: float = 0.7

    def averages(self) -> dict[str, float]:
        """Mean accuracy per classifier over datasets where it ran."""
        result = {}
        for name in CLASSIFIER_NAMES:
            values = [
                grid[name].accuracy
                for grid in self.cells.values()
                if name in grid
            ]
            if values:
                result[name] = sum(values) / len(values)
        return result


def _numeric_features(benchmark: Benchmark) -> tuple[np.ndarray, np.ndarray]:
    """Original expression values of the discretization-selected genes."""
    genes = benchmark.discretizer.selected_genes_
    return benchmark.train.values[:, genes], benchmark.test.values[:, genes]


def _run_dataset(
    benchmark: Benchmark,
    k: int,
    nl: int,
    minsup_fraction: float,
    classifiers: Sequence[str],
    seed: int,
) -> dict[str, Table2Cell]:
    train_items, test_items = benchmark.train_items, benchmark.test_items
    results: dict[str, Table2Cell] = {}

    if "RCBT" in classifiers:
        model = RCBTClassifier(
            k=k, nl=nl, minsup_fraction=minsup_fraction
        ).fit(train_items)
        preds, sources = model.predict_with_sources(test_items)
        report = evaluate(test_items.labels, preds, sources)
        results["RCBT"] = Table2Cell(report.accuracy, report)

    if "CBA" in classifiers:
        model = CBAClassifier(minsup_fraction=minsup_fraction).fit(train_items)
        preds, sources = model.predict_with_sources(test_items)
        report = evaluate(test_items.labels, preds, sources)
        results["CBA"] = Table2Cell(report.accuracy, report)

    if "IRG" in classifiers:
        model = IRGClassifier(
            minsup_fraction=minsup_fraction, minconf=0.8
        ).fit(train_items)
        preds, sources = model.predict_with_sources(test_items)
        report = evaluate(test_items.labels, preds, sources)
        note = "" if model.mining_completed_ else "truncated mining"
        results["IRG"] = Table2Cell(report.accuracy, report, note)

    needs_numeric = {"C4.5-single", "C4.5-bagging", "C4.5-boosting", "SVM"}
    if needs_numeric & set(classifiers):
        X_train, X_test = _numeric_features(benchmark)
        y_train = benchmark.train.labels
        y_test = benchmark.test.labels
        if "C4.5-single" in classifiers:
            tree = DecisionTreeC45(seed=seed).fit(X_train, y_train)
            results["C4.5-single"] = Table2Cell(tree.score(X_test, y_test))
        if "C4.5-bagging" in classifiers:
            bag = BaggingTrees(n_estimators=10, seed=seed).fit(X_train, y_train)
            results["C4.5-bagging"] = Table2Cell(bag.score(X_test, y_test))
        if "C4.5-boosting" in classifiers:
            boost = AdaBoostTrees(n_estimators=10, seed=seed).fit(
                X_train, y_train
            )
            results["C4.5-boosting"] = Table2Cell(boost.score(X_test, y_test))
        if "SVM" in classifiers:
            best_acc, best_kernel = 0.0, "linear"
            for kernel in ("linear", "poly"):
                svm = SVMClassifier(kernel=kernel, seed=seed).fit(
                    X_train, y_train
                )
                acc = svm.score(X_test, y_test)
                if acc > best_acc:
                    best_acc, best_kernel = acc, kernel
            results["SVM"] = Table2Cell(best_acc, note=f"best: {best_kernel}")
    return results


def run(
    scale: float = 1.0,
    datasets: Sequence[str] = DATASET_NAMES,
    classifiers: Sequence[str] = CLASSIFIER_NAMES,
    k: int = 10,
    nl: int = 20,
    minsup_fraction: float = 0.7,
    seed: int = 0,
) -> Table2Result:
    """Train and evaluate the requested classifiers on each dataset."""
    result = Table2Result(k=k, nl=nl, minsup_fraction=minsup_fraction)
    for name in datasets:
        benchmark = prepare(name, scale)
        result.cells[name] = _run_dataset(
            benchmark, k, nl, minsup_fraction, classifiers, seed
        )
    return result


def run_top_genes(
    scale: float = 1.0,
    dataset: str = "ALL",
    gene_counts: Sequence[int] = (10, 20, 30, 40),
    seed: int = 0,
) -> dict[int, dict[str, float]]:
    """Section 6.2's side experiment: numeric classifiers on only the top
    entropy-ranked genes.

    The paper reports that restricting SVM and C4.5 to the 10-40 top
    genes "often becomes worse" — the motivation for methods that do not
    depend on a feature-count choice.  Returns
    ``gene count (0 = all selected genes) -> classifier -> accuracy``.
    """
    from ..analysis.gene_ranking import gene_entropy_scores, rank_genes

    benchmark = prepare(dataset, scale)
    ranks = rank_genes(gene_entropy_scores(benchmark.train_items))
    ranked_genes = [gene for gene, _rank in sorted(ranks.items(),
                                                   key=lambda p: p[1])]
    y_train = benchmark.train.labels
    y_test = benchmark.test.labels
    results: dict[int, dict[str, float]] = {}
    for count in (0, *gene_counts):
        genes = ranked_genes if count == 0 else ranked_genes[:count]
        X_train = benchmark.train.values[:, genes]
        X_test = benchmark.test.values[:, genes]
        tree = DecisionTreeC45(seed=seed).fit(X_train, y_train)
        best_svm = max(
            SVMClassifier(kernel=kernel, seed=seed)
            .fit(X_train, y_train)
            .score(X_test, y_test)
            for kernel in ("linear", "poly")
        )
        results[count] = {
            "C4.5-single": tree.score(X_test, y_test),
            "SVM": best_svm,
        }
    return results


def render(result: Table2Result, details: bool = False, show_paper: bool = True) -> str:
    """Render the accuracy grid (plus paper values and details)."""
    present = [
        name
        for name in CLASSIFIER_NAMES
        if any(name in grid for grid in result.cells.values())
    ]
    headers = ["Dataset", *present]
    body = []
    for dataset, grid in result.cells.items():
        row = [dataset]
        for name in present:
            cell = grid.get(name)
            row.append(f"{cell.accuracy:.2%}" if cell else "-")
        body.append(row)
    averages = result.averages()
    body.append(
        ["Average", *(f"{averages.get(name, 0):.2%}" for name in present)]
    )
    out = render_table(headers, body, title="Table 2 (measured)")

    if show_paper:
        paper_body = []
        for dataset in result.cells:
            row = [dataset]
            for name in present:
                index = CLASSIFIER_NAMES.index(name)
                value = _PAPER.get(dataset, ())[index] if dataset in _PAPER else None
                row.append(f"{value:.2f}%" if value is not None else "-")
            paper_body.append(row)
        out += "\n\n" + render_table(headers, paper_body, title="Table 2 (paper)")

    if details:
        lines = ["", "Decision details (Section 6.2):"]
        for dataset, grid in result.cells.items():
            for name in present:
                cell = grid.get(name)
                if cell and cell.report is not None:
                    lines.append(f"  {dataset} {name}: {cell.report.summary()}")
                elif cell and cell.note:
                    lines.append(f"  {dataset} {name}: {cell.note}")
        out += "\n" + "\n".join(lines)
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--datasets", nargs="+", default=list(DATASET_NAMES),
                        choices=DATASET_NAMES)
    parser.add_argument("--classifiers", nargs="+",
                        default=list(CLASSIFIER_NAMES),
                        choices=CLASSIFIER_NAMES)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--nl", type=int, default=20)
    parser.add_argument("--minsup-fraction", type=float, default=0.7)
    parser.add_argument("--details", action="store_true")
    parser.add_argument("--top-genes", action="store_true",
                        help="also run the Section 6.2 top-N-gene "
                             "sensitivity study for SVM and C4.5")
    args = parser.parse_args(argv)
    result = run(
        scale=args.scale,
        datasets=args.datasets,
        classifiers=args.classifiers,
        k=args.k,
        nl=args.nl,
        minsup_fraction=args.minsup_fraction,
    )
    print(render(result, details=args.details, show_paper=args.scale == 1.0))
    if args.top_genes:
        from .harness import render_table as _render_table

        for dataset in args.datasets:
            sensitivity = run_top_genes(scale=args.scale, dataset=dataset)
            body = [
                ["all" if count == 0 else count,
                 f"{cells['C4.5-single']:.2%}", f"{cells['SVM']:.2%}"]
                for count, cells in sensitivity.items()
            ]
            print()
            print(_render_table(
                ["top genes", "C4.5-single", "SVM"], body,
                title=f"Top-N entropy-ranked genes — {dataset}",
            ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
