"""Micro-batching of classify requests.

Concurrent ``/classify`` callers hitting the same model each need the
same per-request setup — rule antecedents compiled to bitsets and the
Python-level dispatch into :meth:`predict_batch`.  A
:class:`MicroBatcher` funnels requests that arrive within a small window
into one ``predict_batch`` call, so that work is paid once per *batch*
instead of once per request.  Each HTTP handler thread submits its rows
and blocks until its slice of the batched result is ready; correctness
is untouched because ``predict_batch`` is row-independent.

The collector thread is non-daemon and joined by :meth:`close`, matching
the service-wide rule that graceful shutdown leaves no threads behind.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["MicroBatcher"]

Rows = Sequence[frozenset]
BatchFn = Callable[[list], list]


@dataclass
class _Pending:
    """One caller's rows plus the slot its results land in."""

    rows: list
    done: threading.Event = field(default_factory=threading.Event)
    results: Optional[list] = None
    error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesce concurrent prediction requests into batched calls.

    Args:
        predict_batch: function mapping a list of itemized rows to a
            list of per-row results (one output element per input row).
        max_batch_rows: flush once this many rows are pending.
        max_delay: seconds the collector waits for more requests after
            the first one arrives before flushing what it has.
        on_batch: called with each flushed batch's row count — the
            service wires this to the ``classify_batch_size`` telemetry
            histogram so coalescing is observable on ``/metrics``.
    """

    def __init__(
        self,
        predict_batch: BatchFn,
        max_batch_rows: int = 256,
        max_delay: float = 0.002,
        name: str = "repro-batcher",
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._predict_batch = predict_batch
        self._on_batch = on_batch
        self.max_batch_rows = max_batch_rows
        self.max_delay = max_delay
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self.batches = 0
        self.requests = 0
        self.batched_rows = 0
        self.largest_batch = 0
        self._thread = threading.Thread(target=self._collector, name=name)
        self._thread.start()

    def submit(self, rows: Rows) -> list:
        """Block until predictions for ``rows`` are available.

        Exceptions raised by the underlying ``predict_batch`` propagate
        to every caller whose rows shared the failing batch.
        """
        rows = list(rows)
        if not rows:
            return []
        with self._lock:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self.requests += 1
        pending = _Pending(rows=rows)
        self._queue.put(pending)
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.results is not None
        return pending.results

    def close(self) -> None:
        """Flush remaining work and join the collector thread."""
        with self._lock:
            if self._closed:
                self._thread.join()
                return
            self._closed = True
        self._queue.put(None)
        self._thread.join()

    def stats(self) -> dict:
        """JSON-safe batching counters for ``/metrics``."""
        with self._lock:
            mean = self.batched_rows / self.batches if self.batches else 0.0
            return {
                "requests": self.requests,
                "batches": self.batches,
                "rows": self.batched_rows,
                "largest_batch_rows": self.largest_batch,
                "mean_batch_rows": mean,
            }

    # -- collector thread --------------------------------------------------

    def _collector(self) -> None:
        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = [first]
            total_rows = len(first.rows)
            deadline = (
                threading.TIMEOUT_MAX
                if self.max_delay == 0
                else self.max_delay
            )
            stop = False
            while total_rows < self.max_batch_rows:
                if self.max_delay == 0:
                    break
                try:
                    extra = self._queue.get(timeout=deadline)
                except queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
                total_rows += len(extra.rows)
            self._run_batch(batch, total_rows)
            if stop:
                return

    def _run_batch(self, batch: list[_Pending], total_rows: int) -> None:
        all_rows: list = []
        for pending in batch:
            all_rows.extend(pending.rows)
        try:
            results = self._predict_batch(all_rows)
            if len(results) != total_rows:
                raise RuntimeError(
                    f"predict_batch returned {len(results)} results "
                    f"for {total_rows} rows"
                )
        except BaseException as error:  # propagate to every waiter
            for pending in batch:
                pending.error = error
                pending.done.set()
            return
        with self._lock:
            self.batches += 1
            self.batched_rows += total_rows
            self.largest_batch = max(self.largest_batch, total_rows)
        if self._on_batch is not None:
            self._on_batch(total_rows)
        offset = 0
        for pending in batch:
            pending.results = results[offset:offset + len(pending.rows)]
            offset += len(pending.rows)
            pending.done.set()
