"""Reproducible perf harness: serial vs. process-pool mining wall-clock.

``repro bench`` (or ``benchmarks/bench_runner.py``) times the miners on
the synthetic paper-shaped generators — the same workloads the Figure 6
drivers sweep — serially and through :mod:`repro.parallel`, verifies the
parallel output is bit-identical, and writes everything to
``BENCH_core.json`` so every future change has a perf baseline to move.

Honesty rules baked in:

* best-of-``repeats`` wall-clock (robust to scheduler noise, biased the
  same way for serial and parallel runs);
* the host's ``cpu_count`` is recorded next to every speedup — a 4-worker
  run on a 1-core container *cannot* speed up, and the report says so
  rather than hiding it;
* every parallel measurement carries ``identical_output``, the assertion
  that sharded mining reproduced the serial result exactly.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from .baselines.farmer import FarmerResult, mine_farmer
from .core.topk_miner import TopkResult, mine_topk, relative_minsup
from .data.loaders import load_benchmark
from .experiments.harness import format_seconds
from .parallel import mine_farmer_parallel, mine_topk_parallel, results_equal

__all__ = ["Workload", "BenchReport", "run_bench", "write_report", "main"]

SCHEMA_VERSION = 1

# CI smoke profile: one small workload, two workers, one repetition.
QUICK_JOBS = (2,)


@dataclass(frozen=True)
class Workload:
    """One named mining configuration to time."""

    name: str
    dataset: str
    miner: str  # "topk" or "farmer"
    engine: str
    k: int = 1
    fraction: float = 0.9
    minconf: float = 0.0


# The full profile mirrors the Figure 6 series: MineTopkRGS at small and
# large k on the prefix tree, the bitset engine the classifiers use, and
# the FARMER baseline on its faithful projected-table engine.
DEFAULT_WORKLOADS = (
    Workload("all-topk-tree-k1", "ALL", "topk", "tree", k=1),
    Workload("all-topk-tree-k100", "ALL", "topk", "tree", k=100),
    Workload("all-topk-bitset-k10", "ALL", "topk", "bitset", k=10),
    Workload("all-farmer-table", "ALL", "farmer", "table"),
    Workload("pc-topk-tree-k1", "PC", "topk", "tree", k=1),
    Workload("pc-farmer-table", "PC", "farmer", "table"),
)

QUICK_WORKLOADS = (
    Workload("quick-topk-bitset-k5", "ALL", "topk", "bitset", k=5),
)


@dataclass
class BenchReport:
    """Everything ``repro bench`` measured, JSON-ready."""

    host: dict
    config: dict
    benchmarks: list[dict] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "created_at": self.created_at,
            "host": self.host,
            "config": self.config,
            "benchmarks": self.benchmarks,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"repro bench — {len(self.benchmarks)} workloads, "
            f"cpu_count={self.host['cpu_count']}"
        ]
        for entry in self.benchmarks:
            parts = [
                f"{entry['name']}: serial "
                f"{format_seconds(entry['serial_seconds'])}"
            ]
            for jobs, measured in sorted(
                entry["parallel"].items(), key=lambda kv: int(kv[0])
            ):
                check = "ok" if measured["identical_output"] else "MISMATCH"
                parts.append(
                    f"{jobs}j {format_seconds(measured['seconds'])} "
                    f"(x{measured['speedup']:.2f}, {check})"
                )
            lines.append("  " + " | ".join(parts))
        if self.host["cpu_count"] < max(
            (int(jobs) for entry in self.benchmarks
             for jobs in entry["parallel"]),
            default=1,
        ):
            lines.append(
                "  note: worker count exceeds host cores; speedups are "
                "bounded by the hardware, not the backend"
            )
        return lines


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _farmer_identical(a: FarmerResult, b: FarmerResult) -> bool:
    key = lambda g: (g.antecedent, g.consequent, g.row_set, g.support,
                     g.confidence)
    return list(map(key, a.groups)) == list(map(key, b.groups))


def _measure(
    workload: Workload,
    scale: float,
    jobs: Sequence[int],
    repeats: int,
) -> dict:
    data = load_benchmark(workload.dataset, scale=scale)
    train = data.train_items
    minsup = relative_minsup(train, 1, workload.fraction)
    if workload.miner == "topk":
        serial_fn = lambda: mine_topk(
            train, 1, minsup, k=workload.k, engine=workload.engine
        )
        parallel_fn = lambda n: mine_topk_parallel(
            train, 1, minsup, k=workload.k, engine=workload.engine, n_jobs=n
        )
        identical = results_equal
    else:
        serial_fn = lambda: mine_farmer(
            train, 1, minsup, minconf=workload.minconf, engine=workload.engine
        )
        parallel_fn = lambda n: mine_farmer_parallel(
            train, 1, minsup, minconf=workload.minconf,
            engine=workload.engine, n_jobs=n,
        )
        identical = _farmer_identical
    serial_seconds, serial_result = _best_of(serial_fn, repeats)
    entry = {
        "name": workload.name,
        "dataset": workload.dataset,
        "miner": workload.miner,
        "engine": workload.engine,
        "k": workload.k,
        "minsup": minsup,
        "fraction": workload.fraction,
        "n_rows": train.n_rows,
        "serial_seconds": serial_seconds,
        "serial_nodes_visited": serial_result.stats.nodes_visited,
        "parallel": {},
    }
    for n_jobs in jobs:
        seconds, result = _best_of(lambda: parallel_fn(n_jobs), repeats)
        entry["parallel"][str(n_jobs)] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else 0.0,
            "identical_output": identical(serial_result, result),
            "nodes_visited": result.stats.nodes_visited,
        }
    return entry


def run_bench(
    scale: float = 0.25,
    jobs: Sequence[int] = (2, 4),
    repeats: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[Workload]] = None,
) -> BenchReport:
    """Time every workload serially and at each worker count.

    ``quick`` switches to the CI smoke profile: one small workload, two
    workers, one repetition, scale 0.05 — a few seconds end to end.
    """
    if quick:
        workloads = QUICK_WORKLOADS if workloads is None else workloads
        jobs = QUICK_JOBS
        repeats = 1
        scale = min(scale, 0.05)
    elif workloads is None:
        workloads = DEFAULT_WORKLOADS
    report = BenchReport(
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
        },
        config={
            "scale": scale,
            "jobs": [int(n) for n in jobs],
            "repeats": repeats,
            "quick": quick,
        },
    )
    for workload in workloads:
        report.benchmarks.append(_measure(workload, scale, jobs, repeats))
    return report


def write_report(report: BenchReport, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_runner.py`` wraps it)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_core.json")
    parser.add_argument("--jobs", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    report = run_bench(
        scale=args.scale, jobs=tuple(args.jobs), repeats=args.repeats,
        quick=args.quick,
    )
    write_report(report, args.output)
    for line in report.summary_lines():
        print(line)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
