"""Entropy-minimized (Fayyad–Irani MDL) discretization.

This is the preprocessing step of Section 6: each gene's continuous
expression values are partitioned by recursively choosing the cut point
that minimizes the class-label entropy, accepting a cut only when the MDL
criterion of Fayyad & Irani (1993) says the information gain pays for the
extra model cost.  Genes for which no cut is accepted carry no class
information and are dropped — the discretization doubles as the feature
selection the paper relies on ("the entropy discretization algorithm also
performs feature selection as part of its process").

The resulting intervals become items: gene g with accepted cuts
``c_1 < ... < c_m`` yields items ``g[-inf,c_1), g[c_1,c_2), ...,
g[c_m,inf)``.  A fitted :class:`EntropyDiscretizer` can be applied to new
(test) samples so train and test share one item catalog.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .dataset import DiscretizedDataset, GeneExpressionDataset, Item

__all__ = ["EntropyDiscretizer", "mdl_cut_points", "entropy"]


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def _slice_entropy(counts: np.ndarray) -> tuple[float, int]:
    """Entropy and number of distinct classes present in a count vector."""
    present = int((counts > 0).sum())
    return entropy(counts), present


def _best_cut(
    values: np.ndarray, labels: np.ndarray, n_classes: int
) -> Optional[tuple[int, float]]:
    """Best binary cut of a sorted slice, or None if no cut is possible.

    Returns ``(split_index, weighted_entropy)`` where ``split_index`` is
    the first element of the right part.  Only positions where the value
    changes are candidates (one cannot separate equal values).
    """
    n = len(values)
    if n < 2:
        return None
    one_hot = np.zeros((n, n_classes), dtype=np.int64)
    one_hot[np.arange(n), labels] = 1
    cumulative = one_hot.cumsum(axis=0)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    if boundaries.size == 0:
        return None
    left = cumulative[boundaries - 1]
    total = cumulative[-1]
    right = total - left
    left_sizes = boundaries / n
    right_sizes = 1.0 - left_sizes

    def _row_entropy(block: np.ndarray) -> np.ndarray:
        sums = block.sum(axis=1, keepdims=True)
        probs = block / np.maximum(sums, 1)
        logs = np.zeros_like(probs)
        positive = probs > 0
        logs[positive] = np.log2(probs[positive])
        return -(probs * logs).sum(axis=1)

    weighted = left_sizes * _row_entropy(left) + right_sizes * _row_entropy(right)
    best = int(np.argmin(weighted))
    return int(boundaries[best]), float(weighted[best])


def _mdl_accepts(
    values: np.ndarray,
    labels: np.ndarray,
    split: int,
    weighted_entropy: float,
    n_classes: int,
) -> bool:
    """Fayyad–Irani MDL stopping criterion for a proposed cut."""
    n = len(values)
    total_counts = np.bincount(labels, minlength=n_classes)
    left_counts = np.bincount(labels[:split], minlength=n_classes)
    right_counts = total_counts - left_counts
    parent_entropy, k0 = _slice_entropy(total_counts)
    left_entropy, k1 = _slice_entropy(left_counts)
    right_entropy, k2 = _slice_entropy(right_counts)
    gain = parent_entropy - weighted_entropy
    delta = (
        math.log2(3**k0 - 2)
        - (k0 * parent_entropy - k1 * left_entropy - k2 * right_entropy)
    )
    threshold = (math.log2(n - 1) + delta) / n
    return gain > threshold


def mdl_cut_points(
    values: Sequence[float], labels: Sequence[int], n_classes: Optional[int] = None
) -> list[float]:
    """Return the sorted MDL-accepted cut points for one gene.

    Args:
        values: expression values of the gene across samples.
        labels: class label per sample.
        n_classes: number of classes; inferred when omitted.

    Returns:
        Sorted list of cut values (possibly empty).  A value ``v`` falls in
        the interval whose edges satisfy ``low <= v < high``.
    """
    value_array = np.asarray(values, dtype=float)
    label_array = np.asarray(labels, dtype=int)
    # Missing measurements (NaN) carry no ordering information; fit the
    # cuts on the present values only.
    present = ~np.isnan(value_array)
    if not present.all():
        value_array = value_array[present]
        label_array = label_array[present]
    if n_classes is None:
        n_classes = int(label_array.max()) + 1 if label_array.size else 0
    order = np.argsort(value_array, kind="mergesort")
    sorted_values = value_array[order]
    sorted_labels = label_array[order]
    cuts: list[float] = []

    def _recurse(lo: int, hi: int) -> None:
        segment_values = sorted_values[lo:hi]
        segment_labels = sorted_labels[lo:hi]
        candidate = _best_cut(segment_values, segment_labels, n_classes)
        if candidate is None:
            return
        split, weighted = candidate
        if not _mdl_accepts(segment_values, segment_labels, split, weighted, n_classes):
            return
        cut_value = (segment_values[split - 1] + segment_values[split]) / 2.0
        cuts.append(float(cut_value))
        _recurse(lo, lo + split)
        _recurse(lo + split, hi)

    _recurse(0, len(sorted_values))
    return sorted(cuts)


class EntropyDiscretizer:
    """Fits MDL cut points on training data and itemizes datasets.

    Typical use::

        disc = EntropyDiscretizer().fit(train)
        train_items = disc.transform(train)
        test_items = disc.transform(test)

    Attributes (after :meth:`fit`):
        cuts_: mapping gene index -> sorted cut list, only for kept genes.
        items_: the item catalog shared by all transformed datasets.
        selected_genes_: sorted gene indices that received at least one cut.
    """

    def __init__(self, max_cuts_per_gene: Optional[int] = None) -> None:
        self.max_cuts_per_gene = max_cuts_per_gene
        self.cuts_: dict[int, list[float]] = {}
        self.items_: list[Item] = []
        self.selected_genes_: list[int] = []
        self._gene_items: dict[int, list[Item]] = {}
        self._class_names: list[str] = []
        self._fitted = False

    @classmethod
    def from_cuts(
        cls,
        cuts: dict[int, list[float]],
        gene_names: Sequence[str],
        class_names: Optional[Sequence[str]] = None,
    ) -> "EntropyDiscretizer":
        """Rebuild a fitted discretizer from saved cut points.

        Args:
            cuts: gene index -> sorted cut list (only kept genes).
            gene_names: full gene name list (indexable by gene index).
            class_names: class display names, if known.

        The result transforms new data exactly like the discretizer the
        cuts came from — the deployment path for a trained pipeline.
        """
        discretizer = cls()
        discretizer.cuts_ = {
            int(gene): sorted(float(c) for c in cut_list)
            for gene, cut_list in cuts.items()
            if cut_list
        }
        discretizer.selected_genes_ = sorted(discretizer.cuts_)
        discretizer._build_items_from_names(list(gene_names))
        discretizer._class_names = list(class_names or [])
        discretizer._fitted = True
        return discretizer

    def fit(self, dataset: GeneExpressionDataset) -> "EntropyDiscretizer":
        """Learn cut points for every gene of ``dataset``."""
        self.cuts_ = {}
        self._class_names = list(dataset.class_names)
        n_classes = dataset.n_classes
        for gene in range(dataset.n_genes):
            cuts = mdl_cut_points(dataset.values[:, gene], dataset.labels, n_classes)
            if self.max_cuts_per_gene is not None:
                cuts = cuts[: self.max_cuts_per_gene]
            if cuts:
                self.cuts_[gene] = cuts
        self.selected_genes_ = sorted(self.cuts_)
        self._build_items(dataset)
        self._fitted = True
        return self

    def _build_items(self, dataset: GeneExpressionDataset) -> None:
        self._build_items_from_names(dataset.gene_names)

    def _build_items_from_names(self, gene_names: Sequence[str]) -> None:
        self.items_ = []
        self._gene_items = {}
        next_id = 0
        for gene in self.selected_genes_:
            edges = [float("-inf"), *self.cuts_[gene], float("inf")]
            gene_items = []
            for low, high in zip(edges[:-1], edges[1:]):
                item = Item(next_id, gene, gene_names[gene], low, high)
                gene_items.append(item)
                next_id += 1
            self._gene_items[gene] = gene_items
        self.items_ = [
            item for gene in self.selected_genes_ for item in self._gene_items[gene]
        ]

    def transform(self, dataset: GeneExpressionDataset) -> DiscretizedDataset:
        """Itemize ``dataset`` using the fitted cut points."""
        if not self._fitted:
            raise RuntimeError("EntropyDiscretizer must be fitted before transform")
        rows: list[list[int]] = [[] for _ in range(dataset.n_samples)]
        for gene in self.selected_genes_:
            column = dataset.values[:, gene]
            gene_items = self._gene_items[gene]
            edges = np.array(self.cuts_[gene])
            # searchsorted with side="right" maps v < c1 -> 0, c1 <= v < c2 -> 1, ...
            positions = np.searchsorted(edges, column, side="right")
            for sample, position in enumerate(positions):
                if np.isnan(column[sample]):
                    # A missing measurement contributes no item — rows
                    # end up with varying lengths, as in real microarray
                    # data ("each row consists of one or more items").
                    continue
                rows[sample].append(gene_items[int(position)].item_id)
        return DiscretizedDataset(
            rows,
            dataset.labels,
            self.items_,
            class_names=list(dataset.class_names) or self._class_names,
            name=dataset.name,
        )

    def fit_transform(self, dataset: GeneExpressionDataset) -> DiscretizedDataset:
        """Fit on ``dataset`` and itemize it."""
        return self.fit(dataset).transform(dataset)

    @property
    def n_selected_genes(self) -> int:
        """Number of genes that survived discretization."""
        return len(self.selected_genes_)
