"""Table 1: characteristics of the (synthetic) gene expression datasets.

Regenerates the paper's dataset summary — original gene count, genes
surviving entropy discretization, class labels and train/test splits —
from this repository's synthetic workloads, with the paper's published
numbers alongside for comparison.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from .harness import DATASET_NAMES, prepare, render_table

__all__ = ["Table1Row", "run", "render", "main"]

# Published values: (original genes, genes after discretization,
# class 1, class 0, train (c1:c0), test).
_PAPER = {
    "ALL": (7129, 866, "ALL", "AML", "38 (27:11)", 34),
    "LC": (12533, 2173, "MPM", "ADCA", "32 (16:16)", 149),
    "OC": (15154, 5769, "tumor", "normal", "210 (133:77)", 43),
    "PC": (12600, 1554, "tumor", "normal", "102 (52:50)", 34),
}


@dataclass
class Table1Row:
    """Measured characteristics of one dataset."""

    name: str
    n_genes: int
    n_genes_discretized: int
    class1: str
    class0: str
    n_train: int
    train_split: tuple[int, int]
    n_test: int

    def train_text(self) -> str:
        return f"{self.n_train} ({self.train_split[1]}:{self.train_split[0]})"


def run(
    scale: float = 1.0, datasets: Sequence[str] = DATASET_NAMES
) -> list[Table1Row]:
    """Generate, discretize and summarize each dataset."""
    rows = []
    for name in datasets:
        benchmark = prepare(name, scale)
        counts = benchmark.train_items.class_counts()
        rows.append(
            Table1Row(
                name=name,
                n_genes=benchmark.train.n_genes,
                n_genes_discretized=benchmark.discretizer.n_selected_genes,
                class1=benchmark.spec.class_names[1],
                class0=benchmark.spec.class_names[0],
                n_train=benchmark.train.n_samples,
                train_split=(counts[0], counts[1]),
                n_test=benchmark.test.n_samples,
            )
        )
    return rows


def render(rows: Sequence[Table1Row], show_paper: bool = True) -> str:
    """Render measured (and optionally published) characteristics."""
    headers = ["Dataset", "#Genes", "#Genes disc.", "Class1", "Class0",
               "#Train", "#Test"]
    body = [
        [row.name, row.n_genes, row.n_genes_discretized, row.class1,
         row.class0, row.train_text(), row.n_test]
        for row in rows
    ]
    out = render_table(headers, body, title="Table 1 (measured)")
    if show_paper:
        paper_body = [
            [name, *(_PAPER[name][i] for i in (0, 1, 2, 3, 4, 5))]
            for name in (row.name for row in rows)
            if name in _PAPER
        ]
        out += "\n\n" + render_table(headers, paper_body, title="Table 1 (paper)")
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="gene-count scale factor (1.0 = Table 1 shapes)")
    parser.add_argument("--datasets", nargs="+", default=list(DATASET_NAMES),
                        choices=DATASET_NAMES)
    args = parser.parse_args(argv)
    print(render(run(scale=args.scale, datasets=args.datasets),
                 show_paper=args.scale == 1.0))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
