"""Property-based cross-validation of all five miners.

FARMER (all three engines), CHARM (both tidset modes) and CLOSET+ must
produce exactly the same rule-group sets on arbitrary datasets — row and
column enumeration meeting in the middle, which is also how the paper
frames the baselines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    mine_charm,
    mine_closetplus,
    mine_farmer,
    naive_farmer,
)
from repro.data.dataset import DiscretizedDataset, Item


@st.composite
def small_datasets(draw):
    n_rows = draw(st.integers(4, 9))
    n_items = draw(st.integers(3, 8))
    rows = [
        frozenset(
            draw(st.sets(st.integers(0, n_items - 1), min_size=1,
                         max_size=n_items))
        )
        for _ in range(n_rows)
    ]
    labels = draw(
        st.lists(st.integers(0, 1), min_size=n_rows, max_size=n_rows).filter(
            lambda ls: 0 in ls and 1 in ls
        )
    )
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf"))
        for i in range(n_items)
    ]
    return DiscretizedDataset(rows, labels, items)


def keys(groups):
    return {
        (tuple(sorted(g.antecedent)), g.row_set, g.support,
         round(g.confidence, 9))
        for g in groups
    }


@given(small_datasets(), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_all_miners_agree(dataset, minsup):
    oracle = keys(naive_farmer(dataset, 1, minsup))
    assert keys(mine_farmer(dataset, 1, minsup, engine="bitset").groups) == oracle
    assert keys(mine_farmer(dataset, 1, minsup, engine="table").groups) == oracle
    assert keys(mine_farmer(dataset, 1, minsup, engine="tree").groups) == oracle
    assert keys(mine_charm(dataset, 1, minsup).groups) == oracle
    assert keys(mine_charm(dataset, 1, minsup, use_diffsets=False).groups) == oracle
    assert keys(mine_closetplus(dataset, 1, minsup).groups) == oracle


@given(small_datasets())
@settings(max_examples=30, deadline=None)
def test_minconf_consistency(dataset):
    all_groups = keys(mine_farmer(dataset, 1, 1, minconf=0.0).groups)
    confident = keys(mine_farmer(dataset, 1, 1, minconf=0.7).groups)
    assert confident == {key for key in all_groups if key[3] >= 0.7}
