"""Integer-backed bitsets over row and item identifiers.

All miners in this package manipulate *sets of row ids* and *sets of item
ids* very heavily: closure computation is an intersection of row sets, the
backward-pruning check is a subset test, and support counting is a
population count.  Arbitrary-precision Python integers give us all of these
operations in C speed with no external dependencies, so the whole package
standardises on plain ``int`` bitsets and uses the helpers below to convert
between bitsets and explicit index collections.

The empty set is ``0``.  Bit ``i`` set means element ``i`` is present.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "bit",
    "from_indices",
    "to_indices",
    "iter_indices",
    "popcount",
    "popcount_masked",
    "is_subset",
    "contains",
    "lowest_bit_index",
    "mask_below",
    "mask_upto",
]


def bit(index: int) -> int:
    """Return a bitset containing only ``index``.

    Raises:
        ValueError: if ``index`` is negative.
    """
    if index < 0:
        raise ValueError(f"bitset indices are non-negative, got {index}")
    return 1 << index


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitset from an iterable of non-negative indices.

    Raises:
        ValueError: if any index is negative.
    """
    bits = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"bitset indices are non-negative, got {index}")
        bits |= 1 << index
    return bits


def to_indices(bits: int) -> list[int]:
    """Return the sorted list of indices present in ``bits``."""
    return list(iter_indices(bits))


def iter_indices(bits: int) -> Iterator[int]:
    """Yield the indices present in ``bits`` in ascending order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def popcount(bits: int) -> int:
    """Return the number of elements in the bitset."""
    return bits.bit_count()


def popcount_masked(bits: int, mask: int) -> tuple[int, int]:
    """Return ``(popcount(bits & mask), popcount(bits))`` in one call.

    The pair every enumeration node needs — the consequent-class count
    and the total count of a row set — without naming the intermediate
    masked bitset twice at the call site.
    """
    return (bits & mask).bit_count(), bits.bit_count()


def is_subset(smaller: int, larger: int) -> bool:
    """Return True iff every element of ``smaller`` is in ``larger``."""
    return smaller & ~larger == 0


def contains(bits: int, index: int) -> bool:
    """Return True iff ``index`` is present in ``bits``."""
    return bits >> index & 1 == 1


def lowest_bit_index(bits: int) -> int:
    """Return the smallest index in a non-empty bitset.

    Raises:
        ValueError: if ``bits`` is empty.
    """
    if not bits:
        raise ValueError("empty bitset has no lowest bit")
    return (bits & -bits).bit_length() - 1


def mask_below(index: int) -> int:
    """Return a bitset of all indices strictly below ``index``.

    ``mask_below(0)`` is the empty mask.

    Raises:
        ValueError: if ``index`` is negative.
    """
    if index < 0:
        raise ValueError(f"mask_below needs a non-negative index, got {index}")
    return (1 << index) - 1


def mask_upto(index: int) -> int:
    """Return a bitset of all indices at or below ``index``.

    Raises:
        ValueError: if ``index`` is negative (there is no non-empty prefix
        ending below index 0; use ``mask_below(0)`` for the empty mask).
    """
    if index < 0:
        raise ValueError(f"mask_upto needs a non-negative index, got {index}")
    return (1 << (index + 1)) - 1
