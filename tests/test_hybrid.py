"""Tests for the hybrid column-then-row miner (Section 8 extension).

Covers the streaming/out-of-core production path and its execution
plumbing: bit-identity against the direct miner (engines x backends x
cohorts), cancellation/time budgets, backend resolution parity, spill
hygiene (no leaked files, error paths included), and the streaming
builder's bounded-memory claim.
"""

import threading

import pytest

from repro.core.backends import resolve_backend
from repro.core.hybrid import (
    AUTO_HYBRID_ROWS,
    mine_topk_hybrid,
    plan_auto_strategy,
)
from repro.core.topk_miner import mine_topk
from repro.data import (
    TALL_COHORTS,
    DatasetChunkSource,
    TallChunkSource,
    generate_tall_cohort,
)
from repro.data.synthetic import TallCohortSpec, random_discretized_dataset
from repro.parallel import results_equal, shutdown_pool


def profiles(per_row):
    return {
        row: [(g.confidence, g.support) for g in groups]
        for row, groups in per_row.items()
    }


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_direct_miner(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=seed)
        for consequent in (0, 1):
            for k in (1, 3):
                direct = mine_topk(ds, consequent, 1, k)
                hybrid = mine_topk_hybrid(ds, consequent, 1, k)
                assert results_equal(hybrid, direct)

    def test_figure1(self, figure1):
        direct = mine_topk(figure1, 1, minsup=2, k=1)
        hybrid = mine_topk_hybrid(figure1, 1, minsup=2, k=1)
        assert results_equal(hybrid, direct)

    def test_minsup_respected(self, small_random):
        result = mine_topk_hybrid(small_random, 1, minsup=3, k=2)
        for groups in result.per_row.values():
            assert all(g.support >= 3 for g in groups)

    def test_groups_are_closed_and_exact(self, small_random):
        ds = small_random
        result = mine_topk_hybrid(ds, 1, minsup=1, k=2)
        for row, groups in result.per_row.items():
            for group in groups:
                assert ds.support_set(group.antecedent) == group.row_set
                assert ds.common_items(group.row_set) == group.antecedent
                assert group.row_set >> row & 1

    def test_aggregation_row_sets_match_per_bit_recomputation(self, small_random):
        """The batched intersect_many/popcount_many aggregation must agree
        with the per-bit brute force it replaced, counter for counter."""
        ds = small_random
        result = mine_topk_hybrid(ds, 1, minsup=1, k=3)
        item_rows = ds.item_row_sets()
        for groups in result.per_row.values():
            for group in groups:
                brute = None
                for item in group.antecedent:
                    rows = item_rows[item]
                    brute = rows if brute is None else brute & rows
                assert group.row_set == brute
                support = bin(brute & ds.class_mask(1)).count("1")
                assert group.support == support
                assert group.confidence == support / bin(brute).count("1")

    def test_mine_topk_strategy_dispatch(self, small_random):
        direct = mine_topk(small_random, 1, 1, k=2)
        hybrid = mine_topk(small_random, 1, 1, k=2, strategy="hybrid")
        assert results_equal(hybrid, direct)
        assert hybrid.stats.engine == "hybrid/bitset"
        with pytest.raises(ValueError, match="unknown strategy"):
            mine_topk(small_random, 1, 1, strategy="bogus")
        with pytest.raises(ValueError, match="strategy='hybrid'"):
            mine_topk(small_random, 1, 1, spill_dir="/tmp")

    def test_auto_strategy_planner_rung(self):
        assert plan_auto_strategy(AUTO_HYBRID_ROWS - 1) == "direct"
        assert plan_auto_strategy(AUTO_HYBRID_ROWS) == "hybrid"


# Test-size scales for the committed cohorts.  The chunk draws are
# prefix-stable across sizes, so distinct scales keep the four cases
# exercising genuinely different row sets (equal scaled row counts
# would collapse them into one dataset).
COHORT_TEST_SCALE = {
    "tall-1k": 0.125,
    "tall-4k": 0.04,
    "tall-16k": 0.012,
    "tall-64k": 0.0035,
}


class TestTallCohorts:
    """Bit-identity on (scaled) committed tall cohorts: engines x backends."""

    @pytest.mark.parametrize("name", sorted(TALL_COHORTS))
    def test_matches_direct_on_cohort(self, name):
        spec = TALL_COHORTS[name].scaled(COHORT_TEST_SCALE[name])
        ds = generate_tall_cohort(spec)
        minsup = max(1, int(0.5 * sum(1 for l in ds.labels if l == 1)))
        for k in (1, 2):
            direct = mine_topk(ds, 1, minsup, k=k)
            hybrid = mine_topk_hybrid(ds, 1, minsup, k=k)
            assert results_equal(hybrid, direct)
            assert hybrid.stats.completed == direct.stats.completed

    @pytest.mark.parametrize("engine", ["bitset", "table", "tree"])
    @pytest.mark.parametrize("backend", ["int", "numpy"])
    def test_engine_backend_matrix(self, engine, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        spec = TALL_COHORTS["tall-1k"].scaled(0.125)
        ds = generate_tall_cohort(spec)
        minsup = max(1, int(0.5 * sum(1 for l in ds.labels if l == 1)))
        direct = mine_topk(ds, 1, minsup, k=2, engine=engine, backend=backend)
        hybrid = mine_topk_hybrid(
            ds, 1, minsup, k=2, engine=engine, backend=backend
        )
        assert results_equal(hybrid, direct)


class TestStreaming:
    def test_chunked_source_matches_materialized(self):
        """Streaming the spec chunk by chunk must reproduce the mine over
        the materialized cohort exactly, for every committed spec."""
        for name in sorted(TALL_COHORTS):
            spec = TALL_COHORTS[name].scaled(COHORT_TEST_SCALE[name])
            ds = generate_tall_cohort(spec)
            minsup = max(1, int(0.5 * sum(1 for l in ds.labels if l == 1)))
            materialized = mine_topk_hybrid(ds, 1, minsup, k=2)
            streamed = mine_topk_hybrid(
                consequent=1,
                minsup=minsup,
                k=2,
                source=TallChunkSource(spec),
            )
            assert results_equal(streamed, materialized)

    def test_multi_chunk_custom_spec(self):
        spec = TallCohortSpec(name="tall-test", n_rows=384, chunk_rows=128)
        ds = generate_tall_cohort(spec)
        minsup = max(1, int(0.5 * sum(1 for l in ds.labels if l == 1)))
        streamed = mine_topk_hybrid(
            consequent=1, minsup=minsup, k=2, source=TallChunkSource(spec)
        )
        direct = mine_topk(ds, 1, minsup, k=2)
        assert results_equal(streamed, direct)

    def test_dataset_chunk_source_matches(self, small_random):
        in_memory = mine_topk_hybrid(small_random, 1, minsup=1, k=2)
        chunked = mine_topk_hybrid(
            consequent=1,
            minsup=1,
            k=2,
            source=DatasetChunkSource(small_random, chunk_rows=3),
        )
        assert results_equal(chunked, in_memory)

    def test_requires_exactly_one_input(self, small_random):
        with pytest.raises(ValueError, match="exactly one"):
            mine_topk_hybrid(consequent=1, minsup=1)
        with pytest.raises(ValueError, match="exactly one"):
            mine_topk_hybrid(
                small_random,
                consequent=1,
                minsup=1,
                source=DatasetChunkSource(small_random),
            )

    def test_tall_16k_streams_within_cell_budget(self, tmp_path):
        """The acceptance claim: tall-16k mines off the chunk stream with
        builder peak memory strictly below the full-matrix size."""
        spec = TALL_COHORTS["tall-16k"]
        source = TallChunkSource(spec)
        n_case = sum(
            sum(1 for label in labels if label == 1)
            for _rows, labels in source.chunks()
        )
        minsup = int(0.7 * n_case)
        budget = 65536
        result = mine_topk_hybrid(
            consequent=1,
            minsup=minsup,
            k=1,
            source=TallChunkSource(spec),
            spill_dir=str(tmp_path),
            max_resident_cells=budget,
            node_budget_per_partition=64,
        )
        stats = result.hybrid_stats
        assert stats.total_cells > budget
        assert stats.peak_resident_cells < stats.total_cells
        assert stats.spilled_partitions > 0
        # Spill hygiene: the unique run directory is gone afterwards.
        assert list(tmp_path.iterdir()) == []


class TestCancellation:
    def test_preset_cancel_skips_every_partition(self, small_random):
        cancel = threading.Event()
        cancel.set()
        result = mine_topk_hybrid(small_random, 1, minsup=1, k=2, cancel=cancel)
        assert not result.stats.completed
        stats = result.hybrid_stats
        assert stats.n_skipped_partitions == stats.n_partitions
        assert all(groups == [] for groups in result.per_row.values())

    def test_cancel_between_partitions_stops_early(self, small_random):
        class TripAfter:
            """Cancel token that trips after a fixed number of polls."""

            def __init__(self, polls):
                self.remaining = polls

            def is_set(self):
                self.remaining -= 1
                return self.remaining < 0

        full = mine_topk_hybrid(small_random, 1, minsup=1, k=2)
        assert full.hybrid_stats.n_partitions > 1
        result = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, cancel=TripAfter(2)
        )
        assert not result.stats.completed
        stats = result.hybrid_stats
        assert 0 < stats.n_skipped_partitions <= stats.n_partitions

    def test_time_budget_expiry_marks_incomplete(self, small_random):
        result = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, time_budget=1e-9
        )
        assert not result.stats.completed
        assert result.hybrid_stats.n_skipped_partitions > 0


class TestExecutionSurface:
    def test_backend_resolution_matches_direct(self, small_random):
        """strategy=hybrid must resolve backend= exactly like mine_topk."""
        for requested in (None, "auto", "int"):
            expected = resolve_backend(
                requested, n_rows=small_random.n_rows, task="topk"
            ).name
            result = mine_topk_hybrid(
                small_random, 1, minsup=1, k=1, backend=requested
            )
            assert result.hybrid_stats.backend == expected

    def test_backends_bit_identical(self, small_random):
        base = mine_topk_hybrid(small_random, 1, minsup=1, k=3, backend="int")
        pytest.importorskip("numpy")
        other = mine_topk_hybrid(
            small_random, 1, minsup=1, k=3, backend="numpy"
        )
        assert results_equal(base, other)
        assert base.hybrid_stats.backend == "int"
        assert other.hybrid_stats.backend == "numpy"

    def test_parallel_partitions_match_serial(self, small_random):
        serial = mine_topk_hybrid(small_random, 1, minsup=1, k=2)
        try:
            fanned = mine_topk_hybrid(small_random, 1, minsup=1, k=2, n_jobs=2)
        finally:
            shutdown_pool()
        assert results_equal(fanned, serial)
        assert fanned.hybrid_stats.n_jobs == 2


class TestDiskSpill:
    def test_spill_matches_in_memory_and_leaves_nothing(
        self, tmp_path, small_random
    ):
        in_memory = mine_topk_hybrid(small_random, 1, minsup=1, k=2)
        spilled = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, spill_dir=str(tmp_path)
        )
        assert results_equal(spilled, in_memory)
        # The run spills (cell budget defaults to 0 with spill_dir set)...
        assert spilled.hybrid_stats.spilled_partitions > 0
        # ...and removes its unique run directory afterwards: no leaks.
        assert list(tmp_path.iterdir()) == []

    def test_spill_cleanup_on_error_path(self, tmp_path, small_random):
        with pytest.raises(ValueError):
            mine_topk_hybrid(
                small_random,
                1,
                minsup=1,
                k=1,
                engine="no-such-engine",
                spill_dir=str(tmp_path),
            )
        assert list(tmp_path.iterdir()) == []

    def test_concurrent_runs_share_spill_dir(self, tmp_path, small_random):
        first = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, spill_dir=str(tmp_path)
        )
        second = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, spill_dir=str(tmp_path)
        )
        assert results_equal(first, second)
        assert list(tmp_path.iterdir()) == []


class TestStats:
    def test_partition_stats(self, small_random):
        result = mine_topk_hybrid(small_random, 1, minsup=1, k=1)
        stats = result.hybrid_stats
        assert stats.n_partitions >= 1
        assert stats.max_partition_rows <= small_random.n_rows
        assert stats.completed
        assert stats.total_cells == sum(len(r) for r in small_random.rows)
        assert result.stats.engine == "hybrid/bitset"

    def test_partition_budget_marks_incomplete(self, small_random):
        result = mine_topk_hybrid(
            small_random, 1, minsup=1, k=5, node_budget_per_partition=1
        )
        # With one node per partition the run is necessarily truncated.
        assert not result.stats.completed

    def test_tall_dataset(self):
        ds = random_discretized_dataset(30, 12, density=0.35, seed=44)
        direct = mine_topk(ds, 1, minsup=2, k=2)
        hybrid = mine_topk_hybrid(ds, 1, minsup=2, k=2)
        assert results_equal(hybrid, direct)
