"""The service benchmark harness and its ``--compare`` regression gate."""

from __future__ import annotations

from repro.service.loadtest import (
    REGRESSION_MIN_DELTA_RPS,
    Scenario,
    compare_reports,
    run_loadtest,
)

_HOST = {"platform": "test", "cpu_count": 1}


def _report(*benchmarks, host=_HOST):
    return {"host": host, "config": {}, "benchmarks": list(benchmarks)}


def _entry(server="async", scenario="pipelined", rps=1000.0, **overrides):
    entry = {
        "server": server,
        "scenario": scenario,
        "connections": 4,
        "depth": 8,
        "requests_target": 96,
        "rows_per_request": 2,
        "requests": 96,
        "errors": 0,
        "shed": 0,
        "rps": rps,
    }
    entry.update(overrides)
    return entry


class TestCompareReports:
    def test_identical_is_ok(self):
        lines, ok = compare_reports(_report(_entry()), _report(_entry()))
        assert ok
        assert "1 compared" in lines[0]

    def test_faster_is_ok(self):
        _lines, ok = compare_reports(
            _report(_entry(rps=2000.0)), _report(_entry(rps=1000.0))
        )
        assert ok

    def test_large_rps_drop_fails(self):
        lines, ok = compare_reports(
            _report(_entry(rps=300.0)), _report(_entry(rps=1000.0))
        )
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_ratio_alone_does_not_fail_tiny_throughputs(self):
        # 20 -> 8 rps is a >2x drop but under the absolute floor — CI
        # jitter on a loaded runner, not an architectural regression.
        assert 20.0 - 8.0 < REGRESSION_MIN_DELTA_RPS
        _lines, ok = compare_reports(
            _report(_entry(rps=8.0)), _report(_entry(rps=20.0))
        )
        assert ok

    def test_request_errors_fail_the_gate(self):
        lines, ok = compare_reports(
            _report(_entry(errors=3)), _report(_entry())
        )
        assert not ok
        assert any("ERRORS" in line for line in lines)

    def test_changed_traffic_shape_is_skipped(self):
        lines, ok = compare_reports(
            _report(_entry(rps=100.0, depth=32)),
            _report(_entry(rps=1000.0)),
        )
        assert ok
        assert any("skipped" in line for line in lines)

    def test_missing_baseline_entry_is_skipped(self):
        lines, ok = compare_reports(
            _report(_entry(scenario="sequential", rps=1.0)),
            _report(_entry(scenario="pipelined")),
        )
        assert ok
        assert any("no baseline entry" in line for line in lines)

    def test_different_host_noted_not_fatal(self):
        lines, ok = compare_reports(
            _report(_entry(), host={"platform": "a", "cpu_count": 2}),
            _report(_entry(), host={"platform": "b", "cpu_count": 8}),
        )
        assert ok
        assert any("host differs" in line for line in lines)


class TestRunLoadtest:
    def test_minimal_run_produces_complete_report(self):
        # One tiny pipelined scenario against both servers: the full
        # measurement path (drivers, percentiles, batch histogram,
        # summary) in a few seconds.
        scenarios = (Scenario("pipelined", connections=2, requests=16,
                              depth=8),)
        report = run_loadtest(scenarios=scenarios)
        assert len(report.benchmarks) == 2
        for entry in report.benchmarks:
            assert entry["requests"] == entry["requests_target"] == 32
            assert entry["errors"] == 0
            assert entry["rps"] > 0
            assert entry["p99_ms"] >= entry["p50_ms"] > 0
            assert "batch_histogram" in entry
        servers = {entry["server"] for entry in report.benchmarks}
        assert servers == {"legacy", "async"}
        assert "pipelined" in report.summary["async_vs_legacy_rps"]
        payload = report.as_dict()
        assert payload["schema"] == 1
        lines = report.summary_lines()
        assert any("pipelined" in line for line in lines)
        # The report round-trips through its own compare gate cleanly.
        _lines, ok = compare_reports(payload, payload)
        assert ok
