"""Save and load trained rule-based classifiers as JSON.

Rule-based models are just rules, scores and a default class, so they
serialize cleanly; a clinician-facing deployment wants to train once on
the lab's data and ship the (human-auditable) rule file.  The JSON keeps
item ids; pair it with the discretizer's item catalog
(:func:`repro.data.loaders.save_discretized`) for rendering.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.rules import Rule
from .cba import CBAClassifier
from .rcbt import ClassifierLevel, RCBTClassifier
from .selection import SelectedRules

__all__ = [
    "save_classifier",
    "load_classifier",
    "classifier_to_payload",
    "classifier_from_payload",
]

_FORMAT_VERSION = 1


def _rule_to_payload(rule: Rule) -> dict:
    return {
        "antecedent": sorted(rule.antecedent),
        "consequent": rule.consequent,
        "support": rule.support,
        "confidence": rule.confidence,
    }


def _rule_from_payload(payload: dict) -> Rule:
    return Rule(
        antecedent=frozenset(payload["antecedent"]),
        consequent=payload["consequent"],
        support=payload["support"],
        confidence=payload["confidence"],
    )


def classifier_to_payload(
    model: Union[CBAClassifier, RCBTClassifier]
) -> dict:
    """JSON-safe payload of a fitted CBA or RCBT classifier.

    This is the in-memory half of :func:`save_classifier`; the service
    registry and HTTP API move the same payload over the wire instead of
    through a file.

    Raises:
        NotFittedError: if the model has not been trained.
        TypeError: for unsupported classifier types.
    """
    model._check_fitted()
    if isinstance(model, RCBTClassifier):
        payload = {
            "format": _FORMAT_VERSION,
            "kind": "rcbt",
            "k": model.k,
            "nl": model.nl,
            "default_class": model.default_class_,
            "use_voting": model.use_voting,
            "class_counts": model._class_counts,
            "levels": [
                {
                    "rules": [_rule_to_payload(rule) for rule in level.rules],
                    "score_norms": level.score_norms,
                }
                for level in model.levels_
            ],
        }
    elif isinstance(model, CBAClassifier):
        assert model.selected_ is not None
        payload = {
            "format": _FORMAT_VERSION,
            "kind": "cba",
            "default_class": model.selected_.default_class,
            "training_errors": model.selected_.training_errors,
            "rules": [
                _rule_to_payload(rule) for rule in model.selected_.rules
            ],
        }
    else:
        raise TypeError(
            f"cannot serialize classifier of type {type(model).__name__}"
        )
    return payload


def save_classifier(
    model: Union[CBAClassifier, RCBTClassifier], path: str | Path
) -> None:
    """Write a fitted CBA or RCBT classifier to ``path`` as JSON.

    Raises:
        NotFittedError: if the model has not been trained.
        TypeError: for unsupported classifier types.
    """
    payload = classifier_to_payload(model)
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def classifier_from_payload(
    payload: dict,
) -> Union[CBAClassifier, RCBTClassifier]:
    """Rebuild a classifier from a :func:`classifier_to_payload` payload.

    The returned model predicts identically to the saved one; training
    artifacts that are not needed for prediction (mining results,
    candidate pools) are not restored.
    """
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported classifier file format: {version!r}")
    kind = payload.get("kind")
    if kind == "rcbt":
        model = RCBTClassifier(
            k=payload["k"], nl=payload["nl"], use_voting=payload["use_voting"]
        )
        model.default_class_ = payload["default_class"]
        model._class_counts = list(payload["class_counts"])
        model.levels_ = []
        model._level_scores = []
        for level_payload in payload["levels"]:
            rules = [
                _rule_from_payload(entry) for entry in level_payload["rules"]
            ]
            model.levels_.append(
                ClassifierLevel(
                    rules=rules,
                    score_norms=list(level_payload["score_norms"]),
                )
            )
            model._level_scores.append(
                {
                    index: model._rule_score(rule)
                    for index, rule in enumerate(rules)
                }
            )
        model._fitted = True
        return model
    if kind == "cba":
        model = CBAClassifier()
        model.selected_ = SelectedRules(
            rules=[_rule_from_payload(entry) for entry in payload["rules"]],
            default_class=payload["default_class"],
            training_errors=payload["training_errors"],
        )
        model._fitted = True
        return model
    raise ValueError(f"unknown classifier kind: {kind!r}")


def load_classifier(path: str | Path) -> Union[CBAClassifier, RCBTClassifier]:
    """Load a classifier written by :func:`save_classifier`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return classifier_from_payload(payload)
