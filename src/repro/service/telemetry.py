"""Request counters and latency histograms for the serving layer.

A deliberately tiny, stdlib-only metrics registry: named monotonic
counters plus fixed-bucket latency histograms, all behind one lock so a
``ThreadingHTTPServer`` handler thread can record from anywhere.  The
``/metrics`` endpoint returns :meth:`Telemetry.snapshot` as JSON — the
e2e tests read cache hit/miss counters from it, and an operator can
scrape it with curl.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Sequence

__all__ = ["Telemetry", "LatencyHistogram", "BATCH_SIZE_BUCKETS"]

# Upper bucket edges in seconds; chosen to resolve both sub-millisecond
# cache hits and multi-second mining runs.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, float("inf")
)

# Power-of-two row-count edges for the ``classify_batch_size`` histogram
# — the observable proof that request coalescing actually batches (a
# front end that never batches puts every observation in the "1" bucket).
BATCH_SIZE_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, float("inf")
)


class LatencyHistogram:
    """Fixed-bucket histogram of observed durations (seconds)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("bucket edges must be ascending")
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        # Called on every request: binary-search the ascending edges
        # instead of scanning them.  bisect_left finds the first edge
        # >= seconds, preserving the "seconds <= edge" bucket rule.
        index = bisect_left(self.buckets, seconds)
        if index < len(self.counts):
            self.counts[index] += 1
        self.total += seconds
        self.count += 1
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def as_dict(self) -> dict:
        edges = [
            "+inf" if edge == float("inf") else edge for edge in self.buckets
        ]
        return {
            "count": self.count,
            "sum_seconds": self.total,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "max_seconds": self.max_seconds,
            "buckets": {
                str(edge): count for edge, count in zip(edges, self.counts)
            },
        }


class Telemetry:
    """Thread-safe registry of counters, gauges and latency histograms.

    Counters are monotonic (``increment``); gauges are last-write-wins
    (``set_gauge``) and carry values sampled from elsewhere at snapshot
    time — the miner-pool and planner statistics of
    :func:`repro.parallel.pool_stats` are exported this way.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one observation in the named histogram.

        ``buckets`` customizes the edges the *first* time a histogram is
        created (e.g. :data:`BATCH_SIZE_BUCKETS` for row counts instead
        of seconds); later observations reuse the existing histogram.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram(
                    buckets if buckets is not None else DEFAULT_BUCKETS
                )
            histogram.observe(value)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def set_gauges(self, values: dict) -> None:
        """Set several gauges atomically (one lock round-trip).

        Used at ``/metrics`` scrape time to import externally sampled
        counter families wholesale — e.g. the miner-pool, planner and
        crash-recovery statistics of :func:`repro.parallel.pool_stats`
        (``shard_retries``, ``pool_restarts_on_failure``,
        ``serial_degradations``...), so a scrape never sees half of one
        sampling.
        """
        with self._lock:
            self._gauges.update(values)

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0)

    def snapshot(self, extra: Optional[dict] = None) -> dict:
        """JSON-safe view of every counter, gauge and histogram."""
        with self._lock:
            payload = {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "latency": {
                    name: histogram.as_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }
        if extra:
            payload.update(extra)
        return payload
