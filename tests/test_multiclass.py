"""Three-class coverage: the machinery is not hard-wired to two classes.

The paper's datasets are binary, but nothing in Definition 2.3 or the
algorithms requires it — rules conclude a *specified* class and everything
else is the complement.  These tests run the miners and rule-based
classifiers on a 3-class dataset.
"""

import numpy as np
import pytest

from repro.baselines import mine_farmer, naive_farmer, naive_topk
from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.core.topk_miner import mine_topk
from repro.data.dataset import DiscretizedDataset, Item


@pytest.fixture
def three_class():
    """Each class has a signature item (0/1/2) plus shared noise items."""
    rng = np.random.default_rng(5)
    rows, labels = [], []
    for class_id in range(3):
        for _ in range(6):
            row = {class_id}
            row.update(
                3 + int(i) for i in np.flatnonzero(rng.random(5) < 0.4)
            )
            rows.append(frozenset(row))
            labels.append(class_id)
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf")) for i in range(8)
    ]
    return DiscretizedDataset(rows, labels, items)


class TestMining:
    @pytest.mark.parametrize("consequent", (0, 1, 2))
    def test_topk_matches_oracle(self, three_class, consequent):
        expected = naive_topk(three_class, consequent, 2, 2)
        actual = mine_topk(three_class, consequent, 2, 2).per_row
        for row in expected:
            exp = [(g.confidence, g.support) for g in expected[row]]
            got = [(g.confidence, g.support) for g in actual[row]]
            assert exp == got

    @pytest.mark.parametrize("consequent", (0, 1, 2))
    def test_farmer_matches_oracle(self, three_class, consequent):
        expected = {
            (g.row_set, g.support)
            for g in naive_farmer(three_class, consequent, 2)
        }
        actual = {
            (g.row_set, g.support)
            for g in mine_farmer(three_class, consequent, 2).groups
        }
        assert actual == expected

    def test_signature_item_is_top1(self, three_class):
        result = mine_topk(three_class, 0, minsup=4, k=1)
        for groups in result.per_row.values():
            assert groups
            assert groups[0].confidence == 1.0


class TestClassifiers:
    def test_cba_three_classes(self, three_class):
        model = CBAClassifier(minsup_fraction=0.5).fit(three_class)
        assert model.score(three_class) == 1.0

    def test_rcbt_three_classes(self, three_class):
        model = RCBTClassifier(k=2, nl=3, minsup_fraction=0.5).fit(
            three_class
        )
        assert model.score(three_class) == 1.0
        level = model.levels_[0]
        assert len(level.score_norms) == 3

    def test_predictions_span_all_classes(self, three_class):
        model = RCBTClassifier(k=2, nl=3, minsup_fraction=0.5).fit(
            three_class
        )
        assert set(model.predict(three_class)) == {0, 1, 2}
