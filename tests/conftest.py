"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.data import make_figure1_example, random_discretized_dataset
from repro.data.loaders import load_benchmark


@pytest.fixture
def figure1():
    """The paper's running example (Figure 1a)."""
    return make_figure1_example()


@pytest.fixture
def small_random():
    """A fixed small random itemized dataset."""
    return random_discretized_dataset(n_rows=10, n_items=9, density=0.45, seed=11)


@pytest.fixture(scope="session")
def small_benchmark():
    """A small ALL-shaped benchmark (generated + discretized once)."""
    return load_benchmark("ALL", scale=0.05, use_cache=False)


@pytest.fixture(scope="session")
def pc_benchmark():
    """A small PC-shaped benchmark (with the test batch shift).

    Scale 0.1 is the smallest at which the batch effect reproduces the
    paper's regime (enough near-perfect genes that flipping a third of
    them breaks single-gene learners without starving rule committees).
    """
    return load_benchmark("PC", scale=0.1, use_cache=False)
