"""Service benchmark: drive both HTTP front ends, gate regressions.

``repro loadtest`` is to the serving layer what ``repro bench`` is to the
miners: a reproducible harness that starts each front end (threaded
legacy, coalescing asyncio) on an ephemeral port, drives it with real
HTTP traffic, and writes ``BENCH_service.json`` so every serving change
lands with throughput/latency evidence.  ``--compare`` diffs a fresh run
against the committed baseline and fails on throughput regressions with
the same generosity rules as the core gate (2x factor *and* an absolute
floor, because CI containers are noisy).

Three scenarios per server, all against one registered RCBT model:

* **sequential** — one keep-alive connection, requests back-to-back: the
  per-request latency floor (closed loop, concurrency 1);
* **concurrent** — N client threads, each with its own keep-alive
  connection, closed loop: the thread-pool-vs-event-loop comparison
  under parallel load;
* **pipelined** — N raw-socket connections, each writing bursts of D
  requests before reading any response (open loop within a burst): the
  coalescing showcase.  The async front end dispatches a whole burst
  into one micro-batch window and answers it with one ``predict_batch``;
  the legacy server processes the same burst strictly sequentially.

Every scenario records RPS, p50/p99 latency, error and shed (HTTP 503)
counts; the classify batch-size histogram is scraped from ``/metrics``
afterwards — the observable proof that the async front end actually
coalesced (legacy pipelined traffic stays in the 1-2 row buckets, async
lands the same traffic in the burst-sized buckets).
"""

from __future__ import annotations

import http.client
import json
import os
import platform
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "Scenario",
    "LoadReport",
    "run_loadtest",
    "write_report",
    "compare_reports",
]

SCHEMA_VERSION = 1

SERVERS = ("legacy", "async")

# A throughput drop must exceed BOTH bounds to fail the gate: more than
# 2x below baseline AND more than an absolute floor of requests/second.
# Mirrors repro.bench's regression philosophy — catch architectural
# regressions, shrug off scheduler jitter on busy CI runners.
REGRESSION_FACTOR = 2.0
REGRESSION_MIN_DELTA_RPS = 25.0

# Keys that must match for a baseline entry to be comparable.
_COMPARE_KEYS = ("server", "scenario", "connections", "depth",
                 "requests_target", "rows_per_request")


@dataclass(frozen=True)
class Scenario:
    """One traffic shape to drive against a server."""

    name: str            # sequential | concurrent | pipelined
    connections: int     # client connections (= threads)
    requests: int        # requests per connection
    depth: int = 1       # pipelined requests in flight per connection


# Request counts are sized so a full run stays in tens of seconds and a
# quick run in single-digit seconds per server, while still pushing
# thousands of requests through the hot scenarios.
DEFAULT_SCENARIOS = (
    Scenario("sequential", connections=1, requests=300),
    Scenario("concurrent", connections=8, requests=150),
    Scenario("pipelined", connections=6, requests=240, depth=16),
)

QUICK_SCENARIOS = (
    Scenario("sequential", connections=1, requests=80),
    Scenario("concurrent", connections=4, requests=50),
    Scenario("pipelined", connections=4, requests=96, depth=8),
)

ROWS_PER_REQUEST = 2


# -- workload construction ---------------------------------------------------


def _build_model_and_rows(seed: int = 7) -> tuple[dict, list[list[int]]]:
    """A small trained RCBT payload plus classify rows for the drivers."""
    from ..classifiers import RCBTClassifier
    from ..classifiers.persistence import classifier_to_payload
    from ..data import random_discretized_dataset

    dataset = random_discretized_dataset(n_rows=40, n_items=16, seed=seed)
    model = RCBTClassifier(k=2, nl=4).fit(dataset)
    rows = [sorted(row) for row in dataset.rows]
    return classifier_to_payload(model), rows


def _start_server(kind: str, model_payload: dict):
    """Start a fresh front end on an ephemeral port with one model."""
    from .aio import AsyncReproServer
    from .server import ReproServer

    if kind == "legacy":
        server = ReproServer(port=0, batch_delay=0.002).start()
    elif kind == "async":
        server = AsyncReproServer(port=0, batch_delay=0.002).start()
    else:
        raise ValueError(f"unknown server kind {kind!r}")
    server.service.register_model({"name": "bench", "model": model_payload})
    return server


# -- traffic drivers ---------------------------------------------------------


@dataclass
class _WorkerResult:
    latencies: list = field(default_factory=list)  # seconds, one per request
    errors: int = 0
    shed: int = 0


def _closed_loop_worker(
    host: str, port: int, body: bytes, n_requests: int, out: _WorkerResult
) -> None:
    """One keep-alive connection issuing requests back-to-back."""
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for _ in range(n_requests):
            start = time.perf_counter()
            try:
                connection.request(
                    "POST", "/classify", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                out.errors += 1
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=30
                )
                continue
            out.latencies.append(time.perf_counter() - start)
            if status == 503:
                out.shed += 1
            elif status != 200:
                out.errors += 1
    finally:
        connection.close()


def _read_response(stream) -> Optional[int]:
    """Parse one HTTP response off a socket file; return its status."""
    status_line = stream.readline()
    if not status_line:
        return None
    try:
        status = int(status_line.split(b" ", 2)[1])
    except (IndexError, ValueError):
        return None
    length = 0
    while True:
        line = stream.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    if length:
        remaining = length
        while remaining > 0:
            chunk = stream.read(remaining)
            if not chunk:
                return None
            remaining -= len(chunk)
    return status


def _pipelined_worker(
    host: str,
    port: int,
    request_bytes: bytes,
    n_requests: int,
    depth: int,
    out: _WorkerResult,
) -> None:
    """One raw socket writing bursts of ``depth`` requests before reading.

    All ``depth`` requests of a burst hit the server's read buffer at
    once; per-response latency is measured from the burst write, so a
    server that answers the burst with one coalesced batch beats one
    that grinds through it sequentially — on both RPS and p99.
    """
    sock = socket.create_connection((host, port), timeout=30)
    stream = sock.makefile("rb")
    try:
        sent = 0
        while sent < n_requests:
            burst = min(depth, n_requests - sent)
            start = time.perf_counter()
            sock.sendall(request_bytes * burst)
            for _ in range(burst):
                status = _read_response(stream)
                if status is None:
                    out.errors += burst
                    return
                out.latencies.append(time.perf_counter() - start)
                if status == 503:
                    out.shed += 1
                elif status != 200:
                    out.errors += 1
            sent += burst
    except OSError:
        out.errors += 1
    finally:
        stream.close()
        sock.close()


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _drive(server, scenario: Scenario, rows: list) -> dict:
    """Run one scenario against a started server; return its entry."""
    body = json.dumps(
        {"model": "bench", "rows": rows[:ROWS_PER_REQUEST]}
    ).encode("utf-8")
    host, port = server.host, server.port
    if scenario.depth > 1:
        request_bytes = (
            f"POST /classify HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1") + body
        make_worker = lambda result: threading.Thread(
            target=_pipelined_worker,
            args=(host, port, request_bytes, scenario.requests,
                  scenario.depth, result),
        )
    else:
        make_worker = lambda result: threading.Thread(
            target=_closed_loop_worker,
            args=(host, port, body, scenario.requests, result),
        )
    results = [_WorkerResult() for _ in range(scenario.connections)]
    threads = [make_worker(result) for result in results]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(
        value for result in results for value in result.latencies
    )
    completed = len(latencies)
    return {
        "scenario": scenario.name,
        "connections": scenario.connections,
        "depth": scenario.depth,
        "requests_target": scenario.connections * scenario.requests,
        "rows_per_request": ROWS_PER_REQUEST,
        "requests": completed,
        "errors": sum(result.errors for result in results),
        "shed": sum(result.shed for result in results),
        "seconds": elapsed,
        "rps": completed / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "mean_ms": (
            sum(latencies) / completed * 1000.0 if completed else 0.0
        ),
        "max_ms": latencies[-1] * 1000.0 if latencies else 0.0,
    }


def _batch_histogram(server) -> Optional[dict]:
    """The classify_batch_size histogram from the service's telemetry."""
    snapshot = server.service.telemetry.snapshot()
    histogram = snapshot.get("latency", {}).get("classify_batch_size")
    if histogram is None:
        return None
    return {
        "count": histogram["count"],
        "mean_rows": histogram["mean_seconds"],  # generic mean field
        "max_rows": histogram["max_seconds"],
        "buckets": histogram["buckets"],
    }


# -- report ------------------------------------------------------------------


@dataclass
class LoadReport:
    """Everything ``repro loadtest`` measured, JSON-ready."""

    host: dict
    config: dict
    benchmarks: list[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "created_at": self.created_at,
            "host": self.host,
            "config": self.config,
            "benchmarks": self.benchmarks,
            "summary": self.summary,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"repro loadtest — {len(self.benchmarks)} runs, "
            f"cpu_count={self.host['cpu_count']}"
        ]
        by_scenario: dict[str, dict[str, dict]] = {}
        for entry in self.benchmarks:
            by_scenario.setdefault(entry["scenario"], {})[
                entry["server"]] = entry
        for scenario, by_server in by_scenario.items():
            parts = []
            for server in SERVERS:
                entry = by_server.get(server)
                if entry is None:
                    continue
                problems = ""
                if entry["errors"]:
                    problems += f" errors={entry['errors']}"
                if entry["shed"]:
                    problems += f" shed={entry['shed']}"
                parts.append(
                    f"{server} {entry['rps']:.0f} rps "
                    f"(p50 {entry['p50_ms']:.1f}ms, "
                    f"p99 {entry['p99_ms']:.1f}ms{problems})"
                )
            legacy = by_server.get("legacy")
            asynch = by_server.get("async")
            if legacy and asynch and legacy["rps"] > 0:
                parts.append(f"async x{asynch['rps'] / legacy['rps']:.2f}")
            lines.append(f"  {scenario}: " + " | ".join(parts))
        speedups = self.summary.get("async_vs_legacy_rps", {})
        if speedups:
            pipelined = speedups.get("pipelined")
            if pipelined is not None:
                verdict = "faster" if pipelined > 1.0 else "NOT FASTER"
                lines.append(
                    f"  coalescing verdict: async is x{pipelined:.2f} "
                    f"{verdict} than legacy on pipelined traffic"
                )
        return lines


def run_loadtest(
    quick: bool = False,
    scenarios: Optional[Sequence[Scenario]] = None,
    servers: Sequence[str] = SERVERS,
    progress=None,
) -> LoadReport:
    """Drive every scenario against every requested server kind.

    Each server kind gets a fresh instance per scenario (clean telemetry,
    so per-scenario batch histograms aren't cross-contaminated).  The
    same model payload and rows feed every run.
    """
    if scenarios is None:
        scenarios = QUICK_SCENARIOS if quick else DEFAULT_SCENARIOS
    model_payload, rows = _build_model_and_rows()
    report = LoadReport(
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
        },
        config={
            "quick": quick,
            "servers": list(servers),
            "scenarios": [scenario.name for scenario in scenarios],
            "rows_per_request": ROWS_PER_REQUEST,
        },
    )
    for scenario in scenarios:
        for kind in servers:
            if progress is not None:
                progress(f"{scenario.name} @ {kind}...")
            server = _start_server(kind, model_payload)
            try:
                entry = _drive(server, scenario, rows)
                entry["server"] = kind
                histogram = _batch_histogram(server)
                if histogram is not None:
                    entry["batch_histogram"] = histogram
            finally:
                server.stop()
            report.benchmarks.append(entry)
    speedups: dict[str, float] = {}
    for scenario in scenarios:
        rps = {
            entry["server"]: entry["rps"]
            for entry in report.benchmarks
            if entry["scenario"] == scenario.name
        }
        if rps.get("legacy") and rps.get("async"):
            speedups[scenario.name] = rps["async"] / rps["legacy"]
    report.summary = {
        "async_vs_legacy_rps": speedups,
        "async_faster_pipelined": speedups.get("pipelined", 0.0) > 1.0,
    }
    return report


def write_report(report: LoadReport, path) -> None:
    Path(path).write_text(
        json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
    )


def compare_reports(
    current: dict,
    baseline: dict,
    regression_factor: float = REGRESSION_FACTOR,
) -> tuple[list[str], bool]:
    """Diff ``current`` against ``baseline`` (both ``as_dict`` payloads).

    Runs are matched by (server, scenario) and compared only when their
    traffic shape is identical (:data:`_COMPARE_KEYS`).  ``ok`` is False
    iff any compared run's RPS fell more than ``regression_factor``
    below baseline *and* by more than
    :data:`REGRESSION_MIN_DELTA_RPS` absolute — or had request errors.
    """
    lines: list[str] = []
    ok = True
    current_host = current.get("host", {})
    baseline_host = baseline.get("host", {})
    if (
        current_host.get("platform") != baseline_host.get("platform")
        or current_host.get("cpu_count") != baseline_host.get("cpu_count")
    ):
        lines.append(
            "  note: baseline host differs "
            f"({baseline_host.get('platform')}, "
            f"{baseline_host.get('cpu_count')} cores vs "
            f"{current_host.get('platform')}, "
            f"{current_host.get('cpu_count')} cores); RPS deltas partly "
            "reflect hardware"
        )
    baseline_by_key = {
        (entry.get("server"), entry.get("scenario")): entry
        for entry in baseline.get("benchmarks", [])
    }
    compared = 0
    for entry in current.get("benchmarks", []):
        key = (entry.get("server"), entry.get("scenario"))
        name = f"{key[1]}@{key[0]}"
        base = baseline_by_key.get(key)
        if base is None:
            lines.append(f"  {name}: no baseline entry — skipped")
            continue
        mismatched = [
            field_name for field_name in _COMPARE_KEYS
            if entry.get(field_name) != base.get(field_name)
        ]
        if mismatched:
            lines.append(
                f"  {name}: traffic shape changed "
                f"({', '.join(mismatched)}) — skipped"
            )
            continue
        compared += 1
        base_rps = base["rps"]
        rps = entry["rps"]
        ratio = rps / base_rps if base_rps > 0 else float("inf")
        regressed = (
            base_rps > 0
            and rps * regression_factor < base_rps
            and base_rps - rps > REGRESSION_MIN_DELTA_RPS
        )
        errored = entry.get("errors", 0) > 0
        if regressed or errored:
            ok = False
        status = (
            "ERRORS" if errored
            else "REGRESSION" if regressed
            else "faster" if ratio >= 1.0 else "slower"
        )
        lines.append(
            f"  {name}: {base_rps:.0f} -> {rps:.0f} rps "
            f"(x{ratio:.2f}, {status})"
        )
    header = (
        f"baseline comparison — {compared} compared, "
        f"{'ok' if ok else 'REGRESSED'} "
        f"(fail threshold: rps < baseline/{regression_factor:g} and "
        f"delta > {REGRESSION_MIN_DELTA_RPS:g} rps, or any errors)"
    )
    return [header, *lines], ok
