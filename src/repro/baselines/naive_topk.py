"""Brute-force reference implementations used as test oracles.

These deliberately trade efficiency for obviousness: all closed rule
groups of a (small) dataset are found by enumerating every subset of rows
and closing it through the Galois connection ``T -> I(T) -> R(I(T))``.
The per-row top-k lists are then computed by sorting — the "naive method"
the paper dismisses in Section 3, which is exactly what makes it a good
independent oracle for MineTopkRGS and FARMER.

Only use on datasets with at most ~15 rows.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from ..core.bitset import popcount
from ..core.rules import RuleGroup
from ..core.view import MiningView

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["enumerate_closed_groups", "naive_topk", "naive_farmer"]

_MAX_ORACLE_ROWS = 18


def enumerate_closed_groups(
    dataset: "DiscretizedDataset", consequent: int, minsup: int
) -> list[RuleGroup]:
    """Every closed rule group with the given consequent and support.

    Works over the same frequent-item-reduced row space as the real
    miners (Figure 3 step 1), so outputs are directly comparable.  Row
    bitsets are in original row ids.
    """
    if dataset.n_rows > _MAX_ORACLE_ROWS:
        raise ValueError(
            f"oracle limited to {_MAX_ORACLE_ROWS} rows, got {dataset.n_rows}"
        )
    view = MiningView(dataset, consequent, minsup)
    n = view.n_rows
    groups: dict[int, RuleGroup] = {}
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            items = view.row_items[subset[0]]
            for position in subset[1:]:
                items = items & view.row_items[position]
                if not items:
                    break
            if not items:
                continue
            closure = view.closure_rows(sorted(items))
            if closure is None or closure in groups:
                continue
            support = view.positive_count(closure)
            if support < minsup:
                continue
            total = popcount(closure)
            groups[closure] = RuleGroup(
                antecedent=frozenset(items),
                consequent=consequent,
                row_set=view.positions_to_rows(closure),
                support=support,
                confidence=support / total,
            )
    return list(groups.values())


def naive_topk(
    dataset: "DiscretizedDataset", consequent: int, minsup: int, k: int
) -> dict[int, list[RuleGroup]]:
    """Per-row top-k covering rule groups via mine-everything-then-sort.

    Tie order among equally significant groups is unspecified (as in the
    paper, where it depends on discovery order), so comparisons against
    the real miner should use the multiset of (confidence, support) pairs
    rather than antecedent identity.
    """
    groups = enumerate_closed_groups(dataset, consequent, minsup)
    result: dict[int, list[RuleGroup]] = {}
    for row in range(dataset.n_rows):
        if dataset.labels[row] != consequent:
            continue
        row_bit = 1 << row
        covering = [group for group in groups if group.row_set & row_bit]
        covering.sort(key=lambda g: (g.confidence, g.support), reverse=True)
        result[row] = covering[:k]
    return result


def naive_farmer(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    minconf: float = 0.0,
) -> list[RuleGroup]:
    """All rule groups above static thresholds (FARMER's contract)."""
    return [
        group
        for group in enumerate_closed_groups(dataset, consequent, minsup)
        if group.confidence >= minconf
    ]
