"""Shared fixtures for the benchmark suite.

Benchmarks run on reduced-scale workloads (the ``scale`` factor shrinks
the gene dimension, never the row dimension that drives row enumeration)
so the whole suite completes in minutes in pure Python.  The *relative*
shapes — who is faster, how runtimes move with minsup and k — are the
reproduction targets; scales are recorded in each benchmark's
``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.data.loaders import load_benchmark

BENCH_SCALE = 0.1
SMALL_SCALE = 0.05


@pytest.fixture(scope="session")
def all_benchmark():
    """ALL-shaped workload at benchmark scale."""
    return load_benchmark("ALL", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def lc_benchmark():
    return load_benchmark("LC", scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def oc_benchmark():
    return load_benchmark("OC", scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def pc_benchmark():
    # 0.1 is the smallest scale at which the PC batch effect reproduces
    # the paper's regime (see tests/conftest.py).
    return load_benchmark("PC", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def paper_benchmarks(all_benchmark, lc_benchmark, oc_benchmark, pc_benchmark):
    return {
        "ALL": all_benchmark,
        "LC": lc_benchmark,
        "OC": oc_benchmark,
        "PC": pc_benchmark,
    }
