"""LatencyHistogram bucketing (bisect fast path) and Telemetry registry."""

from __future__ import annotations

import pytest

from repro.service.telemetry import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_BUCKETS,
    LatencyHistogram,
    Telemetry,
)


class TestBatchSizeBuckets:
    """The coalescing histogram's power-of-two ladder must have no holes
    (the 512 edge was once silently skipped, folding 257-512-row batches
    into the 1024 bucket and distorting the batching evidence)."""

    def test_every_finite_edge_doubles_the_previous(self):
        finite = [edge for edge in BATCH_SIZE_BUCKETS if edge != float("inf")]
        assert finite[0] == 1
        for previous, edge in zip(finite, finite[1:]):
            assert edge == 2 * previous, (
                f"bucket ladder skips an edge between {previous} and {edge}"
            )

    def test_ends_with_infinity(self):
        assert BATCH_SIZE_BUCKETS[-1] == float("inf")

    def test_512_batch_lands_in_its_own_bucket(self):
        histogram = LatencyHistogram(buckets=BATCH_SIZE_BUCKETS)
        histogram.observe(512)
        histogram.observe(513)
        assert histogram.as_dict()["buckets"]["512"] == 1
        assert histogram.as_dict()["buckets"]["1024"] == 1


class TestLatencyHistogram:
    def test_boundary_semantics(self):
        """An observation equal to an edge lands in that edge's bucket."""
        histogram = LatencyHistogram(buckets=(0.1, 1.0, float("inf")))
        histogram.observe(0.1)   # == first edge
        histogram.observe(0.05)  # below first edge
        histogram.observe(0.5)
        histogram.observe(1.0)   # == second edge
        histogram.observe(100.0)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5

    def test_matches_linear_scan_reference(self):
        """The bisect implementation reproduces the original linear scan."""
        histogram = LatencyHistogram()
        samples = [
            0.0, 0.0005, 0.001, 0.0011, 0.004, 0.005, 0.03, 0.05, 0.07,
            0.1, 0.3, 0.5, 0.9, 1.0, 2.5, 5.0, 10.0, 30.0, 31.0, 1e6,
        ]
        reference = [0] * len(DEFAULT_BUCKETS)
        for seconds in samples:
            histogram.observe(seconds)
            for index, edge in enumerate(DEFAULT_BUCKETS):
                if seconds <= edge:
                    reference[index] += 1
                    break
        assert histogram.counts == reference

    def test_max_seconds(self):
        histogram = LatencyHistogram()
        assert histogram.max_seconds == 0.0
        histogram.observe(0.2)
        histogram.observe(1.5)
        histogram.observe(0.4)
        assert histogram.max_seconds == 1.5
        assert histogram.as_dict()["max_seconds"] == 1.5

    def test_as_dict_shape(self):
        histogram = LatencyHistogram(buckets=(0.5, float("inf")))
        histogram.observe(0.25)
        payload = histogram.as_dict()
        assert payload["count"] == 1
        assert payload["sum_seconds"] == 0.25
        assert payload["mean_seconds"] == 0.25
        assert payload["max_seconds"] == 0.25
        assert payload["buckets"] == {"0.5": 1, "+inf": 0}

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(1.0, 0.5))


class TestTelemetry:
    def test_observe_and_snapshot(self):
        telemetry = Telemetry()
        telemetry.increment("requests")
        telemetry.observe("latency", 0.002)
        telemetry.observe("latency", 0.8)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["requests"] == 1
        latency = snapshot["latency"]["latency"]
        assert latency["count"] == 2
        assert latency["max_seconds"] == 0.8
