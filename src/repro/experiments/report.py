"""One-command reproduction: run every experiment and write a report.

``python -m repro.experiments report --scale 0.1 --output REPORT.md``
runs Table 1, Table 2, the Figure 6 sweep (with a wall-clock budget),
Figure 7, Figure 8 and the ablations at a single scale and writes one
consolidated markdown report.  This is the "reviewer mode" entry point:
the full-scale equivalents are the per-experiment drivers documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Optional, Sequence

from . import ablations, fig6, fig7, fig8, table1, table2
from .harness import DATASET_NAMES

__all__ = ["run", "main"]


def run(
    scale: float = 0.1,
    datasets: Sequence[str] = DATASET_NAMES,
    time_budget: float = 10.0,
    k: int = 10,
    nl: int = 20,
) -> str:
    """Run every experiment at ``scale`` and return the report text."""
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Scale factor {scale:g} (gene dimension; sample counts are the "
        f"paper's), mining budget {time_budget:g}s per exhaustive run.",
        "",
    ]

    def add(title: str, body: str, seconds: float) -> None:
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append(f"_(generated in {seconds:.1f}s)_")
        sections.append("")

    start = time.perf_counter()
    body = table1.render(table1.run(scale=scale, datasets=datasets),
                         show_paper=True)
    add("Table 1 — dataset characteristics", body,
        time.perf_counter() - start)

    start = time.perf_counter()
    result = table2.run(scale=scale, datasets=datasets, k=k, nl=nl)
    add("Table 2 — classification accuracy",
        table2.render(result, details=True), time.perf_counter() - start)

    start = time.perf_counter()
    swept = fig6.run(
        scale=scale, datasets=datasets, fractions=(0.95, 0.9, 0.85),
        time_budget=time_budget, column_baselines=True,
    )
    swept.k_panel = fig6.run_panel_e(
        scale=scale, datasets=datasets[:1], time_budget=time_budget
    ).k_panel
    add("Figure 6 — mining runtime", fig6.render(swept),
        time.perf_counter() - start)

    start = time.perf_counter()
    body = fig7.render(fig7.run(scale=scale, datasets=datasets[:2], k=k))
    add("Figure 7 — RCBT accuracy vs nl", body, time.perf_counter() - start)

    start = time.perf_counter()
    body = fig8.render(fig8.run(scale=scale, dataset="PC", nl=100))
    add("Figure 8 — gene ranks vs rule usage", body,
        time.perf_counter() - start)

    start = time.perf_counter()
    ablation = ablations.run_classifier_ablation(
        scale=scale, datasets=datasets[:2], k=k, nl=nl
    )
    ablation.miner_nodes = ablations.run_miner_ablation(
        scale=scale, datasets=datasets[:1]
    ).miner_nodes
    add("Ablations", ablations.render(ablation), time.perf_counter() - start)

    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--datasets", nargs="+", default=list(DATASET_NAMES),
                        choices=DATASET_NAMES)
    parser.add_argument("--time-budget", type=float, default=10.0)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--nl", type=int, default=20)
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args(argv)
    report = run(
        scale=args.scale,
        datasets=args.datasets,
        time_budget=args.time_budget,
        k=args.k,
        nl=args.nl,
    )
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
