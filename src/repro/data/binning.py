"""Unsupervised binning discretizers (equal-width / equal-frequency).

The paper's pipeline depends on *entropy-minimized* discretization — it
both selects features and aligns interval edges with class structure.
These class-blind binners exist to quantify that dependence: swap one in
for :class:`~repro.data.discretize.EntropyDiscretizer` and both the
mining output (far fewer high-confidence groups) and the classifiers
degrade, which is the ablation `examples/` and the tests exercise.

Both share the fitted-cuts / transform interface of the entropy
discretizer, so they are drop-in substitutes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .dataset import DiscretizedDataset, GeneExpressionDataset, Item

__all__ = ["BinningDiscretizer"]


class BinningDiscretizer:
    """Class-blind discretization into a fixed number of bins per gene.

    Args:
        n_bins: intervals per gene (>= 2; every gene is kept — binning
            performs no feature selection, unlike the entropy method).
        strategy: ``"frequency"`` places cuts at value quantiles,
            ``"width"`` spaces them evenly over the value range.
    """

    def __init__(self, n_bins: int = 2, strategy: str = "frequency") -> None:
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if strategy not in ("frequency", "width"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.n_bins = n_bins
        self.strategy = strategy
        self.cuts_: dict[int, list[float]] = {}
        self.items_: list[Item] = []
        self.selected_genes_: list[int] = []
        self._gene_items: dict[int, list[Item]] = {}
        self._fitted = False

    def fit(self, dataset: GeneExpressionDataset) -> "BinningDiscretizer":
        """Compute cut points for every gene of ``dataset``."""
        self.cuts_ = {}
        for gene in range(dataset.n_genes):
            column = dataset.values[:, gene]
            if self.strategy == "frequency":
                quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(column, quantiles))
            else:
                low, high = column.min(), column.max()
                if high <= low:
                    cuts = np.array([])
                else:
                    cuts = np.linspace(low, high, self.n_bins + 1)[1:-1]
            cut_list = [float(c) for c in cuts]
            if cut_list:
                self.cuts_[gene] = cut_list
        self.selected_genes_ = sorted(self.cuts_)
        self._build_items(dataset)
        self._fitted = True
        return self

    def _build_items(self, dataset: GeneExpressionDataset) -> None:
        self._gene_items = {}
        next_id = 0
        for gene in self.selected_genes_:
            edges = [float("-inf"), *self.cuts_[gene], float("inf")]
            gene_items = []
            for low, high in zip(edges[:-1], edges[1:]):
                gene_items.append(
                    Item(next_id, gene, dataset.gene_names[gene], low, high)
                )
                next_id += 1
            self._gene_items[gene] = gene_items
        self.items_ = [
            item for gene in self.selected_genes_ for item in self._gene_items[gene]
        ]

    def transform(self, dataset: GeneExpressionDataset) -> DiscretizedDataset:
        """Itemize ``dataset`` using the fitted cut points."""
        if not self._fitted:
            raise RuntimeError("BinningDiscretizer must be fitted before transform")
        rows: list[list[int]] = [[] for _ in range(dataset.n_samples)]
        for gene in self.selected_genes_:
            column = dataset.values[:, gene]
            gene_items = self._gene_items[gene]
            edges = np.array(self.cuts_[gene])
            positions = np.searchsorted(edges, column, side="right")
            for sample, position in enumerate(positions):
                rows[sample].append(gene_items[int(position)].item_id)
        return DiscretizedDataset(
            rows,
            dataset.labels,
            self.items_,
            class_names=list(dataset.class_names),
            name=dataset.name,
        )

    def fit_transform(self, dataset: GeneExpressionDataset) -> DiscretizedDataset:
        """Fit on ``dataset`` and itemize it."""
        return self.fit(dataset).transform(dataset)

    @property
    def n_selected_genes(self) -> int:
        """Number of genes with at least one cut (all, for binning)."""
        return len(self.selected_genes_)
