"""Failure injection: error paths, partial results, crash consistency."""

import pytest

from repro.baselines import mine_charm, mine_closetplus, mine_farmer
from repro.core.enumeration import run_enumeration
from repro.core.hybrid import mine_topk_hybrid
from repro.core.topk_miner import mine_topk
from repro.core.view import MiningView
from repro.data.synthetic import random_discretized_dataset
from repro.errors import MiningBudgetExceeded


class _ExplodingPolicy:
    """A policy whose emit hook fails after a few groups."""

    def __init__(self, view, fail_after=3):
        self.view = view
        self.fail_after = fail_after
        self.emitted = 0

    @property
    def minsup(self):
        return self.view.minsup

    def loose_prunable(self, x_p, x_n, r_p, r_n, threshold_bits):
        return False

    def tight_prunable(self, x_p, x_n, m_p, r_n, threshold_bits):
        return False

    def emit(self, items, position_bits, x_p, x_n):
        self.emitted += 1
        if self.emitted > self.fail_after:
            raise RuntimeError("injected failure")


class TestPolicyFailures:
    @pytest.mark.parametrize("engine", ("bitset", "table", "tree"))
    def test_policy_exception_propagates(self, engine, small_random):
        view = MiningView(small_random, 1, minsup=1)
        policy = _ExplodingPolicy(view)
        with pytest.raises(RuntimeError, match="injected"):
            run_enumeration(view, policy, engine=engine)

    def test_emitted_count_before_failure(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        policy = _ExplodingPolicy(view, fail_after=2)
        with pytest.raises(RuntimeError):
            run_enumeration(view, policy, engine="bitset")
        assert policy.emitted == 3  # two successes plus the failing call


class TestPartialResultsAreConsistent:
    """Budget-truncated output must be a valid *subset* of the full run."""

    def test_topk_partial_entries_are_real_groups(self, small_random):
        partial = mine_topk(small_random, 1, minsup=1, k=3, node_budget=6)
        assert not partial.stats.completed
        for row, groups in partial.per_row.items():
            for group in groups:
                assert small_random.support_set(group.antecedent) == group.row_set
                assert group.row_set >> row & 1

    def test_farmer_partial_subset_of_full(self, small_random):
        full = {g.row_set for g in mine_farmer(small_random, 1, 1).groups}
        for budget in (1, 5, 20):
            partial = mine_farmer(small_random, 1, 1, node_budget=budget)
            assert {g.row_set for g in partial.groups} <= full

    def test_charm_partial_subset_of_full(self, small_random):
        full = {g.row_set for g in mine_charm(small_random, 1, 1).groups}
        partial = mine_charm(small_random, 1, 1, node_budget=3)
        assert {g.row_set for g in partial.groups} <= full

    def test_closet_partial_subset_of_full(self, small_random):
        full = {g.row_set for g in mine_closetplus(small_random, 1, 1).groups}
        partial = mine_closetplus(small_random, 1, 1, node_budget=2)
        assert {g.row_set for g in partial.groups} <= full

    def test_time_budget_zero_truncates_quickly(self, small_random):
        result = mine_charm(small_random, 1, 1, time_budget=0.0)
        # time_budget=0.0 is falsy -> disabled; an epsilon budget truncates.
        assert result.completed
        tiny = mine_charm(small_random, 1, 1, time_budget=1e-9)
        assert isinstance(tiny.completed, bool)


class TestHybridFailures:
    def test_unwritable_spill_dir_raises(self, small_random, tmp_path):
        missing = tmp_path / "does" / "not" / "exist"
        with pytest.raises(FileNotFoundError):
            mine_topk_hybrid(
                small_random, 1, minsup=1, k=1, spill_dir=str(missing)
            )

    def test_partition_budget_result_still_valid(self, small_random):
        result = mine_topk_hybrid(
            small_random, 1, minsup=1, k=2, node_budget_per_partition=2
        )
        for row, groups in result.per_row.items():
            for group in groups:
                assert small_random.support_set(group.antecedent) == group.row_set


class TestBudgetErrorMetadata:
    def test_stats_attached_on_node_budget(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        from repro.baselines.farmer import FarmerPolicy

        with pytest.raises(MiningBudgetExceeded) as exc:
            run_enumeration(view, FarmerPolicy(view), node_budget=1)
        assert exc.value.stats.nodes_visited == 2
        assert exc.value.stats.elapsed_seconds >= 0.0
