"""Packed-word backend: ``array("Q")`` supports, table-driven popcount.

Supports are packed little-endian into 64-bit words so the batch folds
walk fixed-width machine words instead of arbitrary-precision limbs,
and population counts go through a lazily built 16-bit lookup table (the
classic table-driven popcount) over the packed words.  Pure stdlib.

Encoding is done once per support table (per ``SupportIndex``); fold
results are converted back to plain ``int`` bitsets at the call
boundary, which keeps the backend bit-identical to the default by
construction.  The fused counting folds accumulate the positive-mask
popcounts in the same word walk as the intersect/union reduce, and the
:meth:`PackedBackend.node_kernel` closures reuse one pair of accumulator
arrays across every node of a walk instead of re-materializing them per
call.
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

from .base import BitsetBackend, NodeKernel

__all__ = ["PackedBackend", "popcount_table"]

# Population counts of every 16-bit word.  Built lazily on first use and
# shared by every PackedBackend instance in the process: the table costs
# 64 Ki small-int references and a few milliseconds to fill, so neither
# importing this module nor constructing a backend should pay for it
# twice (tests/test_backends.py pins the sharing).
_POPCOUNT16: Optional[tuple[int, ...]] = None


def popcount_table() -> tuple[int, ...]:
    """The process-wide 16-bit popcount table (built on first call)."""
    global _POPCOUNT16
    table = _POPCOUNT16
    if table is None:
        table = _POPCOUNT16 = tuple(
            value.bit_count() for value in range(1 << 16)
        )
    return table


def _pack(bits: int, n_words: int) -> array:
    """Little-endian 64-bit words of ``bits``, padded to ``n_words``."""
    return array("Q", bits.to_bytes(n_words * 8, "little"))


def _count_words(words: array, table: tuple[int, ...]) -> int:
    total = 0
    for word in words:
        if word:
            total += (
                table[word & 0xFFFF]
                + table[(word >> 16) & 0xFFFF]
                + table[(word >> 32) & 0xFFFF]
                + table[word >> 48]
            )
    return total


class PackedBackend(BitsetBackend):
    name = "packed"

    @property
    def table(self) -> tuple[int, ...]:
        """The shared popcount table (identical for every instance)."""
        return popcount_table()

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        n_words = max(1, (n_bits + 63) // 64)
        return [_pack(bits, n_words) for bits in bitsets], n_words

    def encode_mask(self, bits: int, n_bits: int) -> array:
        n_words = max(1, (n_bits + 63) // 64)
        return _pack(bits, n_words)

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        if not ids:
            raise ValueError("intersect_many needs at least one id")
        words, _n_words = handle
        accumulator = array("Q", words[ids[0]])
        for index in ids[1:]:
            row = words[index]
            for position in range(len(accumulator)):
                accumulator[position] &= row[position]
        return int.from_bytes(accumulator.tobytes(), "little")

    def union_many(self, handle, ids: Sequence[int]) -> int:
        words, n_words = handle
        accumulator = array("Q", bytes(n_words * 8))
        for index in ids:
            row = words[index]
            for position in range(n_words):
                accumulator[position] |= row[position]
        return int.from_bytes(accumulator.tobytes(), "little")

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        if not ids:
            raise ValueError("intersect_union_many needs at least one id")
        words, _n_words = handle
        first = words[ids[0]]
        intersection = array("Q", first)
        union = array("Q", first)
        for index in ids[1:]:
            row = words[index]
            for position in range(len(row)):
                word = row[position]
                intersection[position] &= word
                union[position] |= word
        return (
            int.from_bytes(intersection.tobytes(), "little"),
            int.from_bytes(union.tobytes(), "little"),
        )

    def popcount(self, bits: int) -> int:
        if bits < 0:
            raise ValueError(f"bitsets are non-negative, got {bits}")
        table = popcount_table()
        if bits < 0x10000:
            return table[bits]
        # One to_bytes + a flat 16-bit chunk walk: linear in the word
        # count, unlike repeated ``bits >>= 16`` which copies the whole
        # remaining integer per step (quadratic on tall bitsets).
        n_chunks = (bits.bit_length() + 15) // 16
        chunks = memoryview(bits.to_bytes(n_chunks * 2, "little")).cast("H")
        total = 0
        for chunk in chunks:
            total += table[chunk]
        return total

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        popcount = self.popcount
        return [popcount(bits) for bits in bitsets]

    def intersect_union_counts(
        self, handle, ids: Sequence[int], mask: array
    ) -> tuple[int, int, int, int]:
        if not ids:
            raise ValueError("intersect_union_counts needs at least one id")
        words, n_words = handle
        first = words[ids[0]]
        intersection = array("Q", first)
        union = array("Q", first)
        for index in ids[1:]:
            row = words[index]
            for position in range(n_words):
                word = row[position]
                intersection[position] &= word
                union[position] |= word
        table = popcount_table()
        x_p = 0
        x_all = 0
        for position in range(n_words):
            word = intersection[position]
            if word:
                x_all += (
                    table[word & 0xFFFF]
                    + table[(word >> 16) & 0xFFFF]
                    + table[(word >> 32) & 0xFFFF]
                    + table[word >> 48]
                )
                word &= mask[position]
                if word:
                    x_p += (
                        table[word & 0xFFFF]
                        + table[(word >> 16) & 0xFFFF]
                        + table[(word >> 32) & 0xFFFF]
                        + table[word >> 48]
                    )
        return (
            int.from_bytes(intersection.tobytes(), "little"),
            int.from_bytes(union.tobytes(), "little"),
            x_p, x_all,
        )

    def intersect_counts(
        self, handle, ids: Sequence[int], mask: array
    ) -> tuple[int, int, int]:
        if not ids:
            raise ValueError("intersect_counts needs at least one id")
        words, n_words = handle
        intersection = array("Q", words[ids[0]])
        for index in ids[1:]:
            row = words[index]
            for position in range(n_words):
                intersection[position] &= row[position]
        table = popcount_table()
        x_all = _count_words(intersection, table)
        masked = array("Q", intersection)
        for position in range(n_words):
            masked[position] &= mask[position]
        x_p = _count_words(masked, table)
        return int.from_bytes(intersection.tobytes(), "little"), x_p, x_all

    def masked_counts(self, bits: int, mask: array) -> tuple[int, int]:
        mask_bits = int.from_bytes(mask.tobytes(), "little")
        return self.popcount(bits & mask_bits), self.popcount(bits)

    def node_kernel(self, handle, mask: array) -> NodeKernel:
        words, n_words = handle
        table = popcount_table()
        positions = range(n_words)
        # Walk-private accumulators, reused across every node of the
        # walk; safe because kernels are never shared between threads.
        intersection = array("Q", bytes(n_words * 8))
        union = array("Q", bytes(n_words * 8))
        mask_bits = int.from_bytes(mask.tobytes(), "little")
        from_bytes = int.from_bytes
        self_popcount = self.popcount

        def intersect_union_counts(ids):
            intersection[:] = words[ids[0]]
            union[:] = intersection
            for index in ids[1:]:
                row = words[index]
                for position in positions:
                    word = row[position]
                    intersection[position] &= word
                    union[position] |= word
            x_p = 0
            x_all = 0
            for position in positions:
                word = intersection[position]
                if word:
                    x_all += (
                        table[word & 0xFFFF]
                        + table[(word >> 16) & 0xFFFF]
                        + table[(word >> 32) & 0xFFFF]
                        + table[word >> 48]
                    )
                    word &= mask[position]
                    if word:
                        x_p += (
                            table[word & 0xFFFF]
                            + table[(word >> 16) & 0xFFFF]
                            + table[(word >> 32) & 0xFFFF]
                            + table[word >> 48]
                        )
            return (
                from_bytes(intersection.tobytes(), "little"),
                from_bytes(union.tobytes(), "little"),
                x_p, x_all,
            )

        def intersect_counts(ids):
            intersection[:] = words[ids[0]]
            for index in ids[1:]:
                row = words[index]
                for position in positions:
                    intersection[position] &= row[position]
            x_p = 0
            x_all = 0
            for position in positions:
                word = intersection[position]
                if word:
                    x_all += (
                        table[word & 0xFFFF]
                        + table[(word >> 16) & 0xFFFF]
                        + table[(word >> 32) & 0xFFFF]
                        + table[word >> 48]
                    )
                    word &= mask[position]
                    if word:
                        x_p += (
                            table[word & 0xFFFF]
                            + table[(word >> 16) & 0xFFFF]
                            + table[(word >> 32) & 0xFFFF]
                            + table[word >> 48]
                        )
            return from_bytes(intersection.tobytes(), "little"), x_p, x_all

        def masked_counts(bits):
            return self_popcount(bits & mask_bits), self_popcount(bits)

        return NodeKernel(intersect_union_counts, intersect_counts, masked_counts)
