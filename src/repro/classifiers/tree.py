"""A C4.5-style decision tree over continuous features.

The comparator family of Table 2.  Splits are binary thresholds on
continuous attributes chosen by *gain ratio* (information gain divided by
the split information), as in C4.5; sample weights are supported so the
same tree serves AdaBoost.  Growth stops on purity, depth, minimum leaf
weight or vanishing gain.

Like C4.5 on the prostate-cancer data in the paper, a single tree keys on
the few top-ranked genes; when those genes shift between train and test
(the PC batch effect) it collapses — the behaviour the Table 2 benchmark
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .base import NumericClassifier

__all__ = ["DecisionTreeC45"]

_EPS = 1e-12


@dataclass
class _Node:
    """Internal or leaf node of the fitted tree."""

    prediction: int
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _entropy(class_weights: np.ndarray) -> float:
    total = class_weights.sum()
    if total <= 0:
        return 0.0
    probabilities = class_weights[class_weights > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


class DecisionTreeC45(NumericClassifier):
    """Gain-ratio decision tree with binary numeric splits.

    Args:
        max_depth: depth limit (None = unbounded).
        min_leaf_weight: minimum total sample weight in each child.
        min_gain: minimum information gain for a split to be kept.
        max_features: if set, evaluate only the ``max_features`` features
            with the highest single-split gain estimate (used by bagging
            to decorrelate trees); None evaluates all.
        seed: RNG seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_leaf_weight: float = 1.0,
        min_gain: float = 1e-6,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_leaf_weight = min_leaf_weight
        self.min_gain = min_gain
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None
        self.n_classes_: int = 0
        self.n_nodes_: int = 0

    def fit(
        self,
        X: np.ndarray,
        y: Sequence[int],
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeC45":
        """Grow the tree by recursive gain-ratio splitting."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n_samples, n_features) matching y")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        self.n_classes_ = int(y.max()) + 1 if len(y) else 1
        self.n_nodes_ = 0
        rng = np.random.default_rng(self.seed)
        self.root_ = self._grow(X, y, sample_weight, depth=0, rng=rng)
        self._fitted = True
        return self

    def _class_weights(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        return np.bincount(y, weights=w, minlength=self.n_classes_)

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        self.n_nodes_ += 1
        weights = self._class_weights(y, w)
        prediction = int(weights.argmax())
        node = _Node(prediction=prediction)
        if (
            len(np.unique(y)) <= 1
            or (self.max_depth is not None and depth >= self.max_depth)
            or w.sum() < 2 * self.min_leaf_weight
        ):
            return node
        split = self._best_split(X, y, w, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], w[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y[~mask], w[~mask], depth + 1, rng)
        return node

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[tuple[int, float]]:
        n_features = X.shape[1]
        features = np.arange(n_features)
        if self.max_features is not None and self.max_features < n_features:
            features = rng.choice(n_features, size=self.max_features, replace=False)
        parent_entropy = _entropy(self._class_weights(y, w))
        total_weight = w.sum()
        best: Optional[tuple[float, int, float]] = None
        for feature in features:
            candidate = self._best_threshold(
                X[:, feature], y, w, parent_entropy, total_weight
            )
            if candidate is None:
                continue
            ratio, threshold = candidate
            if best is None or ratio > best[0]:
                best = (ratio, int(feature), threshold)
        if best is None:
            return None
        return best[1], best[2]

    def _best_threshold(
        self,
        column: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        parent_entropy: float,
        total_weight: float,
    ) -> Optional[tuple[float, float]]:
        order = np.argsort(column, kind="mergesort")
        values = column[order]
        labels = y[order]
        weights = w[order]
        one_hot = np.zeros((len(labels), self.n_classes_))
        one_hot[np.arange(len(labels)), labels] = weights
        cum = one_hot.cumsum(axis=0)
        total = cum[-1]
        boundaries = np.flatnonzero(values[1:] > values[:-1] + _EPS) + 1
        if boundaries.size == 0:
            return None
        left = cum[boundaries - 1]
        right = total - left
        left_weight = left.sum(axis=1)
        right_weight = right.sum(axis=1)
        valid = (left_weight >= self.min_leaf_weight) & (
            right_weight >= self.min_leaf_weight
        )
        if not valid.any():
            return None

        def _rows_entropy(block: np.ndarray) -> np.ndarray:
            sums = block.sum(axis=1, keepdims=True)
            with np.errstate(divide="ignore", invalid="ignore"):
                probs = np.where(sums > 0, block / np.maximum(sums, _EPS), 0.0)
                logs = np.where(probs > 0, np.log2(np.maximum(probs, _EPS)), 0.0)
            return -(probs * logs).sum(axis=1)

        p_left = left_weight / total_weight
        p_right = right_weight / total_weight
        info = p_left * _rows_entropy(left) + p_right * _rows_entropy(right)
        gain = parent_entropy - info
        with np.errstate(divide="ignore", invalid="ignore"):
            split_info = -(
                np.where(p_left > 0, p_left * np.log2(np.maximum(p_left, _EPS)), 0.0)
                + np.where(
                    p_right > 0, p_right * np.log2(np.maximum(p_right, _EPS)), 0.0
                )
            )
        ratio = np.where(
            (gain >= self.min_gain) & (split_info > _EPS) & valid,
            gain / np.maximum(split_info, _EPS),
            -np.inf,
        )
        best = int(np.argmax(ratio))
        if not np.isfinite(ratio[best]):
            return None
        boundary = boundaries[best]
        threshold = (values[boundary - 1] + values[boundary]) / 2.0
        return float(ratio[best]), float(threshold)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Route each sample to a leaf and return its majority class."""
        self._check_fitted()
        assert self.root_ is not None
        X = np.asarray(X, dtype=float)
        predictions = np.empty(X.shape[0], dtype=int)
        for index, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            predictions[index] = node.prediction
        return predictions

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a stump leaf)."""
        self._check_fitted()

        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)
