"""Smoke tests running the example scripts as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Top-1 covering rule groups" in result.stdout
        assert "abc" in result.stdout.replace("[-inf,inf]", "").replace(
            ", ", ""
        ) or "a, b, c" not in result.stdout

    def test_leukemia_classification(self):
        result = run_example("leukemia_classification.py", "--scale", "0.05")
        assert result.returncode == 0, result.stderr
        assert "RCBT" in result.stdout
        assert "accuracy" in result.stdout

    def test_biomarker_discovery(self):
        result = run_example("biomarker_discovery.py", "--scale", "0.05",
                             "--nl", "5")
        assert result.returncode == 0, result.stderr
        assert "Candidate biomarkers" in result.stdout

    def test_miner_comparison(self):
        result = run_example(
            "miner_comparison.py", "--scale", "0.03", "--budget", "10"
        )
        assert result.returncode == 0, result.stderr
        assert "MineTopkRGS" in result.stdout
        assert "FARMER" in result.stdout
        assert "CHARM" in result.stdout

    def test_tall_data_mining(self):
        result = run_example("tall_data_mining.py")
        assert result.returncode == 0, result.stderr
        assert "outputs identical: True" in result.stdout
        assert "disk-spill run" in result.stdout
