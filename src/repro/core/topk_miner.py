"""MineTopkRGS: discovery of the top-k covering rule groups per row.

This module implements the algorithm of Figure 3.  A depth-first row
enumeration (any engine from :mod:`repro.core.enumeration`) is driven by
:class:`TopkPolicy`, which maintains one :class:`~repro.core.rules.TopKList`
per consequent-class row and prunes with the *dynamic* thresholds of
Section 3:

* ``minconf``/``sup`` are the confidence and support of the least
  significant k-th list entry among the rows the current subtree could
  still cover (``X_p ∪ R_p``, Lemma 3.2 / Equations 1-2);
* a subtree is pruned when its confidence upper bound falls below
  ``minconf``, or ties it with a support upper bound not above ``sup``
  (top-k pruning, Section 4.1.1), or when its support upper bound is
  below ``minsup``;
* both optimizations of Section 4.1.1 are implemented — per-row lists are
  initialized from single-item rule statistics (keyed by support set so
  two lower bounds of one group never occupy two slots), and ``minsup``
  is raised dynamically once every list is full of 100%-confidence
  groups.

The public entry point is :func:`mine_topk`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .bitset import iter_indices, popcount

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset
from ..errors import MiningBudgetExceeded
from .enumeration import MinerStats, run_enumeration
from .rules import RuleGroup, TopKList
from .view import MiningView

__all__ = [
    "TopkPolicy",
    "TopkResult",
    "maybe_check_result",
    "mine_topk",
    "relative_minsup",
]


def relative_minsup(
    dataset: "DiscretizedDataset", consequent: int, fraction: float
) -> int:
    """Absolute minsup from a fraction of the consequent class size.

    The paper sets "minimum support at 0.7 of the number of instances of
    the specified class"; this helper performs that conversion.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    class_size = dataset.class_counts()[consequent]
    return max(1, math.ceil(fraction * class_size))


class _CanonicalRowKey:
    """Memoized position-to-row translation for canonical tie-breaking.

    ``TopKList`` breaks exact confidence/support ties by the group's row
    set, but the policy's lists hold groups in enumeration-position
    space, whose order is an engine heuristic (class-dominant, ascending
    row length) — not monotone in row id.  Translating the tie-break key
    to original row space makes the order agree with every consumer that
    compares finalized results (shard merging, hybrid aggregation).  One
    instance is shared by all of a policy's lists so each distinct group
    is translated once.
    """

    __slots__ = ("_view", "_cache")

    def __init__(self, view: MiningView) -> None:
        self._view = view
        self._cache: dict[int, int] = {}

    def __call__(self, group: RuleGroup) -> int:
        rows = self._cache.get(group.row_set)
        if rows is None:
            rows = self._cache[group.row_set] = self._view.positions_to_rows(
                group.row_set
            )
        return rows


class TopkPolicy:
    """Search policy implementing the top-k pruning of Section 4.1.1."""

    def __init__(
        self,
        view: MiningView,
        k: int,
        initialize_single_items: bool = True,
        dynamic_minsup: bool = True,
        use_topk_pruning: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.view = view
        self.k = k
        self.use_topk_pruning = use_topk_pruning
        self.dynamic_minsup = dynamic_minsup
        self._minsup = view.minsup
        canonical = _CanonicalRowKey(view)
        self.lists: list[TopKList] = [
            TopKList(k, canonical_key=canonical) for _ in range(view.n_positive)
        ]
        # The per-row (kth_conf, kth_sup) pairs mirrored into the
        # backend's threshold store, whose min-fold answers Equations
        # 1-2 at every pruning check (vectorized on array backends).
        self._store = view.backend.make_threshold_store(view.n_positive)
        if initialize_single_items:
            self._initialize_from_single_items()

    # -- policy protocol --------------------------------------------------

    @property
    def minsup(self) -> int:
        return self._minsup

    def loose_prunable(
        self, x_p: int, x_n: int, r_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        sup_ub = x_p + r_p
        return self._prunable(sup_ub, x_n, threshold_bits)

    def tight_prunable(
        self, x_p: int, x_n: int, m_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        sup_ub = x_p + m_p
        return self._prunable(sup_ub, x_n, threshold_bits)

    def _prunable(self, sup_ub: int, x_n: int, threshold_bits: int) -> bool:
        if sup_ub < self._minsup:
            return True
        if not threshold_bits:
            # No consequent-class row can still benefit (Lemma 3.2).
            return True
        if not self.use_topk_pruning:
            return False
        min_conf, min_sup = self._thresholds(threshold_bits)
        conf_ub = sup_ub / (sup_ub + x_n)
        if conf_ub < min_conf:
            return True
        return conf_ub == min_conf and sup_ub < min_sup

    def emit(
        self, items: Sequence[int], position_bits: int, x_p: int, x_n: int
    ) -> None:
        if x_p < self._minsup:
            return
        confidence = x_p / (x_p + x_n)
        group = RuleGroup(
            antecedent=frozenset(items),
            consequent=self.view.consequent,
            row_set=position_bits,
            support=x_p,
            confidence=confidence,
        )
        changed = False
        lists = self.lists
        store = self._store
        bits = position_bits & self.view.positive_mask
        while bits:
            low = bits & -bits
            bits ^= low
            position = low.bit_length() - 1
            topk = lists[position]
            if topk.offer(group):
                store.update(position, topk.kth_conf, topk.kth_sup)
                changed = True
        if changed and self.dynamic_minsup:
            self._maybe_raise_minsup()

    # -- internals ---------------------------------------------------------

    def _thresholds(self, threshold_bits: int) -> tuple[float, int]:
        """Equations 1-2: the weakest k-th entry among the given rows.

        Delegates to the backend threshold store, which mirrors the
        ``kth_conf``/``kth_sup`` pair of every per-row list (synced on
        each accepted offer).  This runs once per pruning check, for
        every node; array backends fold it in C (DESIGN.md §12).
        """
        return self._store.fold(threshold_bits)

    def _initialize_from_single_items(self) -> None:
        """Seed the per-row lists from single-item rule statistics.

        Distinct single-item support sets are offered as provisional rule
        groups (the stored antecedent is one representative item; the true
        closed upper bound is restored by :meth:`finalize` or upgraded in
        place when the closed group is emitted during the walk).
        """
        view = self.view
        store = self._store
        for row_bits, items in view.single_item_groups().items():
            support = view.positive_count(row_bits)
            if support < self._minsup:
                continue
            total = popcount(row_bits)
            group = RuleGroup(
                antecedent=frozenset(items[:1]),
                consequent=view.consequent,
                row_set=row_bits,
                support=support,
                confidence=support / total,
            )
            for position in iter_indices(row_bits & view.positive_mask):
                topk = self.lists[position]
                if topk.offer(group):
                    store.update(position, topk.kth_conf, topk.kth_sup)
        if self.dynamic_minsup:
            self._maybe_raise_minsup()

    def _maybe_raise_minsup(self) -> None:
        """Second optimization of Section 4.1.1.

        Once every consequent-class row has k groups all at 100%
        confidence, no group with support below the weakest k-th support
        can enter any list, so ``minsup`` rises to that support.  (The
        paper raises to ``sup + 1``; keeping support-equal groups
        enumerable preserves the canonical tie-break, which may replace
        a k-th entry with an equal-significance group.)
        """
        weakest: Optional[int] = None
        for topk in self.lists:
            if len(topk) < self.k:
                return
            conf, sup = topk.kth_threshold()
            if conf < 1.0:
                return
            weakest = sup if weakest is None else min(weakest, sup)
        if weakest is not None and weakest > self._minsup:
            self._minsup = weakest

    def finalize(self) -> dict[int, list[RuleGroup]]:
        """Per-row top-k lists in original row space.

        Provisional single-item entries are upgraded to their closed upper
        bounds, and row bitsets are translated from enumeration positions
        back to the dataset's row ids.
        """
        view = self.view
        converted: dict[tuple[int, int], RuleGroup] = {}
        result: dict[int, list[RuleGroup]] = {}
        for position, topk in enumerate(self.lists):
            row_id = view.order[position]
            groups = []
            for group in topk:
                key = (group.row_set, group.consequent)
                final = converted.get(key)
                if final is None:
                    antecedent = group.antecedent
                    if len(antecedent) == 1:
                        closed = view.closed_items(group.row_set)
                        if len(closed) > 1:
                            antecedent = closed
                    final = RuleGroup(
                        antecedent=antecedent,
                        consequent=group.consequent,
                        row_set=view.positions_to_rows(group.row_set),
                        support=group.support,
                        confidence=group.confidence,
                    )
                    converted[key] = final
                groups.append(final)
            result[row_id] = groups
        return result


@dataclass
class TopkResult:
    """Outcome of one :func:`mine_topk` run.

    Attributes:
        per_row: row id -> top-k covering rule groups, most significant
            first.  Only consequent-class rows appear.
        consequent: mined class id.
        minsup: user-specified absolute minimum support.
        k: requested list length.
        stats: enumeration statistics.
    """

    per_row: dict[int, list[RuleGroup]]
    consequent: int
    minsup: int
    k: int
    stats: MinerStats

    def unique_groups(self) -> list[RuleGroup]:
        """All distinct rule groups across rows, most significant first."""
        seen: dict[tuple[int, int], RuleGroup] = {}
        for groups in self.per_row.values():
            for group in groups:
                seen.setdefault((group.row_set, group.consequent), group)
        return sorted(
            seen.values(), key=lambda g: (g.confidence, g.support), reverse=True
        )

    def rank_set(self, rank: int) -> list[RuleGroup]:
        """``RG_j`` of Section 5.2: groups that are top-``rank`` somewhere.

        Args:
            rank: 1-based rank position.
        """
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        seen: dict[tuple[int, int], RuleGroup] = {}
        for groups in self.per_row.values():
            if len(groups) >= rank:
                group = groups[rank - 1]
                seen.setdefault((group.row_set, group.consequent), group)
        return list(seen.values())

    def covered_rows(self) -> list[int]:
        """Rows with at least one covering rule group."""
        return sorted(row for row, groups in self.per_row.items() if groups)


def mine_topk(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    k: int = 1,
    engine: str = "bitset",
    initialize_single_items: bool = True,
    dynamic_minsup: bool = True,
    use_topk_pruning: bool = True,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
    n_jobs: "int | str" = 1,
    backend=None,
    strategy: str = "direct",
    spill_dir=None,
    max_resident_cells: Optional[int] = None,
) -> TopkResult:
    """Mine the top-k covering rule groups of every consequent-class row.

    Args:
        dataset: discretized dataset.
        consequent: class id of the rule consequent.
        minsup: absolute minimum support (consequent-class rows).
        k: rule groups to keep per row.
        engine: enumeration engine (``bitset``, ``table`` or ``tree``).
        initialize_single_items: apply the single-item list initialization
            optimization of Section 4.1.1.
        dynamic_minsup: apply the dynamic minsup-raising optimization.
        use_topk_pruning: disable only for ablation studies; the output is
            identical either way.
        node_budget: optional enumeration-node limit.
        time_budget: optional wall-clock limit in seconds.
        cancel: optional cancellation token (anything with ``is_set()``);
            when set mid-run the lists discovered so far are returned with
            ``stats.completed`` False, exactly like a budget overrun.

    Setting the ``REPRO_CHECK`` environment variable (to anything but
    ``0``/empty) audits every returned result against the invariant
    catalog of :mod:`repro.audit.invariants` before it is handed back,
    raising :class:`~repro.audit.invariants.InvariantViolation` on the
    first violated property.  The parallel path is checked after the
    shard merge (see :func:`repro.parallel.mine_topk_sharded`).
        n_jobs: worker processes; 1 mines serially in this process, any
            other value dispatches to :mod:`repro.parallel` (``None``/0 =
            all cores, ``"auto"`` lets the execution planner pick serial
            or parallel from the view's estimated work and the host's
            core count).  The output is bit-identical either way; with
            workers, ``node_budget`` applies per shard and ``stats`` node
            counters are summed across shards (see DESIGN.md §7, §9).
        backend: bitset-operations backend — a name (``int``, ``packed``,
            ``numpy``) or a :class:`~repro.core.backends.BitsetBackend`
            instance; ``None`` follows the ``REPRO_BITSET_BACKEND``
            environment variable, then the ``int`` default.  Results and
            stats are bit-identical across backends (DESIGN.md §12).
        strategy: ``direct`` (default) enumerates the whole dataset in
            one walk; ``hybrid`` dispatches to the partitioned
            out-of-core miner of :mod:`repro.core.hybrid` (bit-identical
            per-row lists, ``node_budget`` applied per partition);
            ``auto`` picks by row count (DESIGN.md §13).
        spill_dir: hybrid only — existing directory for partition spill
            files; mining runs in a private subdirectory removed on exit.
        max_resident_cells: hybrid only — resident-cell budget for the
            streaming partition builder (requires ``spill_dir``).

    Returns:
        A :class:`TopkResult` with per-row lists and run statistics.  When
        a budget was set and exhausted, the lists discovered so far are
        returned and ``stats.completed`` is False.
    """
    auto_resolved = False
    if strategy == "auto":
        from .hybrid import plan_auto_strategy

        strategy = plan_auto_strategy(dataset.n_rows)
        auto_resolved = True
    if strategy == "hybrid":
        from .hybrid import mine_topk_hybrid

        return mine_topk_hybrid(
            dataset,
            consequent,
            minsup,
            k=k,
            engine=engine,
            initialize_single_items=initialize_single_items,
            dynamic_minsup=dynamic_minsup,
            use_topk_pruning=use_topk_pruning,
            node_budget_per_partition=node_budget,
            time_budget=time_budget,
            cancel=cancel,
            n_jobs=n_jobs,
            backend=backend,
            spill_dir=spill_dir,
            max_resident_cells=max_resident_cells,
        )
    if strategy != "direct":
        from .hybrid import STRATEGIES

        known = ", ".join((*STRATEGIES, "auto"))
        raise ValueError(f"unknown strategy {strategy!r}; expected one of: {known}")
    if not auto_resolved and (
        spill_dir is not None or max_resident_cells is not None
    ):
        # strategy="auto" may legitimately pre-provision a spill dir and
        # land on direct; an explicit direct mine with one is a mistake.
        raise ValueError("spill_dir/max_resident_cells require strategy='hybrid'")
    if n_jobs != 1:
        from ..parallel import mine_topk_parallel

        return mine_topk_parallel(
            dataset,
            consequent,
            minsup,
            k=k,
            engine=engine,
            initialize_single_items=initialize_single_items,
            dynamic_minsup=dynamic_minsup,
            use_topk_pruning=use_topk_pruning,
            node_budget=node_budget,
            time_budget=time_budget,
            cancel=cancel,
            n_jobs=n_jobs,
            backend=backend,
        )
    view = MiningView.cached(dataset, consequent, minsup, backend=backend)
    policy = TopkPolicy(
        view,
        k,
        initialize_single_items=initialize_single_items,
        dynamic_minsup=dynamic_minsup,
        use_topk_pruning=use_topk_pruning,
    )
    try:
        stats = run_enumeration(
            view,
            policy,
            engine=engine,
            node_budget=node_budget,
            time_budget=time_budget,
            cancel=cancel,
        )
    except MiningBudgetExceeded as overrun:
        stats = overrun.stats
    result = TopkResult(
        per_row=policy.finalize(),
        consequent=consequent,
        minsup=minsup,
        k=k,
        stats=stats,
    )
    maybe_check_result(dataset, result)
    return result


def maybe_check_result(dataset: "DiscretizedDataset", result: TopkResult) -> None:
    """Run the invariant audit on ``result`` when ``REPRO_CHECK`` is set.

    Coverage strictness follows ``stats.completed``: partial results
    (budget overruns, cancellations) keep their structural invariants
    but may legitimately have incomplete per-row lists.
    """
    # The env probe is inlined so unaudited runs never import the audit
    # package (keep it in sync with repro.audit.invariants.checks_enabled).
    if os.environ.get("REPRO_CHECK", "") in ("", "0"):
        return
    from ..audit.invariants import check_topk_result

    check_topk_result(dataset, result, strict_coverage=result.stats.completed)
