"""Dataset containers for continuous and discretized gene expression data.

The paper's pipeline is: a continuous expression matrix (rows = clinical
samples, columns = genes) is discretized with the entropy-minimized MDL
partitioning, every resulting (gene, interval) pair becomes an *item*, and
the miners work on the itemized rows.  Two containers mirror that split:

* :class:`GeneExpressionDataset` — the raw continuous matrix plus labels.
* :class:`DiscretizedDataset` — rows as frozensets of item ids, a catalog
  mapping each item back to its gene and interval, and class metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.bitset import from_indices

__all__ = ["Item", "GeneExpressionDataset", "DiscretizedDataset"]


@dataclass(frozen=True)
class Item:
    """A discretized item: one expression interval of one gene.

    Attributes:
        item_id: dense integer id used by the miners.
        gene_index: column index of the gene in the continuous matrix.
        gene_name: accession-style name of the gene.
        low: inclusive lower edge of the interval (``-inf`` allowed).
        high: exclusive upper edge of the interval (``+inf`` allowed).
    """

    item_id: int
    gene_index: int
    gene_name: str
    low: float
    high: float

    def contains(self, value: float) -> bool:
        """Return True iff ``value`` falls in this interval."""
        return self.low <= value < self.high

    def label(self) -> str:
        """Paper-style rendering, e.g. ``X95735_at[-inf,994]``.

        An unbounded interval (a gene that was never cut) renders as the
        bare gene name.
        """
        if self.low == float("-inf") and self.high == float("inf"):
            return self.gene_name
        low = "-inf" if self.low == float("-inf") else f"{self.low:.4g}"
        high = "inf" if self.high == float("inf") else f"{self.high:.4g}"
        return f"{self.gene_name}[{low},{high}]"


class GeneExpressionDataset:
    """A continuous expression matrix with class labels.

    Args:
        values: float matrix of shape (n_samples, n_genes).
        labels: integer class label per sample.
        gene_names: one name per gene; synthesised if omitted.
        class_names: display names per class id; synthesised if omitted.
        name: optional dataset name for reports.
    """

    def __init__(
        self,
        values: np.ndarray,
        labels: Sequence[int],
        gene_names: Optional[Sequence[str]] = None,
        class_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ) -> None:
        self.values = np.asarray(values, dtype=float)
        if self.values.ndim != 2:
            raise ValueError("values must be a 2-d matrix (samples x genes)")
        self.labels = np.asarray(labels, dtype=int)
        if self.labels.shape[0] != self.values.shape[0]:
            raise ValueError(
                f"{self.labels.shape[0]} labels for {self.values.shape[0]} samples"
            )
        if self.labels.size and self.labels.min() < 0:
            raise ValueError("labels must be non-negative")
        n_genes = self.values.shape[1]
        if gene_names is None:
            gene_names = [f"G{i:05d}" for i in range(n_genes)]
        if len(gene_names) != n_genes:
            raise ValueError(f"{len(gene_names)} names for {n_genes} genes")
        self.gene_names = list(gene_names)
        n_classes = int(self.labels.max()) + 1 if self.labels.size else 0
        if class_names is None:
            class_names = [f"class{i}" for i in range(n_classes)]
        if len(class_names) < n_classes:
            raise ValueError("fewer class names than classes present")
        self.class_names = list(class_names)
        self.name = name

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_genes(self) -> int:
        return self.values.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def class_counts(self) -> list[int]:
        """Number of samples per class id."""
        counts = [0] * self.n_classes
        for label in self.labels:
            counts[label] += 1
        return counts

    def select_genes(self, gene_indices: Sequence[int]) -> "GeneExpressionDataset":
        """Return a copy restricted to the given gene columns."""
        indices = list(gene_indices)
        return GeneExpressionDataset(
            self.values[:, indices],
            self.labels.copy(),
            [self.gene_names[i] for i in indices],
            list(self.class_names),
            name=self.name,
        )

    def subset(self, row_indices: Sequence[int]) -> "GeneExpressionDataset":
        """Return a copy restricted to the given sample rows."""
        indices = list(row_indices)
        return GeneExpressionDataset(
            self.values[indices],
            self.labels[indices],
            list(self.gene_names),
            list(self.class_names),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"GeneExpressionDataset(name={self.name!r}, samples={self.n_samples}, "
            f"genes={self.n_genes}, classes={self.n_classes})"
        )


class DiscretizedDataset:
    """Itemized rows produced by discretization.

    Args:
        rows: one frozenset of item ids per sample.
        labels: integer class label per sample.
        items: catalog of :class:`Item`, indexed by item id.
        class_names: display names per class id.
        name: dataset name for reports.
    """

    def __init__(
        self,
        rows: Sequence[Iterable[int]],
        labels: Sequence[int],
        items: Sequence[Item],
        class_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ) -> None:
        self.rows: list[frozenset[int]] = [frozenset(row) for row in rows]
        self.labels = list(int(label) for label in labels)
        if len(self.labels) != len(self.rows):
            raise ValueError(
                f"{len(self.labels)} labels for {len(self.rows)} rows"
            )
        self.items = list(items)
        for index, item in enumerate(self.items):
            if item.item_id != index:
                raise ValueError("item catalog must be dense and ordered by id")
        n_classes = (max(self.labels) + 1) if self.labels else 0
        if class_names is None:
            class_names = [f"class{i}" for i in range(n_classes)]
        if len(class_names) < n_classes:
            raise ValueError("fewer class names than classes present")
        self.class_names = list(class_names)
        self.name = name
        self._item_rows: Optional[list[int]] = None
        self._class_masks: Optional[list[int]] = None

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def n_genes(self) -> int:
        """Number of distinct genes represented in the item catalog."""
        return len({item.gene_index for item in self.items})

    def class_counts(self) -> list[int]:
        counts = [0] * self.n_classes
        for label in self.labels:
            counts[label] += 1
        return counts

    def item_row_sets(self) -> list[int]:
        """Bitset of rows containing each item (cached).

        ``item_row_sets()[j]`` is the item support set ``R({j})`` as a row
        bitset — the basic building block of every miner.
        """
        if self._item_rows is None:
            sets = [0] * self.n_items
            for row_index, row in enumerate(self.rows):
                mark = 1 << row_index
                for item in row:
                    sets[item] |= mark
            self._item_rows = sets
        return self._item_rows

    def class_mask(self, class_id: int) -> int:
        """Bitset of rows labelled ``class_id`` (cached)."""
        if self._class_masks is None:
            masks = [0] * self.n_classes
            for row_index, label in enumerate(self.labels):
                masks[label] |= 1 << row_index
            self._class_masks = masks
        return self._class_masks[class_id]

    def item_label(self, item_id: int) -> str:
        """Paper-style label of an item."""
        return self.items[item_id].label()

    def rows_of_class(self, class_id: int) -> list[int]:
        """Row indices labelled ``class_id``, in row order."""
        return [i for i, label in enumerate(self.labels) if label == class_id]

    def support_set(self, itemset: Iterable[int]) -> int:
        """``R(itemset)`` as a row bitset (empty itemset -> all rows)."""
        row_sets = self.item_row_sets()
        result = from_indices(range(self.n_rows))
        for item in itemset:
            result &= row_sets[item]
        return result

    def common_items(self, row_bits: int) -> frozenset[int]:
        """``I(row set)`` — the largest itemset shared by the given rows."""
        common: Optional[frozenset[int]] = None
        bits = row_bits
        while bits:
            low = bits & -bits
            row_index = low.bit_length() - 1
            bits ^= low
            row = self.rows[row_index]
            common = row if common is None else common & row
            if not common:
                return frozenset()
        return common if common is not None else frozenset()

    def subset(self, row_indices: Sequence[int]) -> "DiscretizedDataset":
        """Return a copy restricted to the given rows (same item catalog)."""
        indices = list(row_indices)
        return DiscretizedDataset(
            [self.rows[i] for i in indices],
            [self.labels[i] for i in indices],
            self.items,
            list(self.class_names),
            name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"DiscretizedDataset(name={self.name!r}, rows={self.n_rows}, "
            f"items={self.n_items}, genes={self.n_genes}, "
            f"classes={self.n_classes})"
        )
