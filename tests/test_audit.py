"""Tests for the differential fuzz & invariant audit harness.

Covers the three properties ``repro.audit`` must have to be trustworthy:
case generation is a pure function of the seed, the invariant checker
actually rejects corrupted results (a checker that never fires would
make the whole harness vacuous), and a small end-to-end fuzz run over
the real miners comes back clean.
"""

import dataclasses

import pytest

from repro.audit import (
    AuditCase,
    InvariantViolation,
    audit_case,
    check_topk_result,
    checks_enabled,
    generate_case,
    generate_cases,
    run_audit,
)
from repro.audit.generator import MAX_ROWS, MAX_TALL_ROWS, SHAPES
from repro.core.topk_miner import mine_topk
from repro.service.cache import dataset_fingerprint


def _case_key(case):
    """Value identity of a case (datasets compare by fingerprint)."""
    return (
        case.index, case.seed, case.shape, case.consequent, case.minsup,
        case.k, dataset_fingerprint(case.dataset),
    )


class TestGeneratorDeterminism:
    def test_same_seed_same_cases(self):
        first = generate_cases(seed=7, n_cases=16)
        second = generate_cases(seed=7, n_cases=16)
        assert list(map(_case_key, first)) == list(map(_case_key, second))

    def test_different_seeds_differ(self):
        first = generate_cases(seed=7, n_cases=16)
        second = generate_cases(seed=8, n_cases=16)
        assert list(map(_case_key, first)) != list(map(_case_key, second))

    def test_case_index_is_independent_of_batch(self):
        # Case 5 must be the same whether generated alone or as part of
        # a batch — this is what makes --only-case reproduction work.
        batch = generate_cases(seed=3, n_cases=8)
        assert _case_key(generate_case(seed=3, index=5)) == _case_key(batch[5])

    def test_cases_are_well_formed(self):
        for case in generate_cases(seed=0, n_cases=len(SHAPES) * 2):
            assert isinstance(case, AuditCase)
            limit = MAX_TALL_ROWS if case.shape == "tall" else MAX_ROWS
            assert 1 <= case.dataset.n_rows <= limit
            if case.shape == "tall":
                # The point of the shape: multi-word bitsets, bounded
                # distinct patterns for the exact oracle.
                assert case.dataset.n_rows > 64
                assert len(set(case.dataset.rows)) <= 8
            assert case.shape in SHAPES
            assert 0 <= case.consequent < case.dataset.n_classes
            assert case.minsup >= 1
            assert case.k >= 1
            # Every class label referenced must actually occur.
            assert set(case.dataset.labels) == set(
                range(case.dataset.n_classes)
            )
            assert str(case.index) in case.repro_command()

    def test_shapes_rotate(self):
        shapes = [c.shape for c in generate_cases(seed=0, n_cases=len(SHAPES))]
        assert shapes == list(SHAPES)


def _mined_case():
    """A case plus its (valid) mining result, with >= 1 rule group."""
    for index in range(32):
        case = generate_case(seed=1, index=index)
        result = mine_topk(
            case.dataset, case.consequent, case.minsup, k=case.k
        )
        groups = list(result.unique_groups())
        if groups:
            return case, result
    raise AssertionError("no case with rule groups in 32 tries")


class TestInvariantChecker:
    def test_valid_result_passes(self):
        case, result = _mined_case()
        check_topk_result(case.dataset, result)

    @pytest.mark.parametrize(
        "field,delta",
        [("confidence", 0.25), ("support", 1), ("row_set", 0)],
        ids=["confidence", "support", "row_set"],
    )
    def test_corrupted_group_is_rejected(self, field, delta):
        case, result = _mined_case()
        row, groups = next(
            (row, groups)
            for row, groups in result.per_row.items()
            if groups
        )
        victim = groups[0]
        if field == "row_set":
            # Flip the covering row's bit out of the support set.
            corrupted = dataclasses.replace(
                victim, row_set=victim.row_set & ~(1 << row)
            )
        else:
            corrupted = dataclasses.replace(
                victim, **{field: getattr(victim, field) + delta}
            )
        per_row = dict(result.per_row)
        per_row[row] = [corrupted] + list(groups[1:])
        bad = dataclasses.replace(result, per_row=per_row)
        with pytest.raises(InvariantViolation):
            check_topk_result(case.dataset, bad)

    def test_unclosed_antecedent_is_rejected(self):
        for index in range(32):
            case = generate_case(seed=2, index=index)
            result = mine_topk(
                case.dataset, case.consequent, case.minsup, k=case.k
            )
            victim_row = None
            for row, groups in result.per_row.items():
                if groups and len(groups[0].antecedent) >= 2:
                    victim_row = row
                    break
            if victim_row is None:
                continue
            groups = result.per_row[victim_row]
            dropped = min(groups[0].antecedent)
            corrupted = dataclasses.replace(
                groups[0],
                antecedent=groups[0].antecedent - {dropped},
            )
            per_row = dict(result.per_row)
            per_row[victim_row] = [corrupted] + list(groups[1:])
            bad = dataclasses.replace(result, per_row=per_row)
            with pytest.raises(InvariantViolation):
                check_topk_result(case.dataset, bad)
            return
        raise AssertionError("no case with a 2-item antecedent in 32 tries")

    def test_emptied_row_is_rejected_only_when_strict(self):
        # Partial (budget-truncated) results keep a key per row but may
        # leave lists incomplete; completed results must cover every row
        # that a frequent item touches.
        case, result = _mined_case()
        row = next(row for row, groups in result.per_row.items() if groups)
        per_row = dict(result.per_row)
        per_row[row] = []
        partial = dataclasses.replace(result, per_row=per_row)
        with pytest.raises(InvariantViolation):
            check_topk_result(case.dataset, partial, strict_coverage=True)
        check_topk_result(case.dataset, partial, strict_coverage=False)

    def test_dropped_row_key_is_always_rejected(self):
        # Even partial results carry one entry per consequent-class row.
        case, result = _mined_case()
        row = next(iter(result.per_row))
        per_row = dict(result.per_row)
        del per_row[row]
        bad = dataclasses.replace(result, per_row=per_row)
        with pytest.raises(InvariantViolation):
            check_topk_result(case.dataset, bad, strict_coverage=False)

    def test_checks_enabled_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert not checks_enabled()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not checks_enabled()
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert checks_enabled()


class TestFuzzSmoke:
    def test_quick_fuzz_run_is_clean(self):
        report = run_audit(seed=0, cases=6, quick=True, parallel_jobs=2)
        assert report.ok, "\n".join(f.render() for f in report.failures)
        assert len(report.cases) == 6
        assert report.checks_run > 0
        assert any("seed=0" in line for line in report.summary_lines())

    def test_single_case_audit_reports_no_failures(self):
        case = generate_case(seed=0, index=0)
        failures, checks_run = audit_case(case, parallel_jobs=1, quick=True)
        assert failures == []
        assert checks_run > 0

    def test_oracle_flags_a_lying_baseline(self, monkeypatch):
        # If any engine disagreed with the brute-force baseline, the
        # oracle must say so — simulate the disagreement by making the
        # baseline lie, and check the failure carries a repro command.
        case = generate_case(seed=0, index=0)
        monkeypatch.setattr(
            "repro.audit.oracle.naive_topk",
            lambda *args, **kwargs: {},
        )
        failures, _ = audit_case(case, parallel_jobs=1, quick=True)
        mismatches = [f for f in failures if f.check == "naive-vs-miner"]
        assert mismatches, "oracle did not flag the baseline mismatch"
        rendered = mismatches[0].render()
        assert "reproduce:" in rendered
        assert "audit --seed 0 --only-case 0" in rendered
