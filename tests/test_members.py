"""Tests for rule-group member enumeration and the chi-square constraint."""

import pytest

from repro.analysis.significance import rule_chi_square
from repro.baselines import mine_farmer
from repro.core.lower_bounds import find_lower_bounds
from repro.core.members import count_members, is_member, iter_members
from repro.core.topk_miner import mine_topk
from repro.data.synthetic import random_discretized_dataset

A, B, C = 0, 1, 2


class TestExample22Membership:
    """Example 2.2: the group {a -> C, b -> C, ..., abc -> C}."""

    @pytest.fixture
    def abc_group(self, figure1):
        result = mine_topk(figure1, 1, minsup=2, k=1)
        return result.per_row[0][0]

    def test_count_is_six(self, abc_group, figure1):
        bounds = find_lower_bounds(figure1, abc_group, nl=5)
        lowers = [r.antecedent for r in bounds.rules]
        assert count_members(abc_group.antecedent, lowers) == 6

    def test_enumeration_matches_paper_listing(self, abc_group, figure1):
        bounds = find_lower_bounds(figure1, abc_group, nl=5)
        lowers = [r.antecedent for r in bounds.rules]
        members = set(iter_members(abc_group.antecedent, lowers))
        expected = {
            frozenset({A}), frozenset({B}), frozenset({A, B}),
            frozenset({A, C}), frozenset({B, C}), frozenset({A, B, C}),
        }
        assert members == expected

    def test_every_member_has_group_support(self, abc_group, figure1):
        bounds = find_lower_bounds(figure1, abc_group, nl=5)
        lowers = [r.antecedent for r in bounds.rules]
        for member in iter_members(abc_group.antecedent, lowers):
            assert is_member(figure1, abc_group, member)

    def test_non_members_rejected(self, abc_group, figure1):
        assert not is_member(figure1, abc_group, {C})  # R(c) is bigger
        assert not is_member(figure1, abc_group, {9})  # not within upper
        assert not is_member(figure1, abc_group, set())


class TestEnumerationControls:
    def test_limit(self, figure1):
        members = list(
            iter_members(frozenset({A, B, C}), [frozenset({A})], limit=2)
        )
        assert len(members) == 2

    def test_smallest_first(self):
        members = list(
            iter_members(frozenset({0, 1, 2, 3}), [frozenset({0})])
        )
        sizes = [len(m) for m in members]
        assert sizes == sorted(sizes)

    def test_invalid_lower_rejected(self):
        with pytest.raises(ValueError, match="not within"):
            count_members(frozenset({0}), [frozenset({5})])
        with pytest.raises(ValueError, match="not within"):
            list(iter_members(frozenset({0}), [frozenset({5})]))

    def test_count_matches_enumeration(self):
        ds = random_discretized_dataset(9, 8, density=0.5, seed=12)
        result = mine_topk(ds, 1, minsup=1, k=3)
        for group in result.unique_groups()[:5]:
            bounds = find_lower_bounds(ds, group, nl=50)
            lowers = [r.antecedent for r in bounds.rules]
            if not bounds.complete or len(group.antecedent) > 10:
                continue
            enumerated = list(iter_members(group.antecedent, lowers))
            assert len(enumerated) == count_members(group.antecedent, lowers)
            for member in enumerated:
                assert is_member(ds, group, member)


class TestRuleChiSquare:
    def test_perfect_association(self):
        # 10 rows, 5 of class C, antecedent == class exactly.
        assert rule_chi_square(10, 5, 5, 5) == pytest.approx(10.0)

    def test_independence_is_zero(self):
        # Antecedent hits half of each class.
        assert rule_chi_square(20, 10, 10, 5) == pytest.approx(0.0)

    def test_monotone_in_association(self):
        weak = rule_chi_square(20, 10, 10, 6)
        strong = rule_chi_square(20, 10, 10, 9)
        assert strong > weak


class TestFarmerChiSquareOption:
    def test_filters_groups(self, small_random):
        unfiltered = mine_farmer(small_random, 1, 1)
        filtered = mine_farmer(small_random, 1, 1, min_chi_square=2.0)
        assert len(filtered.groups) <= len(unfiltered.groups)
        n = small_random.n_rows
        class_rows = small_random.class_counts()[1]
        for group in filtered.groups:
            statistic = rule_chi_square(
                n, class_rows, group.total_support, group.support
            )
            assert statistic >= 2.0

    def test_zero_threshold_is_noop(self, small_random):
        plain = {g.row_set for g in mine_farmer(small_random, 1, 1).groups}
        with_zero = {
            g.row_set
            for g in mine_farmer(small_random, 1, 1, min_chi_square=0.0).groups
        }
        assert plain == with_zero

    def test_negative_threshold_rejected(self, small_random):
        with pytest.raises(ValueError, match="min_chi_square"):
            mine_farmer(small_random, 1, 1, min_chi_square=-1.0)
