"""FARMER: exhaustive interesting-rule-group mining (the baseline of [6]).

FARMER performs the same row enumeration as MineTopkRGS but with *static*
thresholds: it reports every rule group (upper bound) whose support and
confidence reach user-given minimums.  The paper benchmarks two variants:

* ``engine="table"`` — the original FARMER, whose projected transposed
  tables are explicit tuple lists ("in-memory pointers");
* ``engine="tree"``  — "FARMER+prefix", the same search over the prefix
  tree of Section 4.2, about an order of magnitude faster.

Both share :class:`FarmerPolicy`; a ``bitset`` engine is also available
and is what the test suite uses for cross-validation against CHARM and
CLOSET+.  The number of groups FARMER emits explodes at low minimum
support on discretized microarray data — exactly the behaviour Figure 6
contrasts with the bounded output of MineTopkRGS — so budget limits are
first-class here: on overrun the partial result is returned with
``stats.completed == False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.backends import resolve_backend
from ..core.enumeration import MinerStats, run_enumeration
from ..core.rules import RuleGroup
from ..core.view import MiningView
from ..errors import MiningBudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["FarmerPolicy", "FarmerResult", "mine_farmer"]


class FarmerPolicy:
    """Static-threshold policy: keep everything above minsup/minconf.

    ``min_chi_square`` adds FARMER's third interestingness constraint: a
    group is reported only if its 2x2 chi-square statistic against the
    consequent class clears the threshold.  It filters output (like the
    original's final check); it is not anti-monotone, so it cannot prune
    the search.
    """

    # The static thresholds never read the Lemma 3.2 row sets, so the
    # engines skip assembling them (an O(n_rows) bitset op per candidate
    # that tall cohorts would otherwise pay for nothing).
    uses_threshold_bits = False

    def __init__(
        self,
        view: MiningView,
        minconf: float = 0.0,
        max_groups: Optional[int] = None,
        min_chi_square: float = 0.0,
    ) -> None:
        if not 0.0 <= minconf <= 1.0:
            raise ValueError(f"minconf must be in [0, 1], got {minconf}")
        if min_chi_square < 0.0:
            raise ValueError(
                f"min_chi_square must be >= 0, got {min_chi_square}"
            )
        self.view = view
        self.minconf = minconf
        self.max_groups = max_groups
        self.min_chi_square = min_chi_square
        self._n_rows = view.n_rows
        self._class_rows = view.n_positive
        self.groups: list[RuleGroup] = []

    @property
    def minsup(self) -> int:
        return self.view.minsup

    def loose_prunable(
        self, x_p: int, x_n: int, r_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        return self._prunable(x_p + r_p, x_n)

    def tight_prunable(
        self, x_p: int, x_n: int, m_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        return self._prunable(x_p + m_p, x_n)

    def _prunable(self, sup_ub: int, x_n: int) -> bool:
        if sup_ub < self.view.minsup:
            return True
        if self.minconf > 0.0:
            conf_ub = sup_ub / (sup_ub + x_n)
            if conf_ub < self.minconf:
                return True
        return False

    def emit(
        self, items: Sequence[int], position_bits: int, x_p: int, x_n: int
    ) -> None:
        if x_p < self.view.minsup:
            return
        confidence = x_p / (x_p + x_n)
        if confidence < self.minconf:
            return
        if self.min_chi_square > 0.0:
            from ..analysis.significance import rule_chi_square

            statistic = rule_chi_square(
                self._n_rows, self._class_rows, x_p + x_n, x_p
            )
            if statistic < self.min_chi_square:
                return
        self.groups.append(
            RuleGroup(
                antecedent=frozenset(items),
                consequent=self.view.consequent,
                row_set=position_bits,
                support=x_p,
                confidence=confidence,
            )
        )
        if self.max_groups is not None and len(self.groups) > self.max_groups:
            raise MiningBudgetExceeded(
                f"group budget {self.max_groups} exceeded"
            )

    def finalize(self) -> list[RuleGroup]:
        """Groups with row bitsets translated to original row ids."""
        view = self.view
        return [
            RuleGroup(
                antecedent=group.antecedent,
                consequent=group.consequent,
                row_set=view.positions_to_rows(group.row_set),
                support=group.support,
                confidence=group.confidence,
            )
            for group in self.groups
        ]


@dataclass
class FarmerResult:
    """Outcome of one FARMER run."""

    groups: list[RuleGroup]
    consequent: int
    minsup: int
    minconf: float
    stats: MinerStats

    @property
    def completed(self) -> bool:
        return self.stats.completed

    def sorted_by_significance(self) -> list[RuleGroup]:
        return sorted(
            self.groups, key=lambda g: (g.confidence, g.support), reverse=True
        )


def mine_farmer(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    minconf: float = 0.0,
    engine: str = "table",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    max_groups: Optional[int] = None,
    min_chi_square: float = 0.0,
    n_jobs: int = 1,
    backend=None,
) -> FarmerResult:
    """Mine all rule groups above the given thresholds.

    Args:
        dataset: discretized dataset.
        consequent: class id of the rule consequent.
        minsup: absolute minimum support (consequent-class rows).
        minconf: minimum confidence; 0 disables confidence pruning, the
            configuration the paper uses to stress FARMER.
        engine: ``table`` (original FARMER), ``tree`` (FARMER+prefix) or
            ``bitset``.
        node_budget: optional enumeration-node limit.
        time_budget: optional wall-clock limit in seconds.
        max_groups: optional cap on emitted groups.
        min_chi_square: minimum chi-square statistic of reported groups
            (FARMER's third interestingness constraint); 0 disables.
        n_jobs: worker processes; 1 mines serially, any other value
            dispatches to :mod:`repro.parallel` (``None``/0 = all cores).
            Output and group order are identical; ``node_budget`` then
            applies per shard.
        backend: bitset-operations backend name or instance (see
            :mod:`repro.core.backends`); ``None`` follows
            ``REPRO_BITSET_BACKEND``, then the ``int`` default.  Output
            is bit-identical across backends.

    Returns:
        A :class:`FarmerResult`; when a budget was exhausted it carries
        the groups found so far and ``stats.completed`` is False.
    """
    if n_jobs != 1:
        from ..parallel import mine_farmer_parallel

        return mine_farmer_parallel(
            dataset,
            consequent,
            minsup,
            minconf=minconf,
            engine=engine,
            node_budget=node_budget,
            time_budget=time_budget,
            max_groups=max_groups,
            min_chi_square=min_chi_square,
            n_jobs=n_jobs,
            backend=backend,
        )
    # Resolve here with the farmer task so backend="auto" keeps tall
    # static-threshold runs on int (see plan_auto_backend).
    resolved = resolve_backend(backend, n_rows=dataset.n_rows, task="farmer")
    view = MiningView.cached(dataset, consequent, minsup, backend=resolved)
    policy = FarmerPolicy(
        view,
        minconf=minconf,
        max_groups=max_groups,
        min_chi_square=min_chi_square,
    )
    try:
        stats = run_enumeration(
            view,
            policy,
            engine=engine,
            node_budget=node_budget,
            time_budget=time_budget,
        )
    except MiningBudgetExceeded as overrun:
        stats = overrun.stats if overrun.stats is not None else MinerStats(
            engine=engine, completed=False
        )
        stats.completed = False
    return FarmerResult(
        groups=policy.finalize(),
        consequent=consequent,
        minsup=minsup,
        minconf=minconf,
        stats=stats,
    )
