"""Leukemia (ALL/AML) diagnosis with RCBT, CBA and the comparator suite.

The paper's flagship application: discretize the expression matrix, build
the RCBT classifier from top-k covering rule groups, and compare it with
CBA and the numeric classifiers on held-out samples.  Also prints the
deployed diagnostic rules — the interpretability the paper argues is
RCBT's advantage over SVM.

Run:  python examples/leukemia_classification.py [--scale 0.25]
"""

import argparse

from repro.analysis import evaluate
from repro.classifiers import (
    CBAClassifier,
    DecisionTreeC45,
    RCBTClassifier,
    SVMClassifier,
)
from repro.data import generate_paper_dataset
from repro.data.discretize import EntropyDiscretizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="gene-count scale (1.0 = full Table 1 shape)")
    args = parser.parse_args()

    train, test = generate_paper_dataset("ALL", scale=args.scale)
    discretizer = EntropyDiscretizer().fit(train)
    train_items = discretizer.transform(train)
    test_items = discretizer.transform(test)
    print(f"ALL/AML: {train.n_samples} train / {test.n_samples} test "
          f"samples, {discretizer.n_selected_genes} genes after "
          f"discretization")

    # Rule-based classifiers on the discretized items.
    rcbt = RCBTClassifier(k=10, nl=20).fit(train_items)
    predictions, sources = rcbt.predict_with_sources(test_items)
    report = evaluate(test_items.labels, predictions, sources)
    print(f"\nRCBT (k=10, nl=20): {report.summary()}")

    cba = CBAClassifier().fit(train_items)
    predictions, sources = cba.predict_with_sources(test_items)
    report = evaluate(test_items.labels, predictions, sources)
    print(f"CBA  (top-1 RGs):   {report.summary()}")

    # Numeric comparators on the same selected genes, original values.
    genes = discretizer.selected_genes_
    X_train, X_test = train.values[:, genes], test.values[:, genes]
    tree = DecisionTreeC45().fit(X_train, train.labels)
    print(f"C4.5-style tree:    accuracy={tree.score(X_test, test.labels):.2%}")
    svm = SVMClassifier(kernel="linear").fit(X_train, train.labels)
    print(f"Linear SVM:         accuracy={svm.score(X_test, test.labels):.2%}")

    # The interpretable part: the main classifier's diagnostic rules.
    print("\nRCBT main-classifier rules (first 6):")
    for rule in rcbt.levels_[0].rules[:6]:
        condition = " AND ".join(
            train_items.item_label(item) for item in sorted(rule.antecedent)
        )
        label = train_items.class_names[rule.consequent]
        print(f"  IF {condition} THEN {label} "
              f"(sup={rule.support}, conf={rule.confidence:.1%})")
    print(f"\nDefault class: {train_items.class_names[rcbt.default_class_]}; "
          f"{rcbt.n_levels_} classifier levels built (1 main + "
          f"{rcbt.n_levels_ - 1} standby)")


if __name__ == "__main__":
    main()
