"""Tests for the dataset containers."""

import numpy as np
import pytest

from repro.core.bitset import from_indices, popcount
from repro.data.dataset import DiscretizedDataset, GeneExpressionDataset, Item


def tiny_expression():
    values = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    return GeneExpressionDataset(values, [0, 1, 1], ["gA", "gB"], ["n", "t"])


class TestGeneExpressionDataset:
    def test_shapes(self):
        ds = tiny_expression()
        assert ds.n_samples == 3
        assert ds.n_genes == 2
        assert ds.n_classes == 2

    def test_class_counts(self):
        assert tiny_expression().class_counts() == [1, 2]

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="labels"):
            GeneExpressionDataset(np.zeros((3, 2)), [0, 1])

    def test_negative_label_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            GeneExpressionDataset(np.zeros((2, 2)), [0, -1])

    def test_one_dim_values_raises(self):
        with pytest.raises(ValueError, match="2-d"):
            GeneExpressionDataset(np.zeros(4), [0, 1, 0, 1])

    def test_gene_name_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="names"):
            GeneExpressionDataset(np.zeros((2, 3)), [0, 1], ["only_one"])

    def test_default_names_synthesised(self):
        ds = GeneExpressionDataset(np.zeros((2, 2)), [0, 1])
        assert len(ds.gene_names) == 2
        assert ds.class_names == ["class0", "class1"]

    def test_select_genes(self):
        ds = tiny_expression().select_genes([1])
        assert ds.n_genes == 1
        assert ds.gene_names == ["gB"]
        assert ds.values[0, 0] == 2.0

    def test_subset_rows(self):
        ds = tiny_expression().subset([2, 0])
        assert ds.n_samples == 2
        assert list(ds.labels) == [1, 0]
        assert ds.values[0, 0] == 5.0

    def test_repr_mentions_shape(self):
        assert "samples=3" in repr(tiny_expression())


class TestItem:
    def test_contains_half_open(self):
        item = Item(0, 0, "g", 1.0, 2.0)
        assert item.contains(1.0)
        assert item.contains(1.99)
        assert not item.contains(2.0)

    def test_label_bounded(self):
        assert Item(0, 0, "g", 1.0, 2.0).label() == "g[1,2]"

    def test_label_unbounded_side(self):
        assert Item(0, 0, "g", float("-inf"), 2.0).label() == "g[-inf,2]"

    def test_label_fully_unbounded_is_bare_name(self):
        assert Item(0, 0, "g", float("-inf"), float("inf")).label() == "g"


class TestDiscretizedDataset:
    def test_figure1_shapes(self, figure1):
        assert figure1.n_rows == 5
        assert figure1.n_items == 10
        assert figure1.n_classes == 2
        assert figure1.class_counts() == [2, 3]

    def test_item_row_sets_match_rows(self, figure1):
        sets = figure1.item_row_sets()
        for item_id, bits in enumerate(sets):
            expected = from_indices(
                r for r, row in enumerate(figure1.rows) if item_id in row
            )
            assert bits == expected

    def test_class_mask(self, figure1):
        assert figure1.class_mask(1) == from_indices([0, 1, 2])
        assert figure1.class_mask(0) == from_indices([3, 4])

    def test_support_set_example_2_1(self, figure1):
        # R({c, d, e}) = {r1, r3, r4} (0-based: 0, 2, 3).
        cde = frozenset({2, 3, 4})
        assert figure1.support_set(cde) == from_indices([0, 2, 3])

    def test_common_items_example_2_1(self, figure1):
        # I({r1, r3}) = {c, d, e}.
        assert figure1.common_items(from_indices([0, 2])) == frozenset({2, 3, 4})

    def test_support_set_empty_itemset_is_all_rows(self, figure1):
        assert popcount(figure1.support_set([])) == figure1.n_rows

    def test_common_items_empty_rows(self, figure1):
        assert figure1.common_items(0) == frozenset()

    def test_galois_connection(self, figure1):
        # R(I(X)) contains X and I(R(A)) contains A for all tested pairs.
        for rows_bits in (from_indices([0]), from_indices([0, 2]),
                          from_indices([1, 4])):
            items = figure1.common_items(rows_bits)
            assert figure1.support_set(items) & rows_bits == rows_bits
        for itemset in (frozenset({2}), frozenset({2, 3}), frozenset({4, 5})):
            rows_bits = figure1.support_set(itemset)
            assert figure1.common_items(rows_bits) >= itemset

    def test_subset_keeps_items(self, figure1):
        sub = figure1.subset([0, 3])
        assert sub.n_rows == 2
        assert sub.n_items == figure1.n_items
        assert sub.labels == [1, 0]

    def test_rows_of_class(self, figure1):
        assert figure1.rows_of_class(1) == [0, 1, 2]
        assert figure1.rows_of_class(0) == [3, 4]

    def test_label_count_mismatch_raises(self, figure1):
        with pytest.raises(ValueError, match="labels"):
            DiscretizedDataset([{0}], [0, 1], figure1.items)

    def test_sparse_item_catalog_rejected(self):
        items = [Item(1, 0, "g", float("-inf"), float("inf"))]
        with pytest.raises(ValueError, match="dense"):
            DiscretizedDataset([{1}], [0], items)

    def test_n_genes_counts_distinct(self, figure1):
        assert figure1.n_genes == 10
