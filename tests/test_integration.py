"""End-to-end integration tests over the whole pipeline."""

import pytest

from repro.analysis import evaluate
from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.core.topk_miner import mine_topk, relative_minsup
from repro.data import generate_paper_dataset
from repro.data.discretize import EntropyDiscretizer


@pytest.fixture(scope="module")
def pipeline():
    """generate -> discretize -> (train items, test items)."""
    train, test = generate_paper_dataset("ALL", scale=0.05)
    discretizer = EntropyDiscretizer().fit(train)
    return train, test, discretizer


class TestPipeline:
    def test_discretization_selects_features(self, pipeline):
        train, _test, discretizer = pipeline
        assert 0 < discretizer.n_selected_genes < train.n_genes

    def test_shared_catalog(self, pipeline):
        train, test, discretizer = pipeline
        train_items = discretizer.transform(train)
        test_items = discretizer.transform(test)
        assert train_items.items == test_items.items
        assert train_items.n_rows == 38
        assert test_items.n_rows == 34

    def test_mining_covers_all_rows(self, pipeline):
        train, _test, discretizer = pipeline
        items = discretizer.transform(train)
        for class_id in (0, 1):
            minsup = relative_minsup(items, class_id, 0.7)
            result = mine_topk(items, class_id, minsup, k=5)
            assert result.covered_rows() == items.rows_of_class(class_id)

    def test_rcbt_end_to_end(self, pipeline):
        train, test, discretizer = pipeline
        train_items = discretizer.transform(train)
        test_items = discretizer.transform(test)
        model = RCBTClassifier(k=5, nl=10).fit(train_items)
        predictions, sources = model.predict_with_sources(test_items)
        report = evaluate(test_items.labels, predictions, sources)
        assert report.accuracy >= 0.85
        assert report.n_samples == 34

    def test_cba_end_to_end(self, pipeline):
        train, test, discretizer = pipeline
        train_items = discretizer.transform(train)
        test_items = discretizer.transform(test)
        model = CBAClassifier().fit(train_items)
        assert model.score(test_items) >= 0.7

    def test_rcbt_beats_or_matches_cba(self, pipeline):
        train, test, discretizer = pipeline
        train_items = discretizer.transform(train)
        test_items = discretizer.transform(test)
        rcbt = RCBTClassifier(k=5, nl=10).fit(train_items)
        cba = CBAClassifier().fit(train_items)
        assert rcbt.score(test_items) >= cba.score(test_items) - 0.03


class TestMinerAgreementAtScale:
    def test_topk_same_across_engines(self, pipeline):
        train, _test, discretizer = pipeline
        items = discretizer.transform(train)
        minsup = relative_minsup(items, 1, 0.8)
        results = {
            engine: mine_topk(items, 1, minsup, k=3, engine=engine)
            for engine in ("bitset", "table", "tree")
        }
        reference = results["bitset"]
        for engine, result in results.items():
            for row in reference.per_row:
                ref = [(g.confidence, g.support)
                       for g in reference.per_row[row]]
                got = [(g.confidence, g.support) for g in result.per_row[row]]
                assert ref == got, engine
