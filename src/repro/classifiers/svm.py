"""A from-scratch kernel SVM (SMO solver) for the Table 2 comparison.

The paper runs SVM-light with linear and polynomial kernels on the
original expression values of the entropy-selected genes and reports the
better of the two.  This is a self-contained sequential-minimal-
optimization implementation good for the paper's scales (tens to
hundreds of samples): the full kernel matrix is precomputed and pairs of
multipliers are optimized until KKT violations vanish.

Features are standardized internally; binary class labels {0, 1} map to
{-1, +1}.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .base import NumericClassifier

__all__ = ["SVMClassifier"]


class SVMClassifier(NumericClassifier):
    """Binary soft-margin SVM trained by simplified SMO.

    Args:
        kernel: ``"linear"`` or ``"poly"``.
        C: soft-margin penalty.
        degree: polynomial kernel degree.
        coef0: polynomial kernel constant.
        gamma: kernel scale; None uses 1 / n_features.
        tol: KKT violation tolerance.
        max_passes: passes over the data with no update before stopping.
        max_iterations: hard cap on optimization sweeps.
        standardize: z-score features using training statistics.
        seed: RNG seed for partner selection.
    """

    def __init__(
        self,
        kernel: str = "linear",
        C: float = 1.0,
        degree: int = 3,
        coef0: float = 1.0,
        gamma: Optional[float] = None,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iterations: int = 200,
        standardize: bool = True,
        seed: int = 0,
    ) -> None:
        if kernel not in ("linear", "poly"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.kernel = kernel
        self.C = C
        self.degree = degree
        self.coef0 = coef0
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iterations = max_iterations
        self.standardize = standardize
        self.seed = seed
        self.alpha_: Optional[np.ndarray] = None
        self.b_: float = 0.0
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        gamma = self.gamma if self.gamma is not None else 1.0 / A.shape[1]
        gram = A @ B.T
        if self.kernel == "linear":
            return gram
        return (gamma * gram + self.coef0) ** self.degree

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if not self.standardize:
            return X
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "SVMClassifier":
        """Solve the soft-margin dual with simplified SMO."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        classes = np.unique(y)
        if len(classes) != 2 or set(classes) != {0, 1}:
            raise ValueError("SVMClassifier requires binary labels {0, 1}")
        if self.standardize:
            self._mean = X.mean(axis=0)
            std = X.std(axis=0)
            self._std = np.where(std > 1e-12, std, 1.0)
        X = self._prepare(X)
        signs = np.where(y == 1, 1.0, -1.0)
        n = len(y)
        K = self._kernel_matrix(X, X)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def f(index: int) -> float:
            return float((alpha * signs) @ K[:, index] + b)

        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            iterations += 1
            changed = 0
            for i in range(n):
                error_i = f(i) - signs[i]
                if (signs[i] * error_i < -self.tol and alpha[i] < self.C) or (
                    signs[i] * error_i > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    error_j = f(j) - signs[j]
                    alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                    if signs[i] != signs[j]:
                        low = max(0.0, alpha[j] - alpha[i])
                        high = min(self.C, self.C + alpha[j] - alpha[i])
                    else:
                        low = max(0.0, alpha[i] + alpha[j] - self.C)
                        high = min(self.C, alpha[i] + alpha[j])
                    if low >= high:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    alpha[j] -= signs[j] * (error_i - error_j) / eta
                    alpha[j] = min(high, max(low, alpha[j]))
                    if abs(alpha[j] - alpha_j_old) < 1e-7:
                        continue
                    alpha[i] += signs[i] * signs[j] * (alpha_j_old - alpha[j])
                    b1 = (
                        b
                        - error_i
                        - signs[i] * (alpha[i] - alpha_i_old) * K[i, i]
                        - signs[j] * (alpha[j] - alpha_j_old) * K[i, j]
                    )
                    b2 = (
                        b
                        - error_j
                        - signs[i] * (alpha[i] - alpha_i_old) * K[i, j]
                        - signs[j] * (alpha[j] - alpha_j_old) * K[j, j]
                    )
                    if 0 < alpha[i] < self.C:
                        b = b1
                    elif 0 < alpha[j] < self.C:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        self.alpha_ = alpha
        self.b_ = b
        self._X = X
        self._y = signs
        self._fitted = True
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin for each row of ``X``."""
        self._check_fitted()
        assert self._X is not None and self._y is not None
        X = self._prepare(np.asarray(X, dtype=float))
        K = self._kernel_matrix(X, self._X)
        return K @ (self.alpha_ * self._y) + self.b_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class 1 where the decision function is non-negative."""
        return (self.decision_function(X) >= 0).astype(int)

    @property
    def n_support_(self) -> int:
        """Number of support vectors (alpha > 0)."""
        self._check_fitted()
        assert self.alpha_ is not None
        return int((self.alpha_ > 1e-8).sum())
