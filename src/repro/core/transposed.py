"""Explicit (projected) transposed tables — Figure 1(b)-(d).

The enumeration engines keep their own compact representations
(bitsets, tuple lists, prefix trees); this module provides the concept
itself as a first-class object, matching the paper's notation: ``TT``
has one *tuple* per item listing the rows containing it, and the
X-projected table ``TT|_X`` keeps, for each tuple containing all of
``X``, the rows ordered after every row of ``X``.

Useful for inspection, teaching, and as an executable specification the
engine tests can compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["TransposedTable"]


@dataclass(frozen=True)
class TransposedTable:
    """A (possibly projected) transposed table.

    Attributes:
        tuples: mapping item id -> ascending tuple of row ids.  In a
            projection, items whose remaining row list is empty are kept
            (they are still in ``I(X)``) with an empty tuple.
        projected_on: the row set ``X`` this table is projected on
            (empty for the root table ``TT``).
    """

    tuples: dict[int, tuple[int, ...]]
    projected_on: frozenset[int]

    @classmethod
    def from_dataset(cls, dataset: "DiscretizedDataset") -> "TransposedTable":
        """Build ``TT`` (Figure 1b) from a discretized dataset."""
        tuples: dict[int, list[int]] = {i: [] for i in range(dataset.n_items)}
        for row_id, row in enumerate(dataset.rows):
            for item in row:
                tuples[item].append(row_id)
        return cls(
            tuples={
                item: tuple(rows) for item, rows in tuples.items() if rows
            },
            projected_on=frozenset(),
        )

    def project(self, rows: Iterable[int]) -> "TransposedTable":
        """``TT|_X`` for ``X = projected_on ∪ rows`` (Section 3).

        Keeps tuples containing every row of ``X``, truncated to rows
        strictly greater than ``max(X)``.
        """
        target = self.projected_on | frozenset(rows)
        if not target:
            return self
        cutoff = max(target)
        projected: dict[int, tuple[int, ...]] = {}
        for item, row_tuple in self.tuples.items():
            row_set = set(row_tuple) | self.projected_on
            if target <= row_set:
                projected[item] = tuple(r for r in row_tuple if r > cutoff)
        return TransposedTable(tuples=projected, projected_on=target)

    def items(self) -> list[int]:
        """``I(X)`` — the items represented in this table."""
        return sorted(self.tuples)

    def row_frequencies(self) -> dict[int, int]:
        """Row id -> number of tuples containing it (Figure 3 step 10)."""
        frequencies: dict[int, int] = {}
        for row_tuple in self.tuples.values():
            for row in row_tuple:
                frequencies[row] = frequencies.get(row, 0) + 1
        return frequencies

    def closure_extension(self) -> list[int]:
        """Rows present in every tuple — they join ``X`` (step 10).

        Empty when any tuple has run out of rows (such an item cannot
        contain further rows, so no row can be common to all tuples).
        """
        n_tuples = len(self.tuples)
        if n_tuples == 0 or any(not t for t in self.tuples.values()):
            return []
        return sorted(
            row
            for row, count in self.row_frequencies().items()
            if count == n_tuples
        )

    def render(self, item_namer=None, row_offset: int = 0) -> str:
        """Figure 1(b)-style text rendering."""
        namer = item_namer if item_namer is not None else str
        lines = []
        for item in self.items():
            rows = ", ".join(
                str(row + row_offset) for row in self.tuples[item]
            )
            lines.append(f"{namer(item)}: {{{rows}}}")
        return "\n".join(lines)
