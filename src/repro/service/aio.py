"""Asyncio batch-coalescing HTTP front end for :class:`RuleService`.

The PR 1 :class:`~repro.service.server.ReproServer` spends one OS thread
per connection and answers each ``/classify`` alone, so the bitset
``predict_batch`` fast path never sees a batch from the wire.  This
module is the production front end: a stdlib-``asyncio`` server that

* holds thousands of **keep-alive** connections on one event loop
  instead of a thread each;
* services **HTTP/1.1 pipelining** concurrently — every request read
  from a connection is dispatched immediately while later requests are
  still being parsed, with responses written back in request order (the
  protocol's ordering rule), so a client that writes N classify
  requests back-to-back pays one round-trip and one model dispatch, not
  N of each;
* **coalesces** concurrent ``/classify`` requests per model version
  into single ``predict_batch`` calls through an event-loop
  micro-batcher (flush on ``batch_rows`` rows or after ``batch_delay``
  seconds, whichever first) — the wire-to-batch path the serving layer
  was built for;
* applies **admission control**: beyond ``max_connections`` sockets or
  ``max_inflight`` dispatched requests, new work is shed with ``503``
  plus a ``Retry-After`` backpressure header instead of queueing
  without bound (``/healthz`` bypasses the gate and reports — and
  returns 503 during — shedding, so load balancers rotate instances);
* **drains gracefully**: stop closes the listener, gives in-flight
  requests ``grace_seconds`` to finish (flushing the coalescers), then
  tears down — and :meth:`RuleService.shutdown` checkpoints the durable
  job store behind it.

Mining is untouched: ``/mine`` still lands on the thread-pool job queue
and the warm process pool of :mod:`repro.parallel` (via a small request
executor), so PR 5's retry/heal/degrade semantics carry over verbatim.
Blocking service calls run on that executor too; the event loop itself
never computes.

The class mirrors :class:`ReproServer`'s surface (``start`` / ``stop`` /
``serve_forever`` / ``url`` / shared ``service``) so the e2e suite runs
against both and ``repro serve`` can flip between them with a flag.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from .registry import ModelRecord
from .server import RuleService, ServiceError

__all__ = ["AsyncReproServer"]

MAX_BODY_BYTES = 16 * 1024 * 1024  # same request bound as the legacy server
MAX_HEADER_BYTES = 64 * 1024
# In-order responses mean a pipelined burst is buffered as tasks; bound
# how far ahead of the writer a single connection may read.
MAX_PIPELINE_DEPTH = 64

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _Request:
    """One parsed HTTP request (or a pre-cooked parse-error response)."""

    __slots__ = ("method", "path", "body", "keep_alive", "error")

    def __init__(self, method="", path="", body=b"", keep_alive=False,
                 error=None):
        self.method = method
        self.path = path
        self.body = body
        self.keep_alive = keep_alive
        self.error = error  # (status, message) forcing a close


class _Coalescer:
    """Event-loop micro-batcher for one model version.

    The asyncio twin of :class:`~repro.service.batching.MicroBatcher`:
    no collector thread and no blocking — pending requests are plain
    lists mutated only on the event loop, the flush deadline is a
    ``call_later`` timer, and the batched ``predict_batch`` call runs on
    the request executor so the loop keeps parsing sockets while the
    model computes.
    """

    def __init__(
        self,
        server: "AsyncReproServer",
        record: ModelRecord,
        max_batch_rows: int,
        max_delay: float,
    ) -> None:
        self._server = server
        self._record = record
        self.max_batch_rows = max(1, max_batch_rows)
        self.max_delay = max(0.0, max_delay)
        self._pending: list[tuple[list, asyncio.Future]] = []
        self._pending_rows = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        self.requests = 0
        self.batches = 0
        self.batched_rows = 0
        self.largest_batch = 0

    def submit(self, rows: list) -> asyncio.Future:
        """Queue ``rows`` and return a future of their predictions."""
        future = self._server._loop.create_future()
        self.requests += 1
        self._pending.append((rows, future))
        self._pending_rows += len(rows)
        if self._pending_rows >= self.max_batch_rows:
            self.flush()
        elif self._timer is None:
            self._timer = self._server._loop.call_later(
                self.max_delay, self.flush
            )
        return future

    def flush(self) -> None:
        """Dispatch whatever is pending as one ``predict_batch`` call."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        total, self._pending_rows = self._pending_rows, 0
        self._server._spawn(self._run_batch(batch, total))

    async def _run_batch(
        self, batch: list[tuple[list, asyncio.Future]], total: int
    ) -> None:
        all_rows: list = []
        for rows, _ in batch:
            all_rows.extend(rows)
        try:
            results = await self._server._loop.run_in_executor(
                self._server._executor,
                self._record.model.predict_batch,
                all_rows,
            )
            if len(results) != total:
                raise RuntimeError(
                    f"predict_batch returned {len(results)} results "
                    f"for {total} rows"
                )
        except BaseException as error:
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
            return
        self.batches += 1
        self.batched_rows += total
        self.largest_batch = max(self.largest_batch, total)
        self._server.service.observe_batch(total)
        offset = 0
        for rows, future in batch:
            if not future.done():
                future.set_result(results[offset:offset + len(rows)])
            offset += len(rows)

    def stats(self) -> dict:
        """Same shape as :meth:`MicroBatcher.stats` for ``/metrics``."""
        mean = self.batched_rows / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "batches": self.batches,
            "rows": self.batched_rows,
            "largest_batch_rows": self.largest_batch,
            "mean_batch_rows": mean,
        }


class AsyncReproServer:
    """A :class:`RuleService` behind a coalescing asyncio front end.

    Args:
        host/port: bind address; port 0 picks an ephemeral port.
        service: an existing facade to serve; built from the remaining
            keyword arguments when omitted (same knobs as
            :class:`ReproServer`, including ``store_path`` durability).
        max_connections: socket cap; connections beyond it are answered
            ``503`` + ``Retry-After`` and closed.
        max_inflight: dispatched-request cap; beyond it requests are
            shed with ``503`` + ``Retry-After`` (the connection stays
            open — backpressure, not punishment).
        retry_after_seconds: value of the ``Retry-After`` header.
        grace_seconds: default drain window of :meth:`stop`.
        executor_workers: threads for blocking service calls and batched
            predictions (mining itself runs on the job queue / miner
            pool, not here).
        verbose: log one line per request to stderr.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[RuleService] = None,
        verbose: bool = False,
        max_connections: int = 512,
        max_inflight: int = 128,
        retry_after_seconds: float = 1.0,
        grace_seconds: float = 5.0,
        executor_workers: int = 4,
        **service_kwargs,
    ) -> None:
        self.service = service if service is not None else RuleService(
            **service_kwargs
        )
        self.verbose = verbose
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.retry_after_seconds = retry_after_seconds
        self.grace_seconds = grace_seconds
        self._bind_host = host
        self._bind_port = port
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-aio"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._stop_called = False
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        # Event-loop-only state (no locks: single-threaded loop).
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._coalescers: dict[tuple[str, int], _Coalescer] = {}
        self._inflight = 0
        self._connections = 0
        self._shed_requests = 0
        self._shed_connections = 0
        self._draining = False
        self._grace = grace_seconds

    # -- public surface (mirrors ReproServer) ------------------------------

    @property
    def host(self) -> str:
        return self._host if self._host is not None else self._bind_host

    @property
    def port(self) -> int:
        return self._port if self._port is not None else self._bind_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncReproServer":
        """Serve on a background event-loop thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-aio"
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        if self._thread is None:
            self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self, grace_seconds: Optional[float] = None) -> None:
        """Drain in-flight requests, then shut everything down.

        New connections stop being accepted immediately; requests
        already dispatched (including batched predictions they joined)
        get up to ``grace_seconds`` to complete, then stragglers are
        cancelled.  Afterwards the facade shuts down — checkpointing and
        re-arming the durable job store when one is configured.
        """
        if self._stop_called:
            return
        self._stop_called = True
        if self._thread is not None:
            grace = self.grace_seconds if grace_seconds is None else grace_seconds
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._begin_shutdown, grace)
            self._thread.join()
            self._thread = None
        self._executor.shutdown(wait=True)
        self.service.shutdown()

    # -- event-loop lifecycle ----------------------------------------------

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # startup failures (port in use...)
            if not self._started.is_set():
                self._startup_error = error
                self._started.set()
            else:  # pragma: no cover - defensive
                raise
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection,
            self._bind_host,
            self._bind_port,
            limit=MAX_HEADER_BYTES,
        )
        sockname = server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        self._started.set()
        await self._shutdown_event.wait()
        await self._drain(server)

    def _begin_shutdown(self, grace: float) -> None:
        self._grace = grace
        self._shutdown_event.set()

    async def _drain(self, server: asyncio.base_events.Server) -> None:
        self._draining = True
        server.close()
        await server.wait_closed()
        loop = self._loop
        deadline = loop.time() + max(0.0, self._grace)
        while True:
            # Anything still queued in a coalescer window must not wait
            # out its timer against the drain clock.
            for coalescer in self._coalescers.values():
                coalescer.flush()
            pending = set(self._tasks)
            if not pending:
                break
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            await asyncio.wait(
                pending, timeout=min(0.25, max(0.01, remaining))
            )
        for task in list(self._tasks):
            task.cancel()
        for writer in list(self._writers):
            writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        leftovers = set(self._tasks) | set(self._conn_tasks)
        if leftovers:
            await asyncio.wait(leftovers, timeout=1.0)

    def _spawn(self, coro) -> asyncio.Task:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        current = asyncio.current_task()
        if current is not None:
            self._conn_tasks.add(current)
        try:
            if self._draining or self._connections >= self.max_connections:
                self._shed_connections += 1
                self.service.telemetry.increment("http_shed")
                writer.write(self._render(
                    503, {"error": "server at connection capacity"},
                    keep_alive=False, retry_after=True,
                ))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                return
            self._connections += 1
            self._writers.add(writer)
            try:
                await self._serve_connection(reader, writer)
            finally:
                self._connections -= 1
                self._writers.discard(writer)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            if current is not None:
                self._conn_tasks.discard(current)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read requests, dispatch them concurrently, respond in order.

        ``responses`` carries ``(awaitable-or-bytes, keep_alive)`` items
        in request order; the single writer coroutine serializes them
        back onto the socket.  Because the read loop never waits for a
        response before parsing the next request, a pipelined burst of N
        classify calls lands in the same coalescer window and one
        ``predict_batch`` serves all N.
        """
        responses: asyncio.Queue = asyncio.Queue()
        writer_task = self._loop.create_task(
            self._write_responses(responses, writer)
        )
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if request.error is not None:
                    status, message = request.error
                    await responses.put(
                        (self._render(status, {"error": message},
                                      keep_alive=False), False)
                    )
                    break
                keep_alive = request.keep_alive and not self._draining
                if self._should_shed(request):
                    self._shed_requests += 1
                    self.service.telemetry.increment("http_shed")
                    await responses.put((self._render(
                        503, {"error": "server overloaded, retry later"},
                        keep_alive=keep_alive, retry_after=True,
                    ), keep_alive))
                else:
                    self._inflight += 1
                    task = self._spawn(self._respond(request, keep_alive))
                    await responses.put((task, keep_alive))
                if not keep_alive:
                    break
                while responses.qsize() > MAX_PIPELINE_DEPTH:
                    await asyncio.sleep(0)
        finally:
            await responses.put(None)
            try:
                await writer_task
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _write_responses(
        self, responses: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await responses.get()
            if item is None:
                return
            payload, keep_alive = item
            if isinstance(payload, bytes):
                data = payload
            else:
                try:
                    data = await payload
                except asyncio.CancelledError:
                    return
                except Exception as error:  # pragma: no cover - defensive
                    data = self._render(
                        500, {"error": f"internal error: {error}"},
                        keep_alive=keep_alive,
                    )
            writer.write(data)
            await writer.drain()
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between requests
        except asyncio.LimitOverrunError:
            return _Request(error=(431, "request headers too large"))
        except (ConnectionError, OSError):
            return None
        try:
            head = blob.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, path, version = request_line.split(" ", 2)
        except ValueError:
            return _Request(error=(400, "malformed request line"))
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            return _Request(error=(400, "malformed Content-Length header"))
        if length > MAX_BODY_BYTES:
            return _Request(error=(413, "request body too large"))
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return None
        return _Request(method=method, path=path, body=body,
                        keep_alive=keep_alive)

    def _should_shed(self, request: _Request) -> bool:
        # /healthz always answers — it is how load balancers *find out*
        # the instance is shedding (and it does no work).
        if request.path.split("?", 1)[0].rstrip("/") == "/healthz":
            return False
        return self._inflight >= self.max_inflight

    # -- request dispatch ---------------------------------------------------

    async def _respond(self, request: _Request, keep_alive: bool) -> bytes:
        start = time.monotonic()
        telemetry = self.service.telemetry
        telemetry.increment("http_requests")
        route = None
        try:
            status, payload, route = await self._route(request)
        except ServiceError as error:
            telemetry.increment("http_errors")
            status, payload = error.status, {"error": str(error)}
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - defensive
            telemetry.increment("http_errors")
            status, payload = 500, {"error": f"internal error: {error}"}
        finally:
            self._inflight -= 1
        if route is not None:
            telemetry.observe(
                f"route_seconds:{route}", time.monotonic() - start
            )
        if self.verbose:  # pragma: no cover - log formatting
            print(f"aio {request.method} {request.path} -> {status}",
                  file=sys.stderr)
        return self._render(status, payload, keep_alive=keep_alive)

    async def _route(self, request: _Request) -> tuple[int, dict, Optional[str]]:
        service = self.service
        method = request.method
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                payload = service.health()
                shedding = self._inflight >= self.max_inflight
                payload["shedding"] = shedding
                payload["inflight_requests"] = self._inflight
                payload["connections"] = self._connections
                if shedding or self._draining:
                    payload["status"] = "shedding" if shedding else "draining"
                    return 503, payload, "GET /healthz"
                return 200, payload, "GET /healthz"
            if path == "/metrics":
                payload = await self._call(service.metrics)
                batching = payload.setdefault("batching", {})
                for (name, version), coalescer in sorted(
                    self._coalescers.items()
                ):
                    batching[f"{name}@v{version}"] = coalescer.stats()
                payload["frontend"] = self.describe()
                return 200, payload, "GET /metrics"
            if path == "/models":
                return 200, service.list_models(), "GET /models"
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                payload = await self._call(service.job_status, job_id)
                return 200, payload, "GET /jobs/*"
            raise ServiceError(404, f"no route for GET {path}")
        if method == "POST":
            body = self._json_body(request)
            if path == "/models":
                payload = await self._call(service.register_model, body)
                return 201, payload, "POST /models"
            if path == "/classify":
                return 200, await self._classify(body), "POST /classify"
            if path == "/mine":
                payload = await self._call(service.submit_mine, body)
                return 202, payload, "POST /mine"
            raise ServiceError(404, f"no route for POST {path}")
        if method == "DELETE":
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                payload = await self._call(service.cancel_job, job_id)
                return 200, payload, "DELETE /jobs/*"
            raise ServiceError(404, f"no route for DELETE {path}")
        raise ServiceError(405, f"method {method} not supported")

    async def _classify(self, body: dict) -> dict:
        start = time.monotonic()
        # Validation + discretization can be CPU-visible (raw values go
        # through the numpy pipeline); keep it off the loop.
        record, rows = await self._call(self.service.resolve_classify, body)
        if not rows:
            pairs: list = []
        else:
            pairs = await self._coalescer(record).submit(rows)
        payload = self.service.classify_payload(record, pairs)
        self.service.record_classify(len(rows), time.monotonic() - start)
        return payload

    def _coalescer(self, record: ModelRecord) -> _Coalescer:
        key = (record.name, record.version)
        coalescer = self._coalescers.get(key)
        if coalescer is None:
            coalescer = _Coalescer(
                self,
                record,
                max_batch_rows=self.service.batch_rows,
                max_delay=self.service.batch_delay,
            )
            self._coalescers[key] = coalescer
        return coalescer

    async def _call(self, fn, *args):
        """Run a blocking service call on the request executor."""
        return await self._loop.run_in_executor(self._executor, fn, *args)

    def _json_body(self, request: _Request) -> dict:
        if not request.body:
            raise ServiceError(400, "missing request body")
        try:
            body = json.loads(request.body)
        except json.JSONDecodeError as error:
            raise ServiceError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return body

    def _render(
        self,
        status: int,
        payload: dict,
        keep_alive: bool,
        retry_after: bool = False,
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Server: repro-serve-aio/1.0",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after:
            head.append(
                f"Retry-After: {max(1, round(self.retry_after_seconds))}"
            )
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body

    def describe(self) -> dict:
        """Front-end admission counters for ``/metrics``."""
        return {
            "kind": "asyncio",
            "connections": self._connections,
            "max_connections": self.max_connections,
            "inflight_requests": self._inflight,
            "max_inflight": self.max_inflight,
            "shed_requests": self._shed_requests,
            "shed_connections": self._shed_connections,
        }
