"""IRG classifier: CBA-style selection over rule-group *upper bounds*.

The comparator from the FARMER paper [6]: interesting rule groups are
mined with static support/confidence thresholds and their upper bound
rules — often hundreds of items long — feed the CBA coverage test
directly.  Because upper bounds are maximally specific, unseen samples
rarely match any of them, so the IRG classifier falls back to its
default class far more often than CBA/RCBT; that over-specificity is
exactly why it trails in Table 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..baselines.farmer import mine_farmer
from ..core.rules import Rule
from ..core.topk_miner import relative_minsup
from .base import RuleBasedClassifier
from .selection import SelectedRules, cba_select

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["IRGClassifier"]


class IRGClassifier(RuleBasedClassifier):
    """Interesting-rule-group classifier over upper bound rules.

    Args:
        minsup_fraction: minimum support as a fraction of each class size.
        minconf: minimum confidence of mined rule groups (paper: 0.8).
        engine: enumeration engine for the FARMER run.
        node_budget: cap on enumeration nodes per class; FARMER can blow
            up on discretized microarray data, and a truncated rule pool
            simply yields the weaker classifier the paper reports.
    """

    def __init__(
        self,
        minsup_fraction: float = 0.7,
        minconf: float = 0.8,
        engine: str = "bitset",
        node_budget: Optional[int] = 500_000,
    ) -> None:
        self.minsup_fraction = minsup_fraction
        self.minconf = minconf
        self.engine = engine
        self.node_budget = node_budget
        self.selected_: Optional[SelectedRules] = None
        self.mining_completed_ = True

    def fit(self, train: "DiscretizedDataset") -> "IRGClassifier":
        """Mine interesting rule groups per class and select upper bounds."""
        candidates: list[Rule] = []
        self.mining_completed_ = True
        for class_id in range(train.n_classes):
            minsup = relative_minsup(train, class_id, self.minsup_fraction)
            result = mine_farmer(
                train,
                class_id,
                minsup,
                minconf=self.minconf,
                engine=self.engine,
                node_budget=self.node_budget,
            )
            self.mining_completed_ &= result.completed
            candidates.extend(
                group.upper_bound_rule()
                for group in result.sorted_by_significance()
            )
        self.selected_ = cba_select(candidates, train)
        self._fitted = True
        return self

    def predict_row(self, row_items: frozenset[int]) -> tuple[int, str]:
        """First matching upper-bound rule decides; else the default class."""
        self._check_fitted()
        assert self.selected_ is not None
        rule = self.selected_.first_match(row_items)
        if rule is not None:
            return rule.consequent, "main"
        return self.selected_.default_class, "default"
