"""The backend contract and the shared scalar index helpers.

A backend is a strategy object for bitset *operations*; bitset *values*
crossing the API are always plain Python ``int``s (the package-wide
representation of :mod:`repro.core.bitset`), which is what makes every
backend bit-identical by construction — only the execution of the batch
folds differs.

The scalar index helpers (``bit``/``from_indices``/``mask_below``/
``mask_upto``...) are implemented once on this base class, on top of the
validated functions in :mod:`repro.core.bitset`.  Subclasses are free to
override the *batch* operations but inherit the scalar ones, so the edge
semantics (negative index -> ``ValueError``) cannot drift between
backends; ``tests/test_backends.py`` drives every operation through
every backend to enforce exactly that.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .. import bitset as _bitset

__all__ = ["BitsetBackend"]


class BitsetBackend:
    """Base class: shared scalar ops + the batch-operation contract.

    Batch contract (``ids`` are indices into the encoded support
    table; results are plain ``int`` bitsets):

    * ``encode_supports(bitsets, n_bits)`` -> opaque handle; ``n_bits``
      is the universe size (row count) every bitset fits in.
    * ``intersect_many(handle, ids)`` == fold of ``&`` over the
      selected supports; ``ids`` must be non-empty (an ``&``-fold has
      no identity element bounded by the handle alone).
    * ``union_many(handle, ids)`` == fold of ``|``; empty ``ids`` -> 0.
    * ``intersect_union_many(handle, ids)`` == both folds in one call —
      the per-node shape of the bitset enumeration kernel.
    * ``popcount_many(bitsets)`` == ``[popcount(b) for b in bitsets]``
      over plain ints (no handle: the kernels count freshly derived
      masks, not table rows).
    """

    #: Registry name; subclasses set it.
    name: str = "base"

    # -- scalar index helpers (shared, validated) -------------------------

    @staticmethod
    def bit(index: int) -> int:
        return _bitset.bit(index)

    @staticmethod
    def from_indices(indices: Iterable[int]) -> int:
        return _bitset.from_indices(indices)

    @staticmethod
    def to_indices(bits: int) -> list[int]:
        return _bitset.to_indices(bits)

    @staticmethod
    def iter_indices(bits: int) -> Iterator[int]:
        return _bitset.iter_indices(bits)

    @staticmethod
    def is_subset(smaller: int, larger: int) -> bool:
        return _bitset.is_subset(smaller, larger)

    @staticmethod
    def contains(bits: int, index: int) -> bool:
        return _bitset.contains(bits, index)

    @staticmethod
    def lowest_bit_index(bits: int) -> int:
        return _bitset.lowest_bit_index(bits)

    @staticmethod
    def mask_below(index: int) -> int:
        return _bitset.mask_below(index)

    @staticmethod
    def mask_upto(index: int) -> int:
        return _bitset.mask_upto(index)

    def popcount(self, bits: int) -> int:
        return bits.bit_count()

    # -- batch operations (subclasses override) ---------------------------

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        """Encode a support table for the batch folds.  Subclasses may
        return any handle their batch methods understand; the default is
        a plain tuple of the ints."""
        return tuple(bitsets)

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        raise NotImplementedError

    def union_many(self, handle, ids: Sequence[int]) -> int:
        raise NotImplementedError

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        raise NotImplementedError

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
