"""Data substrate: datasets, discretization, synthetic generators, loaders."""

from .binning import BinningDiscretizer
from .dataset import DiscretizedDataset, GeneExpressionDataset, Item
from .discretize import EntropyDiscretizer, entropy, mdl_cut_points
from .loaders import (
    Benchmark,
    load_benchmark,
    load_discretized,
    load_expression,
    save_discretized,
    save_expression,
)
from .streaming import DatasetChunkSource, RowChunkSource, TallChunkSource
from .synthetic import (
    ALL_AML,
    LUNG_CANCER,
    OVARIAN_CANCER,
    PAPER_DATASETS,
    PROSTATE_CANCER,
    TALL_COHORTS,
    DatasetSpec,
    TallCohortSpec,
    generate_dataset,
    generate_paper_dataset,
    generate_tall_cohort,
    iter_tall_chunks,
    make_figure1_example,
    random_discretized_dataset,
)

__all__ = [
    "ALL_AML",
    "Benchmark",
    "BinningDiscretizer",
    "DatasetChunkSource",
    "DatasetSpec",
    "DiscretizedDataset",
    "EntropyDiscretizer",
    "GeneExpressionDataset",
    "Item",
    "LUNG_CANCER",
    "OVARIAN_CANCER",
    "PAPER_DATASETS",
    "PROSTATE_CANCER",
    "RowChunkSource",
    "TALL_COHORTS",
    "TallChunkSource",
    "TallCohortSpec",
    "entropy",
    "generate_dataset",
    "generate_paper_dataset",
    "generate_tall_cohort",
    "iter_tall_chunks",
    "load_benchmark",
    "load_discretized",
    "load_expression",
    "make_figure1_example",
    "mdl_cut_points",
    "random_discretized_dataset",
    "save_discretized",
    "save_expression",
]
