"""Tests for the SMO-based SVM."""

import numpy as np
import pytest

from repro.classifiers import SVMClassifier
from repro.errors import NotFittedError


def linear_data(n=60, seed=0, margin=1.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    X[y == 1, 0] += margin
    X[y == 0, 0] -= margin
    return X, y


def circular_data(n=80, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    radius = (X**2).sum(axis=1)
    y = (radius > np.median(radius)).astype(int)
    return X, y


class TestLinearKernel:
    def test_separable_data_perfect(self):
        X, y = linear_data()
        model = SVMClassifier(kernel="linear").fit(X, y)
        assert model.score(X, y) >= 0.98

    def test_generalizes(self):
        X, y = linear_data(seed=0)
        X2, y2 = linear_data(seed=7)
        model = SVMClassifier(kernel="linear").fit(X, y)
        assert model.score(X2, y2) >= 0.9

    def test_decision_function_sign_matches_predict(self):
        X, y = linear_data()
        model = SVMClassifier(kernel="linear").fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(model.predict(X), (scores >= 0).astype(int))

    def test_support_vectors_subset(self):
        X, y = linear_data()
        model = SVMClassifier(kernel="linear").fit(X, y)
        assert 0 < model.n_support_ <= len(y)


class TestPolyKernel:
    def test_circular_data_needs_poly(self):
        X, y = circular_data()
        linear = SVMClassifier(kernel="linear").fit(X, y)
        poly = SVMClassifier(kernel="poly", degree=2).fit(X, y)
        assert poly.score(X, y) > linear.score(X, y)
        assert poly.score(X, y) >= 0.9


class TestInterface:
    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            SVMClassifier(kernel="rbf")

    def test_binary_labels_required(self):
        X = np.zeros((3, 2))
        with pytest.raises(ValueError, match="binary"):
            SVMClassifier().fit(X, [0, 1, 2])
        with pytest.raises(ValueError, match="binary"):
            SVMClassifier().fit(X, [0, 0, 0])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            SVMClassifier().predict(np.zeros((1, 2)))

    def test_standardization_copes_with_scales(self):
        X, y = linear_data()
        X_scaled = X * np.array([1e4, 1e-4, 1.0, 1.0])
        model = SVMClassifier(kernel="linear").fit(X_scaled, y)
        assert model.score(X_scaled, y) >= 0.95

    def test_constant_feature_no_crash(self):
        X, y = linear_data()
        X[:, 3] = 5.0
        model = SVMClassifier(kernel="linear").fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_deterministic(self):
        X, y = linear_data()
        a = SVMClassifier(seed=2).fit(X, y).predict(X)
        b = SVMClassifier(seed=2).fit(X, y).predict(X)
        assert np.array_equal(a, b)
