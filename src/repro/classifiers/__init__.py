"""Classifiers: RCBT, CBA, IRG and the numeric comparators of Table 2."""

from .base import NumericClassifier, RuleBasedClassifier
from .cba import CBAClassifier
from .ensemble import AdaBoostTrees, BaggingTrees
from .irg import IRGClassifier
from .persistence import load_classifier, save_classifier
from .rcbt import ClassifierLevel, RCBTClassifier
from .selection import SelectedRules, cba_select, majority_class
from .svm import SVMClassifier
from .tree import DecisionTreeC45

__all__ = [
    "AdaBoostTrees",
    "BaggingTrees",
    "CBAClassifier",
    "ClassifierLevel",
    "DecisionTreeC45",
    "IRGClassifier",
    "NumericClassifier",
    "RCBTClassifier",
    "RuleBasedClassifier",
    "SVMClassifier",
    "SelectedRules",
    "cba_select",
    "load_classifier",
    "majority_class",
    "save_classifier",
]
