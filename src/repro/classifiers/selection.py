"""CBA's rule sorting, coverage test and error-minimizing truncation.

Steps 2-4 of Section 2.2, shared by every rule-based classifier here
(CBA, IRG and each level of RCBT):

* rules are sorted by the total order ``≺`` — confidence, then support,
  then shorter antecedent, then discovery order;
* each rule in turn is kept iff it correctly classifies at least one
  still-uncovered training row; rows it covers (of any class) are then
  removed;
* after each kept rule the running error of "classifier so far + default
  class" is recorded, and the final classifier is the prefix minimizing
  that error, together with the default class recorded at the cut point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.bitset import mask_below, popcount
from ..core.rules import Rule, RuleGroup, cba_sort_key

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = [
    "SelectedRules",
    "SelectedGroups",
    "cba_select",
    "cba_select_groups",
    "majority_class",
]


@dataclass
class SelectedRules:
    """A pruned, ordered rule list plus its default class."""

    rules: list[Rule]
    default_class: int
    training_errors: int

    def first_match(self, row_items: frozenset[int]) -> Rule | None:
        """The highest-precedence rule matching the row, if any."""
        for rule in self.rules:
            if rule.antecedent <= row_items:
                return rule
        return None


def majority_class(labels: Sequence[int], n_classes: int) -> int:
    """Most frequent class; ties broken toward the smaller id."""
    counts = [0] * n_classes
    for label in labels:
        counts[label] += 1
    return max(range(n_classes), key=lambda c: (counts[c], -c))


def cba_select(rules: Sequence[Rule], dataset: "DiscretizedDataset") -> SelectedRules:
    """Run the CBA coverage test over ``rules`` against ``dataset``.

    Args:
        rules: candidate rules in discovery order (the order is the final
            ``≺`` tie-breaker).
        dataset: training data the coverage test runs on.

    Returns:
        The error-minimizing rule prefix and default class.  With no
        usable rules the classifier is empty and the default class is the
        training majority.
    """
    n_classes = dataset.n_classes
    n_rows = dataset.n_rows
    class_masks = [dataset.class_mask(c) for c in range(n_classes)]
    ordered = sorted(
        ((rule, index) for index, rule in enumerate(rules)),
        key=lambda pair: cba_sort_key(pair[0], pair[1]),
    )

    remaining = mask_below(n_rows)
    selected: list[Rule] = []
    # Per kept rule: (cumulative rule errors, default class, total errors).
    checkpoints: list[tuple[int, int, int]] = []
    rule_errors = 0
    for rule, _index in ordered:
        if not remaining:
            break
        covered = dataset.support_set(rule.antecedent) & remaining
        if not covered:
            continue
        correct = covered & class_masks[rule.consequent]
        if not correct:
            continue
        selected.append(rule)
        rule_errors += popcount(covered) - popcount(correct)
        remaining &= ~covered
        default = max(
            range(n_classes),
            key=lambda c: (popcount(remaining & class_masks[c]), -c),
        )
        default_errors = popcount(remaining) - popcount(remaining & class_masks[default])
        checkpoints.append((rule_errors, default, rule_errors + default_errors))

    overall_default = majority_class(dataset.labels, n_classes)
    if not selected:
        base_errors = n_rows - popcount(class_masks[overall_default])
        return SelectedRules([], overall_default, base_errors)

    best_index = min(range(len(checkpoints)), key=lambda i: checkpoints[i][2])
    _, best_default, best_total = checkpoints[best_index]
    return SelectedRules(selected[: best_index + 1], best_default, best_total)


@dataclass
class SelectedGroups:
    """A pruned, ordered rule-group list plus its default class.

    Used by RCBT, whose coverage test runs at rule-group granularity: all
    lower bounds of one group match exactly the same training rows (their
    shared support set), so removing covered rows after the first of them
    would spuriously prune the other ``nl - 1`` — and make the collective
    vote degenerate to first-match.
    """

    groups: list[RuleGroup]
    default_class: int
    training_errors: int


def cba_select_groups(
    groups: Sequence[RuleGroup],
    dataset: "DiscretizedDataset",
    error_cut: bool = False,
) -> SelectedGroups:
    """CBA's sort and coverage test over whole rule groups.

    A group "matches" a training row iff the row is in its support set,
    which is identical for every member rule of the group; the selection
    is therefore exactly CBA's Step 3 applied once per group instead of
    once per lower bound.  RCBT levels use Step 3 *only* ("sorted and
    pruned (as in Step 3)", Section 5.2) — applying Step 4's error cut
    would truncate a level to its first perfect group and leave the
    opposing class without voters; pass ``error_cut=True`` to get the
    full CBA behaviour anyway.
    """
    n_classes = dataset.n_classes
    n_rows = dataset.n_rows
    class_masks = [dataset.class_mask(c) for c in range(n_classes)]
    ordered = sorted(
        enumerate(groups),
        key=lambda pair: (-pair[1].confidence, -pair[1].support, pair[0]),
    )

    remaining = mask_below(n_rows)
    selected: list[RuleGroup] = []
    checkpoints: list[tuple[int, int, int]] = []
    group_errors = 0
    for _index, group in ordered:
        if not remaining:
            break
        covered = group.row_set & remaining
        if not covered:
            continue
        correct = covered & class_masks[group.consequent]
        if not correct:
            continue
        selected.append(group)
        group_errors += popcount(covered) - popcount(correct)
        remaining &= ~covered
        default = max(
            range(n_classes),
            key=lambda c: (popcount(remaining & class_masks[c]), -c),
        )
        default_errors = popcount(remaining) - popcount(
            remaining & class_masks[default]
        )
        checkpoints.append((group_errors, default, group_errors + default_errors))

    overall_default = majority_class(dataset.labels, n_classes)
    if not selected:
        base_errors = n_rows - popcount(class_masks[overall_default])
        return SelectedGroups([], overall_default, base_errors)

    if error_cut:
        best_index = min(range(len(checkpoints)), key=lambda i: checkpoints[i][2])
        _, best_default, best_total = checkpoints[best_index]
        return SelectedGroups(selected[: best_index + 1], best_default, best_total)

    # Coverage test only: keep every group that earned its place.  The
    # default class is the majority of whatever stayed uncovered (the
    # overall majority when nothing did).
    if remaining:
        final_default = max(
            range(n_classes),
            key=lambda c: (popcount(remaining & class_masks[c]), -c),
        )
    else:
        final_default = overall_default
    final_errors = checkpoints[-1][2] if checkpoints else 0
    return SelectedGroups(selected, final_default, final_errors)
