"""End-to-end tests of the HTTP serving layer on an ephemeral port."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.classifiers import RCBTClassifier
from repro.classifiers.persistence import classifier_to_payload
from repro.data import random_discretized_dataset
from repro.data.loaders import discretized_to_payload
from repro.service import AsyncReproServer, ReproServer

SERVER_KINDS = {"legacy": ReproServer, "async": AsyncReproServer}


def _request(url, body=None, method=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if body is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_job(base, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = _request(f"{base}/jobs/{job_id}")
        assert status == 200
        if payload["status"] in ("done", "failed", "cancelled"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def _nondaemon_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.is_alive()
        and not thread.daemon
        and thread is not threading.main_thread()
    ]


# The whole suite runs against both front ends: the threaded legacy
# server and the batch-coalescing asyncio server must be behaviorally
# interchangeable.
@pytest.fixture(params=sorted(SERVER_KINDS))
def server(request):
    instance = SERVER_KINDS[request.param](
        port=0, batch_delay=0.01
    ).start()
    yield instance
    instance.stop()


class TestServingEndToEnd:
    def test_full_walkthrough(self, server, small_benchmark):
        base = server.url

        status, health = _request(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok"

        # Register a trained classifier over the wire.
        model = RCBTClassifier(k=2, nl=2).fit(small_benchmark.train_items)
        status, record = _request(f"{base}/models", body={
            "name": "all", "model": classifier_to_payload(model),
        })
        assert status == 201
        assert record == {"name": "all", "version": 1, "kind": "rcbt",
                          "has_pipeline": False}
        status, listing = _request(f"{base}/models")
        assert status == 200 and len(listing["models"]) == 1

        # Concurrent /classify requests from threads all match the
        # in-process model.
        test_items = small_benchmark.test_items
        rows_payload = [sorted(row) for row in test_items.rows]
        expected = model.predict_with_sources(test_items)
        outcomes = {}

        def classify(index):
            outcomes[index] = _request(f"{base}/classify", body={
                "model": "all", "rows": rows_payload,
            })

        threads = [
            threading.Thread(target=classify, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for status, payload in outcomes.values():
            assert status == 200
            assert payload["predictions"] == expected[0]
            assert payload["sources"] == expected[1]

        # First /mine runs as a job; the identical second request is a
        # cache hit, proven by the /metrics counters.
        mine_body = {
            "items": discretized_to_payload(small_benchmark.train_items),
            "consequent": 1,
            "k": 2,
        }
        status, first = _request(f"{base}/mine", body=mine_body)
        assert status == 202
        assert first["cached"] is False
        finished = _poll_job(base, first["job_id"])
        assert finished["status"] == "done"
        assert finished["result"]["completed"] is True
        assert finished["result"]["n_unique_groups"] >= 1

        status, second = _request(f"{base}/mine", body=mine_body)
        assert status == 202
        assert second["cached"] is True
        assert second["status"] == "done"
        assert second["result"] == finished["result"]

        status, metrics = _request(f"{base}/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["mine_cache_hits"] == 1
        assert counters["mine_cache_misses"] == 1
        assert counters["classify_requests"] == 6
        assert metrics["cache"]["hits"] == 1
        assert metrics["jobs"]["by_status"]["done"] == 1

    def test_mine_job_cancellation(self, server):
        base = server.url
        # Dense enough (~15s of enumeration) that the job far outlives
        # the cancel round-trip.
        dataset = random_discretized_dataset(
            n_rows=56, n_items=200, density=0.95, seed=3
        )
        status, submitted = _request(f"{base}/mine", body={
            "items": discretized_to_payload(dataset),
            "consequent": 1,
            "minsup": 1,
            "k": 100,
        })
        assert status == 202
        job_id = submitted["job_id"]

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, payload = _request(f"{base}/jobs/{job_id}")
            if payload["status"] == "running":
                break
            time.sleep(0.01)
        status, cancelled = _request(
            f"{base}/jobs/{job_id}", method="DELETE"
        )
        assert status == 200
        final = _poll_job(base, job_id)
        assert final["status"] == "cancelled"

    def test_classify_with_pipeline_values(self, server, small_benchmark):
        base = server.url
        model = RCBTClassifier(k=2, nl=2).fit(small_benchmark.train_items)
        discretizer = small_benchmark.discretizer
        train = small_benchmark.train
        pipeline = {
            "cuts": {str(g): c for g, c in discretizer.cuts_.items()},
            "gene_names": train.gene_names,
            "class_names": train.class_names,
        }
        _request(f"{base}/models", body={
            "name": "piped", "model": classifier_to_payload(model),
            "pipeline": pipeline,
        })
        status, payload = _request(f"{base}/classify", body={
            "model": "piped",
            "values": small_benchmark.test.values.tolist(),
        })
        assert status == 200
        expected = model.predict_with_sources(small_benchmark.test_items)
        assert payload["predictions"] == expected[0]
        assert payload["class_names"] == train.class_names

    def test_error_statuses(self, server, small_benchmark):
        base = server.url
        assert _request(f"{base}/nope")[0] == 404
        assert _request(f"{base}/classify", body={"model": "ghost",
                                                  "rows": []})[0] == 404
        assert _request(f"{base}/jobs/job-999")[0] == 404
        status, payload = _request(f"{base}/mine", body={"items": 3})
        assert status == 400 and "items" in payload["error"]
        status, _ = _request(f"{base}/mine", body={
            "items": discretized_to_payload(small_benchmark.train_items),
            "consequent": 99,
        })
        assert status == 400

    @pytest.mark.parametrize("kind", sorted(SERVER_KINDS))
    def test_shutdown_leaves_no_nondaemon_threads(self, kind,
                                                  small_benchmark):
        before = set(_nondaemon_threads())
        instance = SERVER_KINDS[kind](port=0).start()
        base = instance.url
        model = RCBTClassifier(k=2, nl=2).fit(small_benchmark.train_items)
        _request(f"{base}/models", body={
            "name": "all", "model": classifier_to_payload(model),
        })
        _request(f"{base}/classify", body={
            "model": "all",
            "rows": [sorted(row) for row in small_benchmark.test_items.rows],
        })
        _request(f"{base}/mine", body={
            "items": discretized_to_payload(small_benchmark.train_items),
            "consequent": 1,
        })
        instance.stop()
        leaked = [t for t in _nondaemon_threads() if t not in before]
        assert leaked == []
