"""Command-line interface: ``repro <command> [options]``.

Commands:

* ``generate``   — write a synthetic paper-shaped dataset to TSV files;
* ``discretize`` — entropy-MDL discretize a TSV dataset into an item file;
* ``mine``       — mine top-k covering rule groups from an item file;
* ``classify``   — train a classifier on one TSV and evaluate on another
  (``--save`` persists a trained rule classifier and its pipeline);
* ``predict``    — apply a saved rule classifier to new samples;
* ``serve``      — run the JSON-over-HTTP serving layer of
  :mod:`repro.service` (model registry, mining cache, async jobs;
  batch-coalescing asyncio front end by default, ``--legacy`` for the
  threaded server, ``--store`` for restart-durable jobs);
* ``loadtest``   — benchmark both HTTP front ends and write
  ``BENCH_service.json`` (see :mod:`repro.service.loadtest`);
* ``bench``      — time serial vs. parallel mining on the synthetic
  generators and write ``BENCH_core.json`` (see :mod:`repro.bench`);
* ``audit``      — differential fuzz & invariant audit: seeded random
  datasets mined across engines, flags and worker counts, checked
  against the naive baseline and the paper's invariants
  (see :mod:`repro.audit`);
* ``experiments``— forward to the table/figure drivers.

All file formats are the plain-text formats of :mod:`repro.data.loaders`
(TSV with a JSON header line for expression matrices, JSON for
discretized items), so every intermediate is inspectable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import json

from .analysis.metrics import evaluate
from .classifiers import (
    AdaBoostTrees,
    BaggingTrees,
    CBAClassifier,
    DecisionTreeC45,
    IRGClassifier,
    RCBTClassifier,
    SVMClassifier,
)
from .core.topk_miner import mine_topk, relative_minsup
from .data.discretize import EntropyDiscretizer
from .data.loaders import (
    load_discretized,
    load_expression,
    save_discretized,
    save_expression,
)
from .data.synthetic import PAPER_DATASETS, generate_paper_dataset

__all__ = ["main"]


def _jobs_arg(value: str):
    """argparse type for worker counts: an integer or the string 'auto'.

    'auto' defers to the adaptive execution planner of
    :mod:`repro.parallel`, which picks serial or all-cores per workload.
    """
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )

_RULE_CLASSIFIERS = {
    "rcbt": lambda args: RCBTClassifier(k=args.k, nl=args.nl,
                                        n_jobs=getattr(args, "jobs", 1)),
    "cba": lambda args: CBAClassifier(),
    "irg": lambda args: IRGClassifier(),
}
_NUMERIC_CLASSIFIERS = {
    "tree": lambda args: DecisionTreeC45(),
    "bagging": lambda args: BaggingTrees(10),
    "boosting": lambda args: AdaBoostTrees(10),
    "svm": lambda args: SVMClassifier(kernel=args.kernel),
}


def _cmd_generate(args: argparse.Namespace) -> int:
    train, test = generate_paper_dataset(args.dataset, scale=args.scale)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    train_path = out / f"{args.dataset}_train.tsv"
    test_path = out / f"{args.dataset}_test.tsv"
    save_expression(train, train_path)
    save_expression(test, test_path)
    print(f"wrote {train_path} ({train.n_samples} samples x "
          f"{train.n_genes} genes)")
    print(f"wrote {test_path} ({test.n_samples} samples)")
    return 0


def _cmd_discretize(args: argparse.Namespace) -> int:
    train = load_expression(args.train)
    discretizer = EntropyDiscretizer().fit(train)
    save_discretized(discretizer.transform(train), args.output)
    print(f"{discretizer.n_selected_genes} genes kept "
          f"({len(discretizer.items_)} items); wrote {args.output}")
    if args.test and args.test_output:
        test = load_expression(args.test)
        save_discretized(discretizer.transform(test), args.test_output)
        print(f"wrote {args.test_output}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    dataset = load_discretized(args.items)
    if args.minsup is not None:
        minsup = args.minsup
    else:
        minsup = relative_minsup(dataset, args.consequent,
                                 args.minsup_fraction)
    if args.fault:
        # Fault-injection debug hook: exercise the crash-recovery
        # supervisor of repro.parallel against a real dataset from the
        # shell (e.g. --jobs 2 --fault kill@0.0).  Needs the parallel
        # path — the serial miner has no workers to lose.
        if args.jobs == 1:
            print("--fault requires --jobs != 1 (serial mining has no "
                  "workers to fault)", file=sys.stderr)
            return 2
        from .parallel import FaultPlan

        plan = FaultPlan.parse(args.fault)
        if args.strategy != "direct":
            from .core.hybrid import mine_topk_hybrid

            result = mine_topk_hybrid(
                dataset, args.consequent, minsup, k=args.k,
                engine=args.engine, n_jobs=args.jobs, fault=plan,
                backend=args.backend, spill_dir=args.spill_dir,
            )
        else:
            from .parallel import mine_topk_parallel

            result = mine_topk_parallel(
                dataset, args.consequent, minsup, k=args.k,
                engine=args.engine, n_jobs=args.jobs, fault=plan,
                backend=args.backend,
            )
    else:
        result = mine_topk(
            dataset, args.consequent, minsup, k=args.k, engine=args.engine,
            n_jobs=args.jobs, backend=args.backend, strategy=args.strategy,
            spill_dir=args.spill_dir,
        )
    hybrid_stats = getattr(result, "hybrid_stats", None)
    if hybrid_stats is not None:
        print(f"hybrid: {hybrid_stats.n_partitions} partitions "
              f"({hybrid_stats.n_skipped_partitions} skipped, "
              f"{hybrid_stats.spilled_partitions} spilled), "
              f"backend={hybrid_stats.backend}, "
              f"peak {hybrid_stats.peak_resident_cells} partition cells "
              f"resident (matrix {hybrid_stats.total_cells} cells)",
              file=sys.stderr)
    if result.stats.degraded:
        print("note: worker loss degraded this mine to serial execution "
              "(result is still exact)", file=sys.stderr)
    print(f"top-{args.k} covering rule groups "
          f"(consequent={dataset.class_names[args.consequent]}, "
          f"minsup={minsup}, {result.stats.nodes_visited} nodes):")
    for row, groups in sorted(result.per_row.items()):
        for rank, group in enumerate(groups, start=1):
            items = ", ".join(
                dataset.item_label(i) for i in sorted(group.antecedent)[:4]
            )
            extra = len(group.antecedent) - 4
            suffix = f", ...(+{extra})" if extra > 0 else ""
            print(f"  row {row} #{rank}: {{{items}{suffix}}} "
                  f"sup={group.support} conf={group.confidence:.3f}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    train = load_expression(args.train)
    test = load_expression(args.test)
    discretizer = EntropyDiscretizer().fit(train)
    if args.classifier in _RULE_CLASSIFIERS:
        model = _RULE_CLASSIFIERS[args.classifier](args)
        model.fit(discretizer.transform(train))
        predictions, sources = model.predict_with_sources(
            discretizer.transform(test)
        )
        report = evaluate(list(test.labels), predictions, sources)
    else:
        genes = discretizer.selected_genes_
        model = _NUMERIC_CLASSIFIERS[args.classifier](args)
        model.fit(train.values[:, genes], train.labels)
        predictions = list(model.predict(test.values[:, genes]))
        report = evaluate(list(test.labels), predictions)
    print(f"{args.classifier}: {report.summary()}")
    if args.save:
        if args.classifier not in ("rcbt", "cba"):
            print("--save supports only rcbt and cba", file=sys.stderr)
            return 2
        from .classifiers.persistence import save_classifier

        save_classifier(model, args.save)
        pipeline_path = Path(args.save).with_suffix(".pipeline.json")
        pipeline_path.write_text(json.dumps({
            "cuts": {str(g): c for g, c in discretizer.cuts_.items()},
            "gene_names": train.gene_names,
            "class_names": train.class_names,
        }), encoding="utf-8")
        print(f"saved model to {args.save} and pipeline to {pipeline_path}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from .classifiers.persistence import load_classifier

    pipeline = json.loads(Path(args.pipeline).read_text(encoding="utf-8"))
    discretizer = EntropyDiscretizer.from_cuts(
        {int(g): c for g, c in pipeline["cuts"].items()},
        pipeline["gene_names"],
        pipeline["class_names"],
    )
    model = load_classifier(args.model)
    data = load_expression(args.data)
    items = discretizer.transform(data)
    predictions, sources = model.predict_with_sources(items)
    class_names = pipeline["class_names"]
    for index, (label, source) in enumerate(zip(predictions, sources)):
        print(f"sample {index}: {class_names[label]} ({source})")
    if len(set(data.labels)) > 1 or data.n_samples:
        report = evaluate(list(data.labels), predictions, sources)
        print(report.summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import AsyncReproServer, ReproServer

    service_kwargs = dict(
        models_dir=args.models_dir,
        cache_bytes=args.cache_bytes,
        mining_workers=args.workers,
        mine_jobs=args.mine_jobs,
        store_path=args.store,
    )
    if args.legacy:
        server = ReproServer(host=args.host, port=args.port,
                             verbose=args.verbose, **service_kwargs)
    else:
        server = AsyncReproServer(host=args.host, port=args.port,
                                  verbose=args.verbose,
                                  grace_seconds=args.grace_seconds,
                                  **service_kwargs)
    server.start()
    registered = server.service.registry.names()
    if registered:
        print(f"warm started models: {', '.join(registered)}")
    recovered = server.service.telemetry.counter("mine_jobs_recovered")
    if recovered:
        print(f"recovered {recovered} durable mining job(s) from "
              f"{args.store}")
    kind = "legacy threaded" if args.legacy else "async"
    print(f"serving on {server.url} ({kind}; Ctrl-C or SIGTERM to stop)",
          flush=True)

    # SIGTERM (systemd/k8s stop) drains like Ctrl-C does: interrupt the
    # foreground wait, then stop() below gives in-flight requests
    # --grace-seconds and checkpoints the durable job store.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        try:
            while True:
                signal.pause()
        except KeyboardInterrupt:
            pass
        print("draining...", flush=True)
        if args.legacy:
            server.stop(grace_seconds=args.grace_seconds)
        else:
            server.stop()
        print("stopped cleanly", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        DEFAULT_WORKLOADS,
        QUICK_WORKLOADS,
        compare_reports,
        run_bench,
        write_report,
    )

    workloads = None
    if args.only:
        pool = QUICK_WORKLOADS if args.quick else DEFAULT_WORKLOADS
        workloads = tuple(w for w in pool if args.only in w.name)
        if not workloads:
            names = ", ".join(w.name for w in pool)
            print(f"--only {args.only!r} matches no workload; "
                  f"available: {names}", file=sys.stderr)
            return 2
    # Read the baseline before writing, in case --output points at it.
    baseline = None
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text(encoding="utf-8"))
    report = run_bench(
        scale=args.scale,
        jobs=tuple(args.jobs),
        repeats=args.repeats,
        quick=args.quick,
        include_quick=args.include_quick,
        workloads=workloads,
    )
    write_report(report, args.output)
    for line in report.summary_lines():
        print(line)
    print(f"wrote {args.output}")
    if baseline is not None:
        lines, ok = compare_reports(report.as_dict(), baseline)
        for line in lines:
            print(line)
        if not ok:
            return 1
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from .service.loadtest import compare_reports, run_loadtest, write_report

    # Read the baseline before writing, in case --output points at it.
    baseline = None
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text(encoding="utf-8"))
    report = run_loadtest(
        quick=args.quick,
        servers=tuple(args.servers),
        progress=print if args.verbose else None,
    )
    write_report(report, args.output)
    for line in report.summary_lines():
        print(line)
    print(f"wrote {args.output}")
    if baseline is not None:
        lines, ok = compare_reports(report.as_dict(), baseline)
        for line in lines:
            print(line)
        if not ok:
            return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .audit import run_audit

    report = run_audit(
        seed=args.seed,
        cases=args.cases,
        quick=args.quick,
        only_case=args.only_case,
        parallel_jobs=1 if args.no_parallel else args.parallel_jobs,
        progress=print if args.verbose else None,
    )
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    return experiments_main([args.experiment, *args.rest])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k covering rule groups for gene expression data "
                    "(SIGMOD 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command")

    generate = commands.add_parser(
        "generate", help="write a synthetic paper-shaped dataset"
    )
    generate.add_argument("dataset", choices=sorted(PAPER_DATASETS))
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--output", default=".")
    generate.set_defaults(handler=_cmd_generate)

    discretize = commands.add_parser(
        "discretize", help="entropy-MDL discretize a TSV dataset"
    )
    discretize.add_argument("train", help="training TSV (cuts are fitted here)")
    discretize.add_argument("--output", required=True, help="items JSON")
    discretize.add_argument("--test", help="optional test TSV")
    discretize.add_argument("--test-output", help="items JSON for the test split")
    discretize.set_defaults(handler=_cmd_discretize)

    mine = commands.add_parser(
        "mine", help="mine top-k covering rule groups from an item file"
    )
    mine.add_argument("items", help="discretized items JSON")
    mine.add_argument("--consequent", type=int, default=1)
    mine.add_argument("--k", type=int, default=1)
    mine.add_argument("--minsup", type=int, default=None,
                      help="absolute minimum support")
    mine.add_argument("--minsup-fraction", type=float, default=0.7,
                      help="used when --minsup is not given")
    mine.add_argument("--engine", choices=("bitset", "table", "tree"),
                      default="bitset")
    mine.add_argument("--backend",
                      choices=("int", "packed", "numpy", "auto"),
                      default=None,
                      help="bitset-operations backend (default: the "
                           "REPRO_BITSET_BACKEND environment variable, "
                           "then 'int'; 'auto' picks from the dataset's "
                           "row count; results are identical across "
                           "backends)")
    mine.add_argument("--jobs", type=_jobs_arg, default=1,
                      help="worker processes for the mine (0 = all cores, "
                           "'auto' = let the planner decide; output is "
                           "identical to serial)")
    mine.add_argument("--strategy", choices=("direct", "hybrid", "auto"),
                      default="direct",
                      help="direct enumerates the whole dataset in one "
                           "walk; hybrid partitions column-first for tall "
                           "datasets (bit-identical output); auto picks "
                           "by row count")
    mine.add_argument("--hybrid", dest="strategy", action="store_const",
                      const="hybrid",
                      help="shorthand for --strategy hybrid")
    mine.add_argument("--spill-dir", default=None,
                      help="hybrid only: existing directory for partition "
                           "spill files (a unique per-run subdirectory is "
                           "created and removed on exit)")
    mine.add_argument("--fault", metavar="PLAN", default=None,
                      help="inject worker faults for recovery testing, "
                           "e.g. 'kill@0.0' (mode@shard.attempt[:seconds]; "
                           "modes kill/raise/hang/delay; requires --jobs "
                           "!= 1)")
    mine.set_defaults(handler=_cmd_mine)

    classify = commands.add_parser(
        "classify", help="train on one TSV, evaluate on another"
    )
    classify.add_argument("classifier",
                          choices=(*_RULE_CLASSIFIERS, *_NUMERIC_CLASSIFIERS))
    classify.add_argument("--train", required=True)
    classify.add_argument("--test", required=True)
    classify.add_argument("--k", type=int, default=10)
    classify.add_argument("--nl", type=int, default=20)
    classify.add_argument("--kernel", choices=("linear", "poly"),
                          default="linear")
    classify.add_argument("--jobs", type=_jobs_arg, default=1,
                          help="worker processes for rcbt rule mining "
                               "(0 = all cores, 'auto' = planner decides)")
    classify.add_argument("--save", help="write the trained model (rcbt/cba) "
                                          "and its pipeline file here")
    classify.set_defaults(handler=_cmd_classify)

    predict = commands.add_parser(
        "predict", help="apply a saved rule classifier to new samples"
    )
    predict.add_argument("--model", required=True,
                         help="model JSON from classify --save")
    predict.add_argument("--pipeline", required=True,
                         help="pipeline JSON written next to the model")
    predict.add_argument("--data", required=True, help="samples TSV")
    predict.set_defaults(handler=_cmd_predict)

    serve = commands.add_parser(
        "serve", help="run the rule-mining & classification HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="0 picks an ephemeral port")
    serve.add_argument("--models-dir",
                       help="persist registered models here and warm "
                            "start from it")
    serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                       help="byte bound of the mining result cache")
    serve.add_argument("--workers", type=int, default=2,
                       help="mining job worker threads")
    serve.add_argument("--mine-jobs", type=_jobs_arg, default=1,
                       help="worker processes each mining job may use "
                            "(cap for per-request n_jobs; 'auto' = "
                            "planner decides per workload)")
    serve.add_argument("--store", default=None, metavar="DB",
                       help="durable SQLite job store: queued/running "
                            "mines survive restarts and identical "
                            "re-mines are answered from disk")
    serve.add_argument("--grace-seconds", type=float, default=5.0,
                       help="drain window for in-flight requests on "
                            "Ctrl-C/SIGTERM")
    serve.add_argument("--legacy", action="store_true",
                       help="run the PR 1 threaded server instead of the "
                            "batch-coalescing asyncio front end")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request")
    serve.set_defaults(handler=_cmd_serve)

    bench = commands.add_parser(
        "bench", help="time serial vs parallel mining; write BENCH_core.json"
    )
    bench.add_argument("--output", default="BENCH_core.json",
                       help="where to write the JSON report")
    bench.add_argument("--jobs", type=int, nargs="+", default=[2, 4],
                       help="parallel worker counts to measure")
    bench.add_argument("--scale", type=float, default=0.25,
                       help="gene-count scale of the synthetic workloads")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repetitions per configuration (best "
                            "wall-clock is reported)")
    bench.add_argument("--quick", action="store_true",
                       help="one small workload, one repeat — the CI "
                            "smoke profile")
    bench.add_argument("--include-quick", action="store_true",
                       help="append the quick workloads to a full run so "
                            "the baseline covers CI's --quick profile")
    bench.add_argument("--only", metavar="SUBSTRING",
                       help="run only workloads whose name contains this "
                            "substring (applied to the active profile)")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="diff this run against a committed report; "
                            "exit non-zero if any serial time regressed "
                            "more than 2x")
    bench.set_defaults(handler=_cmd_bench)

    loadtest = commands.add_parser(
        "loadtest", help="benchmark the HTTP front ends; write "
                         "BENCH_service.json"
    )
    loadtest.add_argument("--output", default="BENCH_service.json",
                          help="where to write the JSON report")
    loadtest.add_argument("--servers", nargs="+", default=["legacy", "async"],
                          choices=("legacy", "async"),
                          help="front ends to drive")
    loadtest.add_argument("--quick", action="store_true",
                          help="smaller request counts — the CI smoke "
                               "profile")
    loadtest.add_argument("--compare", metavar="BASELINE",
                          help="diff this run against a committed report; "
                               "exit non-zero if any RPS regressed more "
                               "than 2x (plus an absolute floor) or any "
                               "requests errored")
    loadtest.add_argument("--verbose", action="store_true",
                          help="print one line per scenario/server run")
    loadtest.set_defaults(handler=_cmd_loadtest)

    audit = commands.add_parser(
        "audit", help="differential fuzz & invariant audit of the miners "
                      "and serving layer"
    )
    audit.add_argument("--seed", type=int, default=0,
                       help="master seed; (seed, case index) fully "
                            "determines a case")
    audit.add_argument("--cases", type=int, default=25,
                       help="number of fuzz cases to run")
    audit.add_argument("--only-case", type=int, default=None,
                       help="re-run exactly one case index (the repro "
                            "path printed by failure reports)")
    audit.add_argument("--quick", action="store_true",
                       help="bounded CI profile: smaller flag matrix, "
                            "no classifier round-trips")
    audit.add_argument("--parallel-jobs", type=int, default=2,
                       help="worker processes for the serial-vs-parallel "
                            "check")
    audit.add_argument("--no-parallel", action="store_true",
                       help="skip the serial-vs-parallel check entirely")
    audit.add_argument("--verbose", action="store_true",
                       help="print one line per case")
    audit.set_defaults(handler=_cmd_audit)

    experiments = commands.add_parser(
        "experiments", help="run a table/figure driver"
    )
    experiments.add_argument(
        "experiment",
        choices=("table1", "table2", "fig6", "fig7", "fig8",
                 "ablations", "report"),
    )
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(handler=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "handler", None) is None:
        # No subcommand: print usage and fail like argparse does for bad
        # arguments, instead of raising AttributeError.
        parser.print_usage(sys.stderr)
        return 2
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
