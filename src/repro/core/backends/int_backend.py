"""The default backend: batch folds over plain Python ``int`` bitsets.

This is the implementation the package has always used, packaged behind
the backend contract: arbitrary-precision integers give ``&``/``|`` and
``bit_count`` at C speed with no dependencies, so the batch methods are
tight loops binding the hot operations once per call instead of once
per item (the per-node shape the enumeration kernels rely on).
"""

from __future__ import annotations

from typing import Sequence

from .base import BitsetBackend, NodeKernel

__all__ = ["IntBackend"]


class IntBackend(BitsetBackend):
    name = "int"

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        # The ints *are* the native representation; a tuple pins the
        # table against accidental mutation by callers.
        return tuple(bitsets)

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        if not ids:
            raise ValueError("intersect_many needs at least one id")
        iterator = iter(ids)
        result = handle[next(iterator)]
        for index in iterator:
            result &= handle[index]
        return result

    def union_many(self, handle, ids: Sequence[int]) -> int:
        result = 0
        for index in ids:
            result |= handle[index]
        return result

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        if not ids:
            raise ValueError("intersect_union_many needs at least one id")
        iterator = iter(ids)
        first = handle[next(iterator)]
        intersection = union = first
        for index in iterator:
            rows = handle[index]
            intersection &= rows
            union |= rows
        return intersection, union

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        return [bits.bit_count() for bits in bitsets]

    def intersect_union_counts(
        self, handle, ids: Sequence[int], mask
    ) -> tuple[int, int, int, int]:
        if not ids:
            raise ValueError("intersect_union_counts needs at least one id")
        iterator = iter(ids)
        intersection = union = handle[next(iterator)]
        for index in iterator:
            rows = handle[index]
            intersection &= rows
            union |= rows
        return (
            intersection, union,
            (intersection & mask).bit_count(), intersection.bit_count(),
        )

    def intersect_counts(
        self, handle, ids: Sequence[int], mask
    ) -> tuple[int, int, int]:
        if not ids:
            raise ValueError("intersect_counts needs at least one id")
        iterator = iter(ids)
        intersection = handle[next(iterator)]
        for index in iterator:
            intersection &= handle[index]
        return (
            intersection,
            (intersection & mask).bit_count(), intersection.bit_count(),
        )

    def node_kernel(self, handle, mask) -> NodeKernel:
        # Closures over the tuple handle and the int mask: no per-call
        # attribute lookups on the hot path.
        def intersect_union_counts(ids):
            iterator = iter(ids)
            intersection = union = handle[next(iterator)]
            for index in iterator:
                rows = handle[index]
                intersection &= rows
                union |= rows
            return (
                intersection, union,
                (intersection & mask).bit_count(), intersection.bit_count(),
            )

        def intersect_counts(ids):
            iterator = iter(ids)
            intersection = handle[next(iterator)]
            for index in iterator:
                intersection &= handle[index]
            return (
                intersection,
                (intersection & mask).bit_count(), intersection.bit_count(),
            )

        def masked_counts(bits):
            return (bits & mask).bit_count(), bits.bit_count()

        return NodeKernel(intersect_union_counts, intersect_counts, masked_counts)
