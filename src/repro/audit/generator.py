"""Seeded generation of randomized audit cases.

Every case is a small discretized dataset plus one mining request
(consequent, minsup, k), derived *only* from ``(master seed, case
index)`` so any failure anywhere in the audit pipeline is reproducible
from two integers.  The generator deliberately over-samples the shapes
that historically break miners and serving layers:

* varying row/item counts, density and class skew;
* duplicate rows (closure collisions, tie-heavy top-k lists);
* degenerate datasets — empty rows, a single class, all-identical rows;
* tall datasets (> 64 rows, so bitsets span multiple machine words and
  every backend's multi-word paths run) built from a handful of
  distinct row patterns, which keeps the brute-force oracle exact: the
  oracle enumerates *distinct* patterns, and duplicates add rows
  without adding itemsets;
* minsup values from 1 up to the whole consequent class.

Datasets stay at or below :data:`MAX_ROWS` rows (:data:`MAX_TALL_ROWS`
for the ``tall`` shape, whose distinct-pattern count stays tiny) so the
brute-force oracle of :mod:`repro.baselines.naive_topk` remains
feasible on every generated case.  Only the stdlib ``random`` module is
used, so the stream is stable across numpy versions and platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..data.dataset import DiscretizedDataset, Item

__all__ = [
    "AuditCase",
    "MAX_ROWS",
    "MAX_TALL_ROWS",
    "SHAPES",
    "generate_case",
    "generate_cases",
]

# The naive oracle enumerates all 2^n subsets of *distinct* row
# patterns; 12 rows keeps one oracle run in the low milliseconds while
# still covering every shape.
MAX_ROWS = 12

# Row range of the "tall" shape: above 64 rows so row bitsets span
# multiple 64-bit words (the regime the vectorized backends exist for,
# and where single-word shortcuts would hide bugs), but built from at
# most 8 distinct patterns so the oracle stays exact.
MIN_TALL_ROWS = 65
MAX_TALL_ROWS = 96

# Shape rotation: index i draws SHAPES[i % len(SHAPES)], so any case
# count >= len(SHAPES) exercises every degenerate family at least once.
# The backend rotation in repro.audit.oracle rides the same index, so
# tall cases cycle through the non-default backends too.
SHAPES = (
    "uniform",
    "skewed",
    "duplicates",
    "dense",
    "sparse",
    "empty-rows",
    "single-class",
    "identical-rows",
    "tall",
)


@dataclass(frozen=True)
class AuditCase:
    """One generated dataset plus the mining request to audit it with."""

    index: int
    seed: int
    shape: str
    dataset: DiscretizedDataset
    consequent: int
    minsup: int
    k: int

    def describe(self) -> str:
        return (
            f"case {self.index} [{self.shape}] seed={self.seed}: "
            f"{self.dataset.n_rows} rows x {self.dataset.n_items} items, "
            f"{self.dataset.n_classes} classes, consequent={self.consequent}, "
            f"minsup={self.minsup}, k={self.k}"
        )

    def repro_command(self) -> str:
        """Copy-pastable command reproducing exactly this case."""
        return (
            f"PYTHONPATH=src python -m repro.cli audit "
            f"--seed {self.seed} --only-case {self.index}"
        )


def _items(n_items: int) -> list[Item]:
    return [
        Item(index, index, f"g{index}", float("-inf"), float("inf"))
        for index in range(n_items)
    ]


def _random_row(rng: random.Random, n_items: int, density: float) -> frozenset[int]:
    row = frozenset(i for i in range(n_items) if rng.random() < density)
    if not row:
        row = frozenset({rng.randrange(n_items)})
    return row


def _labels(rng: random.Random, n_rows: int, n_classes: int, skew: float) -> list[int]:
    """Labels with class 0 weighted by ``skew``; every class represented."""
    labels = [
        0 if rng.random() < skew else rng.randrange(1, n_classes)
        for _ in range(n_rows)
    ]
    # Reserve one distinct position per class so no class is ever empty
    # (a dataset whose max label exceeds an observed class would also
    # fail DiscretizedDataset validation).
    for class_id, position in zip(
        range(n_classes), rng.sample(range(n_rows), min(n_classes, n_rows))
    ):
        labels[position] = class_id
    return labels


def generate_case(seed: int, index: int) -> AuditCase:
    """Deterministically build audit case ``index`` of master ``seed``."""
    rng = random.Random(f"repro-audit:{seed}:{index}")
    shape = SHAPES[index % len(SHAPES)]

    n_rows = rng.randint(4, MAX_ROWS)
    n_items = rng.randint(3, 10)
    n_classes = rng.choice((2, 2, 2, 3))
    density = rng.uniform(0.25, 0.7)
    skew = 0.5

    if shape == "skewed":
        skew = rng.uniform(0.75, 0.92)
    elif shape == "dense":
        density = rng.uniform(0.75, 0.95)
    elif shape == "sparse":
        density = rng.uniform(0.08, 0.2)
        n_items = rng.randint(6, 12)
    elif shape == "single-class":
        n_classes = 1
    elif shape == "tall":
        n_rows = rng.randint(MIN_TALL_ROWS, MAX_TALL_ROWS)

    if shape == "tall":
        # A handful of distinct patterns duplicated across many rows:
        # the multi-word bitset paths run for real, while the oracle's
        # distinct-pattern enumeration stays exact and fast.
        base = [
            _random_row(rng, n_items, density)
            for _ in range(rng.randint(4, 8))
        ]
        rows = [base[rng.randrange(len(base))] for _ in range(n_rows)]
    else:
        rows = [_random_row(rng, n_items, density) for _ in range(n_rows)]
    if shape == "duplicates":
        # Overwrite roughly half the rows with copies of earlier rows.
        for _ in range(n_rows // 2):
            src = rng.randrange(n_rows)
            dst = rng.randrange(n_rows)
            rows[dst] = rows[src]
    elif shape == "empty-rows":
        for _ in range(max(1, n_rows // 4)):
            rows[rng.randrange(n_rows)] = frozenset()
    elif shape == "identical-rows":
        rows = [rows[0]] * n_rows

    if n_classes == 1:
        labels = [0] * n_rows
    else:
        labels = _labels(rng, n_rows, n_classes, skew)

    dataset = DiscretizedDataset(
        rows, labels, _items(n_items), name=f"audit-{seed}-{index}"
    )
    consequent = rng.randrange(dataset.n_classes)
    class_size = dataset.class_counts()[consequent]
    minsup = rng.randint(1, max(1, class_size))
    k = rng.randint(1, 3)
    return AuditCase(
        index=index,
        seed=seed,
        shape=shape,
        dataset=dataset,
        consequent=consequent,
        minsup=minsup,
        k=k,
    )


def generate_cases(seed: int, n_cases: int) -> list[AuditCase]:
    """The first ``n_cases`` audit cases of ``seed``, in index order."""
    if n_cases < 1:
        raise ValueError(f"n_cases must be >= 1, got {n_cases}")
    return [generate_case(seed, index) for index in range(n_cases)]
