"""The mining view: a dataset prepared for row enumeration.

``MineTopkRGS`` (Figure 3, steps 1-3) starts by removing infrequent items,
splitting rows into the consequent class ``D_p`` and the rest ``D_n``, and
imposing the *class dominant order* (Definition 3.1): all class-``C`` rows
before all others, each class sorted by ascending number of frequent items
(Section 4.1.2's ordering refinement).  :class:`MiningView` performs that
preparation once and exposes the result in *position space* — rows are
renumbered 0..n-1 in enumeration order so that row bitsets, class masks and
"rows after r" checks are all cheap integer operations.

Every enumeration engine (bitset, projected-table, prefix-tree) and every
policy (top-k, FARMER) works against this one view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .bitset import mask_below, popcount

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["MiningView"]


class MiningView:
    """Row-enumeration view of a dataset for one consequent class.

    Attributes:
        dataset: the underlying discretized dataset.
        consequent: class id the mined rule groups conclude.
        minsup: absolute minimum support (rows of the consequent class).
        n_rows: number of rows (same as the dataset).
        n_positive: number of consequent-class rows; they occupy positions
            ``0..n_positive-1`` in the class dominant order.
        order: position -> original row index.
        position_of: original row index -> position.
        frequent_items: item ids whose consequent-class support reaches
            ``minsup``, in ascending id order.
        item_rows: item id -> bitset of positions containing the item
            (restricted to frequent items; infrequent items map to 0).
        row_items: position -> frozenset of frequent item ids.
        positive_mask: bitset of consequent-class positions.
    """

    def __init__(
        self, dataset: "DiscretizedDataset", consequent: int, minsup: int
    ) -> None:
        if minsup < 1:
            raise ValueError(f"minsup must be >= 1, got {minsup}")
        if not 0 <= consequent < max(dataset.n_classes, 1):
            raise ValueError(
                f"consequent {consequent} out of range for "
                f"{dataset.n_classes} classes"
            )
        self.dataset = dataset
        self.consequent = consequent
        self.minsup = minsup

        # Step 1: frequent items.  A rule group's support counts only
        # consequent-class rows, so items appearing in fewer than minsup
        # such rows cannot occur in any antecedent with enough support.
        class_rows = [
            row for row, label in zip(dataset.rows, dataset.labels)
            if label == consequent
        ]
        counts: dict[int, int] = {}
        for row in class_rows:
            for item in row:
                counts[item] = counts.get(item, 0) + 1
        self.frequent_items: list[int] = sorted(
            item for item, count in counts.items() if count >= minsup
        )
        frequent = frozenset(self.frequent_items)

        # Class dominant order with ascending row length within each class.
        def _length(row_index: int) -> int:
            return len(dataset.rows[row_index] & frequent)

        positive = sorted(dataset.rows_of_class(consequent), key=_length)
        negative = sorted(
            (
                row
                for row in range(dataset.n_rows)
                if dataset.labels[row] != consequent
            ),
            key=_length,
        )
        self.order: list[int] = positive + negative
        self.position_of: dict[int, int] = {
            row: pos for pos, row in enumerate(self.order)
        }
        self.n_rows = dataset.n_rows
        self.n_positive = len(positive)
        self.positive_mask = mask_below(self.n_positive)

        self.row_items: list[frozenset[int]] = [
            dataset.rows[row] & frequent for row in self.order
        ]
        max_item = (max(frequent) + 1) if frequent else 0
        self.item_rows: list[int] = [0] * max_item
        for position, items in enumerate(self.row_items):
            mark = 1 << position
            for item in items:
                self.item_rows[item] |= mark

    def positions_to_rows(self, position_bits: int) -> int:
        """Translate a position-space bitset to an original-row bitset."""
        result = 0
        bits = position_bits
        while bits:
            low = bits & -bits
            position = low.bit_length() - 1
            bits ^= low
            result |= 1 << self.order[position]
        return result

    def closure_rows(self, items: Sequence[int]) -> Optional[int]:
        """``R(itemset)`` in position space (None for the empty itemset)."""
        result: Optional[int] = None
        for item in items:
            rows = self.item_rows[item]
            result = rows if result is None else result & rows
        return result

    def closed_items(self, position_bits: int) -> frozenset[int]:
        """``I(position set)`` over the frequent items."""
        common: Optional[frozenset[int]] = None
        bits = position_bits
        while bits:
            low = bits & -bits
            position = low.bit_length() - 1
            bits ^= low
            items = self.row_items[position]
            common = items if common is None else common & items
            if not common:
                return frozenset()
        return common if common is not None else frozenset()

    def positive_count(self, position_bits: int) -> int:
        """Number of consequent-class rows in a position bitset."""
        return popcount(position_bits & self.positive_mask)

    def single_item_groups(self) -> dict[int, list[int]]:
        """Distinct single-item support sets, for the initialization step.

        Returns a mapping from position-space row bitset to the list of
        frequent items having exactly that support set.  Items sharing a
        support set belong to the same rule group — the paper's caveat
        that two single items initializing one row's list must not be
        lower bounds of the same upper bound is honoured by keying on the
        support set.
        """
        groups: dict[int, list[int]] = {}
        for item in self.frequent_items:
            groups.setdefault(self.item_rows[item], []).append(item)
        return groups
