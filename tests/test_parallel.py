"""The process-pool backend must reproduce serial mining bit for bit.

The sharding invariant (DESIGN.md §7): first-level subtrees partition
the enumeration tree, per-shard thresholds seeded from the single-item
initialization are conservative, and a merge in ascending shard order
restores the exact serial result — rule groups, per-row list order, and
(for static-threshold configurations) the stats counters too.
"""

from __future__ import annotations

import threading

import pytest

from repro.baselines.farmer import mine_farmer
from repro.classifiers import RCBTClassifier
from repro.core.enumeration import ENGINES, POLL_STRIDE
from repro.core.topk_miner import mine_topk
from repro.parallel import (
    MineRequest,
    merge_stats,
    mine_farmer_parallel,
    mine_topk_parallel,
    mine_topk_sharded,
    parallel_map,
    plan_shards,
    resolve_n_jobs,
    results_equal,
)


def _farmer_groups(result):
    return [
        (g.antecedent, g.consequent, g.row_set, g.support, g.confidence)
        for g in result.groups
    ]


class TestPlanShards:
    @pytest.mark.parametrize("n_rows", (0, 1, 3, 10, 38, 65))
    @pytest.mark.parametrize("n_jobs", (1, 2, 4, 7))
    def test_partition(self, n_rows, n_jobs):
        """Shards are disjoint, ascending, and cover every first row."""
        masks = plan_shards(n_rows, n_jobs)
        union = 0
        previous_low = -1
        for mask in masks:
            assert mask > 0
            assert union & mask == 0
            low = (mask & -mask).bit_length() - 1
            assert low > previous_low
            previous_low = low
            union |= mask
        assert union == (1 << n_rows) - 1

    def test_serial_is_one_shard(self):
        assert plan_shards(12, 1) == [(1 << 12) - 1]

    def test_big_roots_are_singletons(self):
        masks = plan_shards(64, 4)
        singles = [mask for mask in masks if mask.bit_count() == 1]
        assert len(singles) == 8  # 2 * n_jobs
        assert singles == [1 << position for position in range(8)]


class TestResolveNJobs:
    def test_values(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(None) == cores
        assert resolve_n_jobs(0) == cores
        assert resolve_n_jobs(-1) == cores
        assert resolve_n_jobs(-10_000) == 1


class TestTopkDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("n_jobs", (2, 3))
    def test_figure1_all_engines(self, figure1, engine, n_jobs):
        for k in (1, 3):
            serial = mine_topk(figure1, 1, 2, k=k, engine=engine)
            parallel = mine_topk_parallel(
                figure1, 1, 2, k=k, engine=engine, n_jobs=n_jobs
            )
            assert results_equal(serial, parallel)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_small_random_both_classes(self, small_random, engine):
        for consequent in (0, 1):
            serial = mine_topk(small_random, consequent, 2, k=4, engine=engine)
            parallel = mine_topk(
                small_random, consequent, 2, k=4, engine=engine, n_jobs=3
            )
            assert results_equal(serial, parallel)

    @pytest.mark.parametrize(
        "flags",
        (
            {"initialize_single_items": False},
            {"dynamic_minsup": False},
            {"use_topk_pruning": False},
            {
                "initialize_single_items": False,
                "dynamic_minsup": False,
                "use_topk_pruning": False,
            },
        ),
    )
    def test_optimization_flags(self, small_random, flags):
        serial = mine_topk(small_random, 0, 2, k=3, **flags)
        parallel = mine_topk(small_random, 0, 2, k=3, n_jobs=4, **flags)
        assert results_equal(serial, parallel)

    def test_benchmark_workload(self, small_benchmark):
        train = small_benchmark.train_items
        serial = mine_topk(train, 1, 25, k=10, engine="bitset")
        parallel = mine_topk(train, 1, 25, k=10, engine="bitset", n_jobs=4)
        assert results_equal(serial, parallel)
        # Group-level totals survive the merge too.
        assert [g.row_set for g in serial.unique_groups()] == [
            g.row_set for g in parallel.unique_groups()
        ]

    def test_static_config_stats_identical(self, small_random):
        """With static thresholds, shard node counts sum to the serial count.

        Dynamic thresholds make per-shard pruning weaker than serial
        pruning (each shard only sees its own emissions), so node counts
        are only comparable when both dynamic mechanisms are off.
        """
        kwargs = dict(k=3, use_topk_pruning=False, dynamic_minsup=False)
        serial = mine_topk(small_random, 0, 2, **kwargs)
        parallel = mine_topk(small_random, 0, 2, n_jobs=4, **kwargs)
        assert serial.stats.nodes_visited == parallel.stats.nodes_visited
        assert serial.stats.groups_emitted == parallel.stats.groups_emitted
        assert serial.stats.loose_pruned == parallel.stats.loose_pruned
        assert serial.stats.tight_pruned == parallel.stats.tight_pruned
        assert serial.stats.backward_pruned == parallel.stats.backward_pruned


class TestFarmerDeterminism:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_groups_and_stats_identical(self, small_random, engine):
        serial = mine_farmer(small_random, 1, 2, engine=engine)
        parallel = mine_farmer(small_random, 1, 2, engine=engine, n_jobs=4)
        assert _farmer_groups(serial) == _farmer_groups(parallel)
        # FARMER's thresholds are static, so even the node counters are
        # exactly the serial ones after summing over shards.
        assert serial.stats.nodes_visited == parallel.stats.nodes_visited
        assert serial.stats.groups_emitted == parallel.stats.groups_emitted

    def test_minconf(self, small_random):
        serial = mine_farmer(small_random, 1, 2, minconf=0.8)
        parallel = mine_farmer(small_random, 1, 2, minconf=0.8, n_jobs=3)
        assert _farmer_groups(serial) == _farmer_groups(parallel)

    def test_max_groups_truncates_at_serial_point(self, small_random):
        serial = mine_farmer(small_random, 1, 2, max_groups=4)
        parallel = mine_farmer(small_random, 1, 2, max_groups=4, n_jobs=3)
        assert _farmer_groups(serial) == _farmer_groups(parallel)
        assert not serial.stats.completed
        assert not parallel.stats.completed


class TestPartialResults:
    def test_preset_cancel_returns_partial(self, small_benchmark):
        token = threading.Event()
        token.set()
        result = mine_topk(
            small_benchmark.train_items, 1, 25, k=5, n_jobs=2, cancel=token
        )
        assert not result.stats.completed
        # The cooperative stop lands within POLL_STRIDE nodes per shard.
        assert result.stats.nodes_visited <= POLL_STRIDE * len(
            plan_shards(small_benchmark.train_items.n_rows, 2)
        )

    def test_node_budget_is_per_shard(self, small_benchmark):
        result = mine_topk(
            small_benchmark.train_items, 1, 25, k=5, n_jobs=2, node_budget=5
        )
        assert not result.stats.completed
        # Partial lists are still well-formed per-row lists.
        assert all(
            len(groups) <= 5 for groups in result.per_row.values()
        )

    def test_cancel_mid_run(self, small_benchmark):
        token = threading.Event()
        timer = threading.Timer(0.05, token.set)
        timer.start()
        try:
            result = mine_topk(
                small_benchmark.train_items, 1, 25, k=10, n_jobs=2,
                cancel=token,
            )
        finally:
            timer.cancel()
        # Either the mine beat the timer (completed) or it was stopped
        # cooperatively and returned a partial result; both are valid.
        assert isinstance(result.stats.completed, bool)


class TestShardedRequests:
    def test_multiple_requests_match_serial(self, small_random):
        requests = [
            MineRequest(consequent=0, minsup=2, k=3),
            MineRequest(consequent=1, minsup=2, k=2),
        ]
        sharded = mine_topk_sharded(small_random, requests, n_jobs=3)
        for request, result in zip(requests, sharded):
            serial = mine_topk(
                small_random, request.consequent, request.minsup, k=request.k
            )
            assert results_equal(serial, result)

    def test_n_jobs_one_runs_inline(self, small_random):
        requests = [MineRequest(consequent=0, minsup=2, k=2)]
        (result,) = mine_topk_sharded(small_random, requests, n_jobs=1)
        serial = mine_topk(small_random, 0, 2, k=2)
        assert results_equal(serial, result)


class TestClassifierParallel:
    def test_rcbt_fit_identical(self, small_benchmark):
        train = small_benchmark.train_items
        test = small_benchmark.test_items
        serial = RCBTClassifier(k=3, nl=3).fit(train)
        parallel = RCBTClassifier(k=3, nl=3, n_jobs=2).fit(train)
        for class_id in serial.topk_results_:
            assert results_equal(
                serial.topk_results_[class_id],
                parallel.topk_results_[class_id],
            )
        assert serial.predict(test) == parallel.predict(test)
        assert serial.n_levels_ == parallel.n_levels_


class TestServiceParallelMining:
    def test_mine_job_with_n_jobs_matches_serial(self, small_random):
        """A service configured with worker processes serves the same
        payload as a serial one, from the same cache key."""
        from repro.data.loaders import discretized_to_payload
        from repro.service.server import RuleService

        body = {
            "items": discretized_to_payload(small_random),
            "consequent": 1,
            "k": 2,
            "minsup": 2,
            "n_jobs": 8,  # capped at the service's mine_jobs
        }
        serial_service = RuleService(mining_workers=1, mine_jobs=1)
        parallel_service = RuleService(mining_workers=1, mine_jobs=2)
        try:
            payloads = []
            for service in (serial_service, parallel_service):
                submitted = service.submit_mine(dict(body))
                job = service.jobs.get(submitted["job_id"])
                assert job.wait(timeout=60.0)
                assert job.status == "done"
                payloads.append(job.result)
                # Bit-identical output means the cache key is shared:
                # a re-submit is a hit regardless of n_jobs.
                cached = service.submit_mine(dict(body))
                assert cached["cached"] is True
                assert cached["result"] == job.result
            # The mined output is bit-identical; only the run counters
            # (stats) differ — shard node counts are summed and dynamic
            # pruning is weaker per shard (DESIGN.md §7).
            mined = [
                {key: value for key, value in payload.items() if key != "stats"}
                for payload in payloads
            ]
            assert mined[0] == mined[1]
        finally:
            serial_service.shutdown()
            parallel_service.shutdown()

    def test_bad_n_jobs_rejected(self, small_random):
        from repro.data.loaders import discretized_to_payload
        from repro.service.server import RuleService, ServiceError

        service = RuleService(mining_workers=1)
        try:
            with pytest.raises(ServiceError):
                service.submit_mine({
                    "items": discretized_to_payload(small_random),
                    "consequent": 1,
                    "minsup": 2,
                    "n_jobs": 0,
                })
        finally:
            service.shutdown()


class TestHelpers:
    def test_merge_stats(self):
        from repro.core.enumeration import MinerStats

        merged = merge_stats(
            [
                MinerStats(nodes_visited=5, groups_emitted=2,
                           elapsed_seconds=0.5),
                MinerStats(nodes_visited=7, loose_pruned=1,
                           elapsed_seconds=0.2, completed=False),
            ],
            engine="tree",
        )
        assert merged.nodes_visited == 12
        assert merged.groups_emitted == 2
        assert merged.loose_pruned == 1
        assert merged.elapsed_seconds == 0.5
        assert merged.engine == "tree"
        assert not merged.completed

    def test_parallel_map_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], n_jobs=2) == [9, 1, 4]
        assert parallel_map(_square, [], n_jobs=2) == []
        assert parallel_map(_square, [5], n_jobs=4) == [25]

    def test_results_equal_detects_differences(self, figure1):
        a = mine_topk(figure1, 1, 2, k=2)
        b = mine_topk(figure1, 1, 2, k=1)
        assert results_equal(a, a)
        assert not results_equal(a, b)


def _square(value: int) -> int:
    # Module level so parallel_map can pickle it into workers.
    return value * value
