"""Packed-word backend: ``array("Q")`` supports, table-driven popcount.

Supports are packed little-endian into 64-bit words so the batch folds
walk fixed-width machine words instead of arbitrary-precision limbs,
and population counts go through a precomputed 16-bit lookup table (the
classic table-driven popcount) over the packed bytes.  Pure stdlib.

Encoding is done once per support table (per ``SupportIndex``); fold
results are converted back to plain ``int`` bitsets at the call
boundary, which keeps the backend bit-identical to the default by
construction.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from .base import BitsetBackend

__all__ = ["PackedBackend"]

# Population counts of every 16-bit word, built once at import.  The
# table costs 64 KiB of small-int references and turns popcount into
# four lookups per 64-bit word.
_POPCOUNT16 = tuple(value.bit_count() for value in range(1 << 16))


def _pack(bits: int, n_words: int) -> array:
    """Little-endian 64-bit words of ``bits``, padded to ``n_words``."""
    return array("Q", bits.to_bytes(n_words * 8, "little"))


class PackedBackend(BitsetBackend):
    name = "packed"

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        n_words = max(1, (n_bits + 63) // 64)
        return [_pack(bits, n_words) for bits in bitsets], n_words

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        if not ids:
            raise ValueError("intersect_many needs at least one id")
        words, _n_words = handle
        accumulator = array("Q", words[ids[0]])
        for index in ids[1:]:
            row = words[index]
            for position in range(len(accumulator)):
                accumulator[position] &= row[position]
        return int.from_bytes(accumulator.tobytes(), "little")

    def union_many(self, handle, ids: Sequence[int]) -> int:
        words, n_words = handle
        accumulator = array("Q", bytes(n_words * 8))
        for index in ids:
            row = words[index]
            for position in range(n_words):
                accumulator[position] |= row[position]
        return int.from_bytes(accumulator.tobytes(), "little")

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        if not ids:
            raise ValueError("intersect_union_many needs at least one id")
        words, _n_words = handle
        first = words[ids[0]]
        intersection = array("Q", first)
        union = array("Q", first)
        for index in ids[1:]:
            row = words[index]
            for position in range(len(row)):
                word = row[position]
                intersection[position] &= word
                union[position] |= word
        return (
            int.from_bytes(intersection.tobytes(), "little"),
            int.from_bytes(union.tobytes(), "little"),
        )

    def popcount(self, bits: int) -> int:
        if bits < 0:
            raise ValueError(f"bitsets are non-negative, got {bits}")
        table = _POPCOUNT16
        total = 0
        while bits:
            total += table[bits & 0xFFFF]
            bits >>= 16
        return total

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        popcount = self.popcount
        return [popcount(bits) for bits in bitsets]
