"""Baseline miners: FARMER, CHARM, CLOSET+ and brute-force oracles."""

from .charm import CharmResult, mine_charm
from .closetplus import ClosetResult, mine_closetplus
from .farmer import FarmerPolicy, FarmerResult, mine_farmer
from .naive_topk import enumerate_closed_groups, naive_farmer, naive_topk

__all__ = [
    "CharmResult",
    "ClosetResult",
    "FarmerPolicy",
    "FarmerResult",
    "enumerate_closed_groups",
    "mine_charm",
    "mine_closetplus",
    "mine_farmer",
    "naive_farmer",
    "naive_topk",
]
