"""Tests for the prefix-tree transposed-table representation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefix_tree import PrefixTree, _iter_terminal_paths


def build(tuples):
    return PrefixTree.from_items(tuples)


class TestConstruction:
    def test_empty_tree(self):
        tree = PrefixTree()
        assert tree.n_items == 0
        assert tree.rows_present() == []
        assert tree.all_items() == []

    def test_single_tuple(self):
        tree = build([(7, [1, 2, 3])])
        assert tree.n_items == 1
        assert tree.rows_present() == [1, 2, 3]
        assert tree.row_frequencies() == {1: 1, 2: 1, 3: 1}

    def test_shared_prefix_counts(self):
        tree = build([(0, [1, 2, 3]), (1, [1, 2, 4])])
        freq = tree.row_frequencies()
        assert freq == {1: 2, 2: 2, 3: 1, 4: 1}
        # The shared prefix 1 -> 2 must be a single path.
        assert len(tree.header[1]) == 1
        assert len(tree.header[2]) == 1

    def test_exhausted_items(self):
        tree = build([(0, []), (1, [2])])
        assert tree.n_items == 2
        assert tree.exhausted == [0]
        assert set(tree.all_items()) == {0, 1}

    def test_all_items_after_inserts(self):
        tree = build([(0, [1]), (1, [1, 2]), (2, [3])])
        assert sorted(tree.all_items()) == [0, 1, 2]


class TestProjection:
    def test_project_keeps_containing_items(self):
        tree = build([(0, [1, 2, 3]), (1, [2, 3]), (2, [1, 4])])
        projected = tree.project(2)
        assert set(projected.all_items()) == {0, 1}
        assert projected.row_frequencies() == {3: 2}

    def test_project_terminal_item_becomes_exhausted(self):
        tree = build([(0, [1, 2]), (1, [1, 2, 3])])
        projected = tree.project(2)
        assert projected.exhausted == [0]
        assert set(projected.all_items()) == {0, 1}
        assert projected.row_frequencies() == {3: 1}

    def test_project_merges_divergent_sources(self):
        # Item 0 reaches row 5 via [1, 5]; item 1 via [2, 5]; projecting
        # on 5 leaves both exhausted.  Projecting on 1 or 2 keeps one.
        tree = build([(0, [1, 5]), (1, [2, 5])])
        on_five = tree.project(5)
        assert sorted(on_five.exhausted) == [0, 1]
        on_one = tree.project(1)
        assert set(on_one.all_items()) == {0}
        assert on_one.row_frequencies() == {5: 1}

    def test_project_missing_row_is_empty(self):
        tree = build([(0, [1, 2])])
        projected = tree.project(9)
        assert projected.n_items == 0

    def test_chained_projection(self):
        tree = build([(0, [1, 2, 3]), (1, [1, 3]), (2, [2, 3])])
        step1 = tree.project(1)
        assert set(step1.all_items()) == {0, 1}
        step2 = step1.project(2)
        assert set(step2.all_items()) == {0}
        assert step2.row_frequencies() == {3: 1}

    def test_projection_counts_merge(self):
        # Two r-nodes on different paths merge their subtrees.
        tree = build([(0, [1, 3, 4]), (1, [2, 3, 4])])
        projected = tree.project(3)
        assert projected.row_frequencies() == {4: 2}
        assert len(projected.header[4]) == 1  # merged into one node


class TestTerminalPaths:
    def test_paths_enumerate_suffixes(self):
        tree = build([(0, [1, 2, 3]), (1, [1, 2])])
        node = tree.header[1][0]
        paths = dict(_iter_terminal_paths(node))
        assert paths == {0: (2, 3), 1: (2,)}


rows_strategy = st.lists(
    st.lists(st.integers(0, 12), unique=True, max_size=8).map(sorted),
    min_size=1,
    max_size=10,
)


class TestProperties:
    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_frequencies_match_bruteforce(self, tuples):
        tree = build(list(enumerate(tuples)))
        freq = tree.row_frequencies()
        for row in range(13):
            expected = sum(1 for rows in tuples if row in rows)
            assert freq.get(row, 0) == expected

    @given(rows_strategy, st.integers(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_projection_matches_bruteforce(self, tuples, r):
        tree = build(list(enumerate(tuples)))
        projected = tree.project(r)
        expected_items = {i for i, rows in enumerate(tuples) if r in rows}
        assert set(projected.all_items()) == expected_items
        assert projected.n_items == len(expected_items)
        freq = projected.row_frequencies()
        for row in range(13):
            expected = sum(
                1 for i, rows in enumerate(tuples) if r in rows and row in rows
                and row > r
            )
            assert freq.get(row, 0) == expected
