"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ALL_AML,
    PAPER_DATASETS,
    PROSTATE_CANCER,
    DatasetSpec,
    generate_dataset,
    generate_paper_dataset,
    make_figure1_example,
    random_discretized_dataset,
)


class TestSpecs:
    def test_registry_has_four_datasets(self):
        assert set(PAPER_DATASETS) == {"ALL", "LC", "OC", "PC"}

    def test_table1_shapes(self):
        spec = PAPER_DATASETS["ALL"]
        assert spec.n_genes == 7129
        assert spec.n_train == 38
        assert spec.n_test == 34
        assert spec.train_per_class == (11, 27)

    def test_oc_shapes(self):
        spec = PAPER_DATASETS["OC"]
        assert spec.n_genes == 15154
        assert spec.n_train == 210
        assert spec.n_test == 43

    def test_scaled_preserves_samples(self):
        scaled = ALL_AML.scaled(0.1)
        assert scaled.n_train == ALL_AML.n_train
        assert scaled.n_test == ALL_AML.n_test
        assert scaled.n_genes < ALL_AML.n_genes

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            ALL_AML.scaled(0.0)
        with pytest.raises(ValueError):
            ALL_AML.scaled(1.5)

    def test_only_pc_has_shift(self):
        assert PROSTATE_CANCER.test_shift > 0
        assert ALL_AML.test_shift == 0


class TestGeneration:
    def test_shapes_match_spec(self):
        spec = ALL_AML.scaled(0.05)
        train, test = generate_dataset(spec)
        assert train.values.shape == (spec.n_train, spec.n_genes)
        assert test.values.shape == (spec.n_test, spec.n_genes)

    def test_class_split(self):
        spec = ALL_AML.scaled(0.05)
        train, test = generate_dataset(spec)
        assert train.class_counts() == list(spec.train_per_class)
        assert test.class_counts() == list(spec.test_per_class)

    def test_deterministic(self):
        spec = ALL_AML.scaled(0.05)
        a_train, a_test = generate_dataset(spec)
        b_train, b_test = generate_dataset(spec)
        assert np.array_equal(a_train.values, b_train.values)
        assert np.array_equal(a_test.values, b_test.values)

    def test_different_seeds_differ(self):
        import dataclasses

        spec = ALL_AML.scaled(0.05)
        other = dataclasses.replace(spec, seed=spec.seed + 1)
        a, _ = generate_dataset(spec)
        b, _ = generate_dataset(other)
        assert not np.array_equal(a.values, b.values)

    def test_informative_genes_separate_classes(self):
        spec = ALL_AML.scaled(0.05)
        train, _ = generate_dataset(spec)
        class1 = train.labels == 1
        separation = np.abs(
            train.values[class1].mean(axis=0)
            - train.values[~class1].mean(axis=0)
        )
        # Some genes must separate strongly, most must not.
        assert (separation > 1.5).sum() >= 5
        assert (separation < 0.5).sum() > spec.n_genes / 3

    def test_generate_paper_dataset_by_name(self):
        train, test = generate_paper_dataset("ALL", scale=0.05)
        assert train.n_samples == 38
        assert test.n_samples == 34

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            generate_paper_dataset("XX")

    def test_pc_shift_moves_test_values(self):
        import dataclasses

        spec = PROSTATE_CANCER.scaled(0.05)
        unshifted = dataclasses.replace(spec, test_shift=0.0)
        _, shifted_test = generate_dataset(spec)
        _, plain_test = generate_dataset(unshifted)
        assert not np.array_equal(shifted_test.values, plain_test.values)

    def test_pc_shift_leaves_train_alone(self):
        import dataclasses

        spec = PROSTATE_CANCER.scaled(0.05)
        unshifted = dataclasses.replace(spec, test_shift=0.0)
        shifted_train, _ = generate_dataset(spec)
        plain_train, _ = generate_dataset(unshifted)
        assert np.array_equal(shifted_train.values, plain_train.values)


class TestFigure1:
    def test_rows_match_paper(self, figure1):
        letters = "abcdefgho p".replace(" ", "")
        ids = {letter: i for i, letter in enumerate("abcdefgh") }
        ids["o"], ids["p"] = 8, 9
        expected = ["abcde", "abcop", "cdefg", "cdefg", "efgho"]
        for row, text in zip(figure1.rows, expected):
            assert row == frozenset(ids[ch] for ch in text)

    def test_labels(self, figure1):
        assert figure1.labels == [1, 1, 1, 0, 0]

    def test_class_names(self, figure1):
        assert figure1.class_names == ["not_C", "C"]


class TestRandomDiscretized:
    def test_rows_nonempty(self):
        ds = random_discretized_dataset(8, 6, density=0.05, seed=5)
        assert all(len(row) >= 1 for row in ds.rows)

    def test_both_classes_present(self):
        for seed in range(5):
            ds = random_discretized_dataset(6, 5, seed=seed)
            assert set(ds.labels) == {0, 1}

    def test_deterministic(self):
        a = random_discretized_dataset(8, 6, seed=2)
        b = random_discretized_dataset(8, 6, seed=2)
        assert a.rows == b.rows and a.labels == b.labels


class TestSeedRobustness:
    """The pipeline must not be knife-edge on the default seeds."""

    @pytest.mark.parametrize("seed_offset", (1, 2, 3))
    def test_all_shape_robust_across_seeds(self, seed_offset):
        import dataclasses

        from repro.classifiers import CBAClassifier, RCBTClassifier
        from repro.data.discretize import EntropyDiscretizer

        spec = dataclasses.replace(
            ALL_AML.scaled(0.05), seed=ALL_AML.seed + seed_offset
        )
        train, test = generate_dataset(spec)
        disc = EntropyDiscretizer().fit(train)
        train_items, test_items = disc.transform(train), disc.transform(test)
        rcbt = RCBTClassifier(k=3, nl=5).fit(train_items)
        cba = CBAClassifier().fit(train_items)
        assert rcbt.score(test_items) >= 0.8
        assert cba.score(test_items) >= 0.7
