"""Optional numpy backend: support table as a ``uint64`` word matrix.

``encode_supports`` packs the table into one contiguous
``(n_supports, n_words)`` ``uint64`` array; ``intersect_many`` /
``union_many`` are single ``np.bitwise_and.reduce`` /
``np.bitwise_or.reduce`` calls over a row slice, and ``popcount_many``
goes through ``np.bitwise_count``.  Results cross back to plain ``int``
bitsets at the call boundary, so outputs are bit-identical to the
default backend by construction.

This module is import-guarded by the package ``__init__``: importing it
raises ``ImportError`` when numpy is absent and the backend simply does
not register — nothing else in the package imports numpy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import BitsetBackend

__all__ = ["NumpyBackend"]

if not hasattr(np, "bitwise_count"):  # numpy < 2.0
    raise ImportError("numpy backend needs numpy >= 2.0 (np.bitwise_count)")


def _to_int(words: "np.ndarray") -> int:
    return int.from_bytes(words.tobytes(), "little")


class NumpyBackend(BitsetBackend):
    name = "numpy"

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        n_words = max(1, (n_bits + 63) // 64)
        buffer = bytearray()
        for bits in bitsets:
            buffer += bits.to_bytes(n_words * 8, "little")
        matrix = np.frombuffer(bytes(buffer), dtype="<u8")
        return matrix.reshape(len(bitsets), n_words), n_words

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        if not len(ids):
            raise ValueError("intersect_many needs at least one id")
        matrix, _n_words = handle
        return _to_int(np.bitwise_and.reduce(matrix[list(ids)], axis=0))

    def union_many(self, handle, ids: Sequence[int]) -> int:
        matrix, n_words = handle
        if not len(ids):
            return 0
        return _to_int(np.bitwise_or.reduce(matrix[list(ids)], axis=0))

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        if not len(ids):
            raise ValueError("intersect_union_many needs at least one id")
        matrix, _n_words = handle
        selected = matrix[list(ids)]
        return (
            _to_int(np.bitwise_and.reduce(selected, axis=0)),
            _to_int(np.bitwise_or.reduce(selected, axis=0)),
        )

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        if not bitsets:
            return []
        n_bits = max(bits.bit_length() for bits in bitsets)
        n_words = max(1, (n_bits + 63) // 64)
        buffer = bytearray()
        for bits in bitsets:
            buffer += bits.to_bytes(n_words * 8, "little")
        matrix = np.frombuffer(bytes(buffer), dtype="<u8").reshape(
            len(bitsets), n_words
        )
        counts = np.bitwise_count(matrix).sum(axis=1)
        return [int(count) for count in counts]
