"""Rule-group membership: enumerate and count the rules in a group.

Definition 2.1 makes a rule group the set of all antecedents with one
support set; by Lemma 5.1 those are exactly the itemsets sandwiched
between some lower bound and the upper bound:

    members(G) = { A : L ⊆ A ⊆ U for some lower bound L of G }.

The paper leans on this to justify reporting only bounds ("based on the
upper bound and all the lower bounds of a rule group, it is easy to
identify the remaining members"); this module makes that identification
executable — counting via inclusion-exclusion and enumerating smallest
first — and provides the direct membership test.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from .rules import RuleGroup

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["count_members", "iter_members", "is_member"]


def count_members(
    upper: frozenset[int], lowers: Sequence[frozenset[int]]
) -> int:
    """Number of rules in the group, by inclusion-exclusion.

    ``|{A : ∃L, L ⊆ A ⊆ U}| = Σ_{∅≠S⊆lowers} (-1)^{|S|+1} 2^{|U| - |∪S|}``.

    Args:
        upper: the upper bound antecedent.
        lowers: all lower bounds (each must be a subset of ``upper``).

    The count is exact only when ``lowers`` is the complete set of lower
    bounds; with a partial set it is a lower estimate of the group size.
    """
    for lower in lowers:
        if not lower <= upper:
            raise ValueError(f"lower bound {sorted(lower)} not within upper")
    total = 0
    for size in range(1, len(lowers) + 1):
        for subset in combinations(lowers, size):
            union = frozenset().union(*subset)
            term = 1 << (len(upper) - len(union))
            total += term if size % 2 == 1 else -term
    return total


def iter_members(
    upper: frozenset[int],
    lowers: Sequence[frozenset[int]],
    limit: Optional[int] = None,
) -> Iterator[frozenset[int]]:
    """Yield the group's member antecedents, smallest first.

    Args:
        upper: the upper bound antecedent.
        lowers: lower bounds anchoring membership.
        limit: stop after this many members (groups can be exponentially
            large; the paper reports tens of thousands of lower bounds
            alone on entropy-discretized data).
    """
    for lower in lowers:
        if not lower <= upper:
            raise ValueError(f"lower bound {sorted(lower)} not within upper")
    produced = 0
    seen: set[frozenset[int]] = set()
    ordered_upper = sorted(upper)
    for size in range(min((len(l) for l in lowers), default=0), len(upper) + 1):
        for candidate in combinations(ordered_upper, size):
            candidate_set = frozenset(candidate)
            if candidate_set in seen:
                continue
            if any(lower <= candidate_set for lower in lowers):
                seen.add(candidate_set)
                yield candidate_set
                produced += 1
                if limit is not None and produced >= limit:
                    return


def is_member(
    dataset: "DiscretizedDataset", group: RuleGroup, antecedent: Iterable[int]
) -> bool:
    """Direct membership test: ``A ⊆ U`` and ``R(A) == R(U)``."""
    antecedent = frozenset(antecedent)
    if not antecedent or not antecedent <= group.antecedent:
        return False
    return dataset.support_set(antecedent) == group.row_set
