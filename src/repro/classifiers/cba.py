"""CBA built from top-1 covering rule groups (Sections 2.2 and 5.1).

Classic CBA mines *all* class association rules above support/confidence
thresholds before its coverage test throws most of them away — which, on
microarray data, "cannot finish running in several days".  Lemma 2.2
shows the rules CBA would select are a subset of the shortest lower
bounds of the top-1 covering rule groups, so this implementation:

1. mines the top-1 covering rule group of every training row with
   :func:`~repro.core.topk_miner.mine_topk` (per class, no confidence
   threshold needed);
2. extracts one shortest lower bound per distinct group with FindLB,
   ordering items by gene entropy score;
3. runs the standard CBA sort / coverage-test / error-cut selection.

Prediction is first-match with a default-class fallback, and each
prediction reports whether the default was used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..analysis.gene_ranking import gene_entropy_scores, item_scores
from ..core.lower_bounds import find_lower_bounds_batch
from ..core.rules import Rule
from ..core.topk_miner import mine_topk, relative_minsup
from .base import RuleBasedClassifier
from .selection import SelectedRules, cba_select

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["CBAClassifier"]


class CBAClassifier(RuleBasedClassifier):
    """CBA classifier over shortest lower bounds of top-1 rule groups.

    Args:
        minsup_fraction: minimum support as a fraction of each consequent
            class's size (the paper uses 0.7).
        minconf: optional minimum confidence imposed on the lower bound
            rules before selection.  The paper notes this risks losing
            rows entirely; None (default) disables it.
        engine: row-enumeration engine for the mining step.
        max_lb_size: largest lower bound length FindLB searches.
        max_lb_items: optional cap on ranked items FindLB considers.
    """

    def __init__(
        self,
        minsup_fraction: float = 0.7,
        minconf: Optional[float] = None,
        engine: str = "bitset",
        max_lb_size: int = 6,
        max_lb_items: Optional[int] = None,
    ) -> None:
        self.minsup_fraction = minsup_fraction
        self.minconf = minconf
        self.engine = engine
        self.max_lb_size = max_lb_size
        self.max_lb_items = max_lb_items
        self.selected_: Optional[SelectedRules] = None
        self.candidate_rules_: list[Rule] = []
        self._rule_bits: Optional[list[int]] = None

    def fit(self, train: "DiscretizedDataset") -> "CBAClassifier":
        """Mine top-1 covering rule groups per class and build the classifier."""
        scores = item_scores(train, gene_entropy_scores(train))
        candidates: list[Rule] = []
        for class_id in range(train.n_classes):
            minsup = relative_minsup(train, class_id, self.minsup_fraction)
            result = mine_topk(
                train, class_id, minsup, k=1, engine=self.engine
            )
            groups = result.unique_groups()
            lower_bounds = find_lower_bounds_batch(
                train,
                groups,
                nl=1,
                item_scores=scores,
                max_items=self.max_lb_items,
                max_size=self.max_lb_size,
            )
            for group in groups:
                rules = lower_bounds[(group.row_set, group.consequent)]
                if rules:
                    candidates.append(rules[0])
        if self.minconf is not None:
            candidates = [
                rule for rule in candidates if rule.confidence >= self.minconf
            ]
        self.candidate_rules_ = candidates
        self.selected_ = cba_select(candidates, train)
        self._rule_bits = None
        self._fitted = True
        return self

    def predict_row(self, row_items: frozenset[int]) -> tuple[int, str]:
        """First matching rule decides; otherwise the default class."""
        self._check_fitted()
        assert self.selected_ is not None
        rule = self.selected_.first_match(row_items)
        if rule is not None:
            return rule.consequent, "main"
        return self.selected_.default_class, "default"

    def predict_batch(
        self, rows: Sequence[frozenset[int]]
    ) -> list[tuple[int, str]]:
        """Bitset fast path; output identical to per-row prediction."""
        self._check_fitted()
        assert self.selected_ is not None
        if self._rule_bits is None:
            compiled = []
            for rule in self.selected_.rules:
                bits = 0
                for item in rule.antecedent:
                    bits |= 1 << item
                compiled.append(bits)
            self._rule_bits = compiled
        results: list[tuple[int, str]] = []
        for row_items in rows:
            row_bits = 0
            for item in row_items:
                row_bits |= 1 << item
            for index, bits in enumerate(self._rule_bits):
                if bits & row_bits == bits:
                    results.append(
                        (self.selected_.rules[index].consequent, "main")
                    )
                    break
            else:
                results.append((self.selected_.default_class, "default"))
        return results

    @property
    def rules_(self) -> list[Rule]:
        """The final selected rule list (after the error cut)."""
        self._check_fitted()
        assert self.selected_ is not None
        return self.selected_.rules

    @property
    def default_class_(self) -> int:
        self._check_fitted()
        assert self.selected_ is not None
        return self.selected_.default_class
