"""Tests for MineTopkRGS."""

import pytest

from repro.core.bitset import popcount
from repro.core.topk_miner import mine_topk, relative_minsup
from repro.data.synthetic import random_discretized_dataset


class TestFigure1:
    """The paper's running example, pinned.

    Note on Example 1.1: the paper's text claims the top-1 covering rule
    group of row r3 is ``cde -> C`` (confidence 66.7%), but by the
    paper's own Definition 2.2 the group of ``{c}`` (R(c) = {r1..r4},
    confidence 75%, support 3) is strictly more significant and also
    covers r3 — the worked example contradicts the formal definition.
    This implementation follows the definition.
    """

    def test_top1_consequent_c(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=1)
        # Rows r1, r2 (ids 0, 1): abc -> C with conf 1.0, sup 2.
        for row in (0, 1):
            (group,) = result.per_row[row]
            assert group.antecedent == frozenset({0, 1, 2})
            assert group.support == 2
            assert group.confidence == 1.0
        # Row r3 (id 2): {c} -> C, conf 0.75, sup 3 (see class docstring).
        (group,) = result.per_row[2]
        assert group.antecedent == frozenset({2})
        assert group.support == 3
        assert group.confidence == pytest.approx(0.75)

    def test_top1_consequent_not_c(self, figure1):
        result = mine_topk(figure1, consequent=0, minsup=2, k=1)
        # Rows r4, r5 (ids 3, 4): efg -> not_C with conf 2/3, sup 2.
        for row in (3, 4):
            (group,) = result.per_row[row]
            assert group.antecedent == frozenset({4, 5, 6})
            assert group.support == 2
            assert group.confidence == pytest.approx(2 / 3)

    def test_only_consequent_rows_reported(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=1)
        assert set(result.per_row) == {0, 1, 2}

    def test_k2_lists_ordered_by_significance(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=2)
        for groups in result.per_row.values():
            stats = [(g.confidence, g.support) for g in groups]
            assert stats == sorted(stats, reverse=True)

    def test_example_2_2_rule_group(self, figure1):
        # R(a)=R(b)=R(ab)=...=R(abc)={r1,r2}: upper bound abc.
        result = mine_topk(figure1, consequent=1, minsup=2, k=1)
        group = result.per_row[0][0]
        assert group.row_set == 0b11  # rows r1, r2
        assert group.antecedent == frozenset({0, 1, 2})


class TestInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_group_stats_consistent(self, seed):
        ds = random_discretized_dataset(10, 8, density=0.45, seed=seed)
        result = mine_topk(ds, 1, minsup=2, k=3)
        class_mask = ds.class_mask(1)
        for row, groups in result.per_row.items():
            for group in groups:
                assert ds.support_set(group.antecedent) == group.row_set
                assert popcount(group.row_set & class_mask) == group.support
                assert group.support >= 2
                assert group.row_set >> row & 1  # covers its row
                assert group.antecedent <= ds.rows[row]

    @pytest.mark.parametrize("seed", range(5))
    def test_antecedents_closed(self, seed):
        ds = random_discretized_dataset(10, 8, density=0.45, seed=seed)
        result = mine_topk(ds, 1, minsup=1, k=2)
        for groups in result.per_row.values():
            for group in groups:
                closed = ds.common_items(group.row_set)
                # Closure over the frequent-item-reduced rows: every item
                # of the stored antecedent is in the full closure, and no
                # frequent item outside the antecedent is shared by all
                # rows of the support set.
                assert group.antecedent <= closed

    def test_lists_have_distinct_groups(self):
        ds = random_discretized_dataset(10, 8, density=0.5, seed=9)
        result = mine_topk(ds, 1, minsup=1, k=4)
        for groups in result.per_row.values():
            row_sets = [g.row_set for g in groups]
            assert len(row_sets) == len(set(row_sets))


class TestOptimizationFlags:
    @pytest.mark.parametrize("seed", range(4))
    def test_flags_do_not_change_output(self, seed):
        ds = random_discretized_dataset(9, 8, density=0.45, seed=seed)
        baseline = mine_topk(
            ds, 1, minsup=1, k=2,
            initialize_single_items=False,
            dynamic_minsup=False,
            use_topk_pruning=False,
        )
        optimized = mine_topk(ds, 1, minsup=1, k=2)
        for row in baseline.per_row:
            base = [(g.confidence, g.support) for g in baseline.per_row[row]]
            opt = [(g.confidence, g.support) for g in optimized.per_row[row]]
            assert base == opt

    def test_topk_pruning_reduces_nodes(self, small_benchmark):
        train = small_benchmark.train_items
        minsup = relative_minsup(train, 1, 0.8)
        pruned = mine_topk(train, 1, minsup, k=1, use_topk_pruning=True)
        unpruned = mine_topk(train, 1, minsup, k=1, use_topk_pruning=False)
        assert pruned.stats.nodes_visited <= unpruned.stats.nodes_visited


class TestResultHelpers:
    def test_unique_groups_sorted(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=2)
        unique = result.unique_groups()
        stats = [(g.confidence, g.support) for g in unique]
        assert stats == sorted(stats, reverse=True)
        assert len({g.row_set for g in unique}) == len(unique)

    def test_rank_set(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=2)
        top1 = result.rank_set(1)
        assert {g.row_set for g in top1} == {
            groups[0].row_set for groups in result.per_row.values() if groups
        }

    def test_rank_set_validates(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=1)
        with pytest.raises(ValueError):
            result.rank_set(0)

    def test_covered_rows(self, figure1):
        result = mine_topk(figure1, consequent=1, minsup=2, k=1)
        assert result.covered_rows() == [0, 1, 2]


class TestParameters:
    def test_relative_minsup(self, figure1):
        assert relative_minsup(figure1, 1, 0.7) == 3  # ceil(0.7 * 3)
        assert relative_minsup(figure1, 0, 0.7) == 2  # ceil(0.7 * 2)

    def test_relative_minsup_validates(self, figure1):
        with pytest.raises(ValueError):
            relative_minsup(figure1, 1, 0.0)
        with pytest.raises(ValueError):
            relative_minsup(figure1, 1, 1.5)

    def test_k_validation(self, figure1):
        with pytest.raises(ValueError, match="k must be"):
            mine_topk(figure1, 1, minsup=2, k=0)

    def test_budget_returns_partial(self, small_benchmark):
        train = small_benchmark.train_items
        minsup = relative_minsup(train, 1, 0.7)
        result = mine_topk(train, 1, minsup, k=50, node_budget=5)
        assert not result.stats.completed
        assert isinstance(result.per_row, dict)

    def test_k_monotone_in_nodes(self, small_benchmark):
        train = small_benchmark.train_items
        minsup = relative_minsup(train, 1, 0.8)
        small_k = mine_topk(train, 1, minsup, k=1)
        large_k = mine_topk(train, 1, minsup, k=20)
        assert large_k.stats.nodes_visited >= small_k.stats.nodes_visited

    @pytest.mark.parametrize("engine", ("bitset", "table", "tree"))
    def test_engines_same_lists(self, engine, figure1):
        reference = mine_topk(figure1, 1, minsup=2, k=2, engine="bitset")
        other = mine_topk(figure1, 1, minsup=2, k=2, engine=engine)
        for row in reference.per_row:
            ref = [(g.confidence, g.support) for g in reference.per_row[row]]
            got = [(g.confidence, g.support) for g in other.per_row[row]]
            assert ref == got
