"""Row-chunk sources: the streaming input contract of the hybrid miner.

The paper's Section 8 route to tall datasets is column-wise partitioning
with disk-based projection; its precondition is that nobody ever needs
the whole row set in memory at once.  This module defines the input side
of that contract: a :class:`RowChunkSource` hands out the catalog and
the rows in bounded chunks, and can do so repeatedly (the partition
builder makes two passes — one to count, one to partition).

Two implementations cover the repo's needs:

* :class:`TallChunkSource` streams a :class:`~.synthetic.TallCohortSpec`
  straight from ``iter_tall_chunks`` without materializing the cohort —
  the production path for ``tall-16k`` and above.
* :class:`DatasetChunkSource` adapts an already-materialized
  :class:`~.dataset.DiscretizedDataset`, so the in-memory and streaming
  entry points of the hybrid miner share one code path.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterator,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from .dataset import Item
from .synthetic import TALL_COHORTS, TallCohortSpec, iter_tall_chunks

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .dataset import DiscretizedDataset

__all__ = ["DatasetChunkSource", "RowChunkSource", "TallChunkSource"]


@runtime_checkable
class RowChunkSource(Protocol):
    """A replayable, chunked view of one discretized cohort.

    Attributes:
        items: dense item catalog (``items[i].item_id == i``).
        class_names: display names per class id; ``len(class_names)``
            bounds the valid consequents.
        name: cohort name for reports and partition labels.

    ``chunks()`` must be callable any number of times and yield the same
    rows in the same order each time — the hybrid partition builder
    iterates the source twice (a counting pass, then a partitioning
    pass) and its determinism guarantee rests on replayability.
    """

    items: Sequence[Item]
    class_names: Sequence[str]
    name: str

    def chunks(self) -> Iterator[tuple[list[frozenset[int]], list[int]]]:
        """Yield ``(rows, labels)`` chunks covering the cohort once."""
        ...


class TallChunkSource:
    """Stream a tall synthetic cohort without materializing it.

    Chunks come verbatim from :func:`iter_tall_chunks`, whose draws are
    keyed by ``(seed, chunk_index)`` — replaying the source re-deals the
    identical rows, and every committed :data:`TALL_COHORTS` spec yields
    both classes, so streaming and ``generate_tall_cohort`` agree row
    for row (the determinism tests pin this).
    """

    def __init__(
        self, spec: Union[TallCohortSpec, str], scale: float = 1.0
    ) -> None:
        if isinstance(spec, str):
            try:
                spec = TALL_COHORTS[spec]
            except KeyError:
                known = ", ".join(sorted(TALL_COHORTS))
                raise KeyError(
                    f"unknown tall cohort {spec!r}; expected one of: {known}"
                )
        if scale != 1.0:
            spec = spec.scaled(scale)
        self.spec = spec
        self.items = [
            Item(index, index, f"t{index:03d}", float("-inf"), float("inf"))
            for index in range(spec.n_items)
        ]
        self.class_names = ["control", "case"]
        self.name = spec.name

    def chunks(self) -> Iterator[tuple[list[frozenset[int]], list[int]]]:
        return iter_tall_chunks(self.spec)


class DatasetChunkSource:
    """Adapt a materialized dataset to the chunk-source protocol."""

    def __init__(
        self, dataset: "DiscretizedDataset", chunk_rows: int = 1024
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.dataset = dataset
        self.chunk_rows = chunk_rows
        self.items = dataset.items
        self.class_names = list(dataset.class_names)
        self.name = dataset.name

    def chunks(self) -> Iterator[tuple[list[frozenset[int]], list[int]]]:
        dataset, step = self.dataset, self.chunk_rows
        for start in range(0, dataset.n_rows, step):
            yield (
                dataset.rows[start : start + step],
                dataset.labels[start : start + step],
            )
