"""Embeddable rule-mining & classification serving layer.

Turns the one-shot library into a long-running server: a named model
registry (:mod:`.registry`), a content-addressed mining cache
(:mod:`.cache`), a cancellable mining job queue (:mod:`.jobs`),
micro-batched classification (:mod:`.batching`), request telemetry
(:mod:`.telemetry`), a durable SQLite-WAL job + result store
(:mod:`.store`) and two JSON-over-HTTP front ends — the threaded
:mod:`.server` and the batch-coalescing asyncio :mod:`.aio` server that
``repro serve`` runs by default.
"""

from .aio import AsyncReproServer
from .batching import MicroBatcher
from .cache import MiningCache, dataset_fingerprint, mining_key
from .jobs import Job, JobCancelled, JobQueue
from .registry import ModelRecord, ModelRegistry
from .server import (
    ReproServer,
    RuleService,
    ServiceError,
    topk_result_to_payload,
)
from .store import JobStore
from .telemetry import LatencyHistogram, Telemetry

__all__ = [
    "AsyncReproServer",
    "Job",
    "JobStore",
    "JobCancelled",
    "JobQueue",
    "LatencyHistogram",
    "MicroBatcher",
    "MiningCache",
    "ModelRecord",
    "ModelRegistry",
    "ReproServer",
    "RuleService",
    "ServiceError",
    "Telemetry",
    "dataset_fingerprint",
    "mining_key",
    "topk_result_to_payload",
]
