"""Tests for the CLOSET+ FP-tree baseline."""

import pytest

from repro.baselines import mine_closetplus, naive_farmer
from repro.data.synthetic import random_discretized_dataset


def keys(groups):
    return {
        (tuple(sorted(g.antecedent)), g.row_set, g.support,
         round(g.confidence, 9))
        for g in groups
    }


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("minsup", (1, 2, 3))
    def test_matches_oracle(self, seed, minsup):
        ds = random_discretized_dataset(9, 8, density=0.45, seed=seed)
        expected = keys(naive_farmer(ds, 1, minsup))
        actual = keys(mine_closetplus(ds, 1, minsup).groups)
        assert actual == expected

    def test_other_consequent(self, small_random):
        expected = keys(naive_farmer(small_random, 0, 1))
        assert keys(mine_closetplus(small_random, 0, 1).groups) == expected

    def test_figure1(self, figure1):
        expected = keys(naive_farmer(figure1, 1, 2))
        assert keys(mine_closetplus(figure1, 1, 2).groups) == expected


class TestClosedness:
    @pytest.mark.parametrize("seed", range(4))
    def test_support_sets_exact(self, seed):
        ds = random_discretized_dataset(9, 8, density=0.5, seed=seed)
        result = mine_closetplus(ds, 1, 1)
        for group in result.groups:
            assert ds.support_set(group.antecedent) == group.row_set
        row_sets = [g.row_set for g in result.groups]
        assert len(row_sets) == len(set(row_sets))


class TestBudget:
    def test_budget_truncates(self, small_random):
        result = mine_closetplus(small_random, 1, 1, node_budget=1)
        assert not result.completed

    def test_full_run_completes(self, small_random):
        result = mine_closetplus(small_random, 1, 1)
        assert result.completed
        assert result.nodes_visited >= 1
