"""Core algorithms: rule groups, row enumeration, MineTopkRGS, FindLB."""

from .bitset import from_indices, iter_indices, popcount, to_indices
from .enumeration import ENGINES, MinerStats, run_enumeration
from .hybrid import HybridStats, mine_topk_hybrid
from .lower_bounds import LowerBoundResult, find_lower_bounds, find_lower_bounds_batch
from .prefix_tree import PrefixTree, PrefixTreeNode
from .rules import Rule, RuleGroup, TopKList, cba_sort_key, more_significant
from .members import count_members, is_member, iter_members
from .topk_miner import TopkPolicy, TopkResult, mine_topk, relative_minsup
from .transposed import TransposedTable
from .view import MiningView

__all__ = [
    "ENGINES",
    "HybridStats",
    "LowerBoundResult",
    "MinerStats",
    "MiningView",
    "PrefixTree",
    "PrefixTreeNode",
    "Rule",
    "RuleGroup",
    "TopKList",
    "TopkPolicy",
    "TopkResult",
    "TransposedTable",
    "cba_sort_key",
    "count_members",
    "find_lower_bounds",
    "find_lower_bounds_batch",
    "from_indices",
    "is_member",
    "iter_indices",
    "iter_members",
    "mine_topk",
    "mine_topk_hybrid",
    "more_significant",
    "popcount",
    "relative_minsup",
    "run_enumeration",
    "to_indices",
]
