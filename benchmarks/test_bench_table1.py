"""Table 1 benchmark: the dataset preparation pipeline.

Times generation + entropy-MDL discretization for each dataset shape and
records the measured characteristics (gene counts before/after) that
regenerate Table 1.
"""

import pytest

from repro.data.discretize import EntropyDiscretizer
from repro.data.synthetic import PAPER_DATASETS, generate_dataset

SCALE = 0.05


@pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
def test_table1_pipeline(benchmark, name):
    spec = PAPER_DATASETS[name].scaled(SCALE)

    def prepare():
        train, test = generate_dataset(spec)
        discretizer = EntropyDiscretizer().fit(train)
        return train, test, discretizer

    train, test, discretizer = benchmark(prepare)
    assert train.n_samples == spec.n_train
    assert test.n_samples == spec.n_test
    assert 0 < discretizer.n_selected_genes <= spec.n_genes
    benchmark.extra_info.update(
        {
            "dataset": name,
            "scale": SCALE,
            "n_genes": spec.n_genes,
            "n_genes_discretized": discretizer.n_selected_genes,
            "train": f"{spec.n_train} "
                     f"({spec.train_per_class[1]}:{spec.train_per_class[0]})",
            "test": spec.n_test,
        }
    )


@pytest.mark.parametrize("name", sorted(PAPER_DATASETS))
def test_table1_transform(benchmark, name):
    """Itemization (transform) cost alone, separated from cut fitting."""
    spec = PAPER_DATASETS[name].scaled(SCALE)
    train, test = generate_dataset(spec)
    discretizer = EntropyDiscretizer().fit(train)
    items = benchmark(discretizer.transform, test)
    assert items.n_rows == spec.n_test
    benchmark.extra_info.update({"dataset": name, "items": items.n_items})
