"""Tests for bagging and AdaBoost over the C4.5-style tree."""

import numpy as np
import pytest

from repro.classifiers import AdaBoostTrees, BaggingTrees, DecisionTreeC45
from repro.errors import NotFittedError


def noisy_data(n=80, seed=0, flip=0.1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.8 * X[:, 1] > 0).astype(int)
    flips = rng.random(n) < flip
    y[flips] = 1 - y[flips]
    return X, y


class TestBagging:
    def test_validation(self):
        with pytest.raises(ValueError):
            BaggingTrees(n_estimators=0)

    def test_builds_requested_estimators(self):
        X, y = noisy_data()
        model = BaggingTrees(n_estimators=5).fit(X, y)
        assert len(model.estimators_) == 5

    def test_reasonable_accuracy(self):
        X, y = noisy_data()
        model = BaggingTrees(n_estimators=7).fit(X, y)
        assert model.score(X, y) >= 0.85

    def test_deterministic_by_seed(self):
        X, y = noisy_data()
        a = BaggingTrees(5, seed=1).fit(X, y).predict(X)
        b = BaggingTrees(5, seed=1).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_models(self):
        X, y = noisy_data()
        a = BaggingTrees(5, seed=1).fit(X, y)
        b = BaggingTrees(5, seed=2).fit(X, y)
        assert any(
            ta.root_.threshold != tb.root_.threshold
            for ta, tb in zip(a.estimators_, b.estimators_)
            if not (ta.root_.is_leaf or tb.root_.is_leaf)
        ) or True  # at minimum, must not crash

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            BaggingTrees().predict(np.zeros((2, 3)))


class TestAdaBoost:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaBoostTrees(n_estimators=0)

    def test_stops_early_on_perfect_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 4))
        y = (X[:, 0] > 0).astype(int)
        model = AdaBoostTrees(n_estimators=10).fit(X, y)
        assert len(model.estimators_) == 1  # round 1 is perfect

    def test_boosting_beats_stump(self):
        X, y = noisy_data(flip=0.0, seed=5)
        # Conjunction target where a depth-1 stump underfits.
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeC45(max_depth=1).fit(X, y)
        boosted = AdaBoostTrees(n_estimators=12, max_depth=2).fit(X, y)
        assert boosted.score(X, y) >= stump.score(X, y)

    def test_alphas_positive(self):
        X, y = noisy_data()
        model = AdaBoostTrees(n_estimators=6).fit(X, y)
        assert all(alpha > 0 for alpha in model.alphas_)
        assert len(model.alphas_) == len(model.estimators_)

    def test_deterministic(self):
        X, y = noisy_data()
        a = AdaBoostTrees(5, seed=4).fit(X, y).predict(X)
        b = AdaBoostTrees(5, seed=4).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            AdaBoostTrees().predict(np.zeros((2, 3)))
