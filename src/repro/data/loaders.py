"""Dataset serialization and the named benchmark registry.

Two concerns live here:

* plain-text persistence of continuous and discretized datasets (TSV and a
  small JSON sidecar), so workloads can be inspected, versioned, and
  shared between processes;
* :func:`load_benchmark`, the one-call entry point used by the examples,
  experiments and benchmarks: it generates the requested paper-shaped
  dataset, runs the entropy-MDL discretization (with an on-disk cut cache,
  since discretizing 15k genes is the slow step), and returns everything
  bundled in a :class:`Benchmark`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from .dataset import DiscretizedDataset, GeneExpressionDataset, Item
from .discretize import EntropyDiscretizer
from .synthetic import PAPER_DATASETS, DatasetSpec, generate_dataset

__all__ = [
    "save_expression",
    "load_expression",
    "save_discretized",
    "load_discretized",
    "discretized_to_payload",
    "discretized_from_payload",
    "Benchmark",
    "load_benchmark",
    "default_cache_dir",
]


def save_expression(dataset: GeneExpressionDataset, path: str | Path) -> None:
    """Write a continuous dataset as TSV (one sample per line).

    The first column is the class *name*; remaining columns are expression
    values in gene order.  A JSON header line carries names and metadata.
    """
    path = Path(path)
    header = {
        "name": dataset.name,
        "gene_names": dataset.gene_names,
        "class_names": dataset.class_names,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write("#" + json.dumps(header) + "\n")
        for row, label in zip(dataset.values, dataset.labels):
            cells = "\t".join(f"{value:.6g}" for value in row)
            handle.write(f"{dataset.class_names[label]}\t{cells}\n")


def load_expression(path: str | Path) -> GeneExpressionDataset:
    """Read a dataset written by :func:`save_expression`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.startswith("#"):
            raise ValueError(f"{path}: missing JSON header line")
        header = json.loads(first[1:])
        class_ids = {name: i for i, name in enumerate(header["class_names"])}
        labels: list[int] = []
        values: list[list[float]] = []
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            cells = line.split("\t")
            labels.append(class_ids[cells[0]])
            values.append([float(cell) for cell in cells[1:]])
    return GeneExpressionDataset(
        np.array(values, dtype=float),
        labels,
        header["gene_names"],
        header["class_names"],
        name=header.get("name", path.stem),
    )


def discretized_to_payload(dataset: DiscretizedDataset) -> dict:
    """JSON-safe payload of a discretized dataset.

    The same structure :func:`save_discretized` writes to disk; the
    service's ``/mine`` endpoint accepts it as a request body.
    """
    return {
        "name": dataset.name,
        "class_names": list(dataset.class_names),
        "labels": list(dataset.labels),
        "rows": [sorted(row) for row in dataset.rows],
        "items": [
            {
                "item_id": item.item_id,
                "gene_index": item.gene_index,
                "gene_name": item.gene_name,
                "low": None if item.low == float("-inf") else item.low,
                "high": None if item.high == float("inf") else item.high,
            }
            for item in dataset.items
        ],
    }


def discretized_from_payload(payload: dict) -> DiscretizedDataset:
    """Rebuild a dataset from a :func:`discretized_to_payload` payload."""
    items = [
        Item(
            entry["item_id"],
            entry["gene_index"],
            entry["gene_name"],
            float("-inf") if entry["low"] is None else entry["low"],
            float("inf") if entry["high"] is None else entry["high"],
        )
        for entry in payload["items"]
    ]
    return DiscretizedDataset(
        payload["rows"],
        payload["labels"],
        items,
        class_names=payload["class_names"],
        name=payload.get("name", "dataset"),
    )


def save_discretized(dataset: DiscretizedDataset, path: str | Path) -> None:
    """Write a discretized dataset as JSON."""
    payload = discretized_to_payload(dataset)
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_discretized(path: str | Path) -> DiscretizedDataset:
    """Read a dataset written by :func:`save_discretized`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    dataset = discretized_from_payload(payload)
    if "name" not in payload:
        dataset.name = Path(path).stem
    return dataset


def default_cache_dir() -> Path:
    """Directory for cached discretization cuts (overridable via env)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-topkrgs"


@dataclass
class Benchmark:
    """A fully prepared workload: raw splits plus their discretized forms."""

    spec: DatasetSpec
    train: GeneExpressionDataset
    test: GeneExpressionDataset
    discretizer: EntropyDiscretizer
    train_items: DiscretizedDataset
    test_items: DiscretizedDataset

    @property
    def name(self) -> str:
        return self.spec.name


def load_benchmark(
    name: str,
    scale: float = 1.0,
    cache_dir: Optional[str | Path] = None,
    use_cache: bool = True,
) -> Benchmark:
    """Generate, discretize and bundle a paper-shaped dataset.

    Args:
        name: dataset code (``ALL``, ``LC``, ``OC``, ``PC``).
        scale: gene-count scale factor (1.0 = Table 1 shape).
        cache_dir: where to cache MDL cuts; defaults to
            :func:`default_cache_dir`.
        use_cache: disable to force re-discretization.
    """
    try:
        spec = PAPER_DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; expected one of: {known}")
    if scale != 1.0:
        spec = spec.scaled(scale)
    train, test = generate_dataset(spec)

    discretizer = EntropyDiscretizer()
    cache_path: Optional[Path] = None
    if use_cache:
        directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        directory.mkdir(parents=True, exist_ok=True)
        cache_path = directory / f"{spec.name}_s{scale:g}_seed{spec.seed}.cuts.json"
    if cache_path is not None and cache_path.exists():
        cuts = json.loads(cache_path.read_text(encoding="utf-8"))
        discretizer = EntropyDiscretizer.from_cuts(
            {int(g): c for g, c in cuts.items()},
            train.gene_names,
            train.class_names,
        )
    else:
        discretizer.fit(train)
        if cache_path is not None:
            cache_path.write_text(
                json.dumps({str(g): c for g, c in discretizer.cuts_.items()}),
                encoding="utf-8",
            )
    return Benchmark(
        spec=spec,
        train=train,
        test=test,
        discretizer=discretizer,
        train_items=discretizer.transform(train),
        test_items=discretizer.transform(test),
    )
