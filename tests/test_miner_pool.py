"""The persistent warm miner pool and the adaptive execution planner.

:class:`repro.parallel.MinerPool` replaces per-call executors: workers
start once, stay warm, and later mines ride already-running processes.
These tests pin the lifecycle contract (reuse counters, grow-replaces,
close-then-restart, cancellation-slot leasing) and the planner contract
(``n_jobs="auto"`` resolves to serial below the work threshold or on a
single-core host, to all cores otherwise — and changes nothing about the
mined output either way).

Pool tests use private :class:`MinerPool` instances so the process-wide
default pool's state (warmed by other test modules) never leaks in;
planner tests monkeypatch ``os.cpu_count`` so they are deterministic on
any host.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

import repro.parallel as parallel_mod
from repro.core.topk_miner import mine_topk
from repro.parallel import (
    AUTO_JOBS,
    MinerPool,
    _AUTO_TOPK_SERIAL_UNITS,
    _POOL_CANCEL_SLOTS,
    estimate_farmer_work,
    estimate_topk_work,
    get_pool,
    plan_auto_workers,
    pool_stats,
    results_equal,
)
from repro.core.view import MiningView


class TestMinerPoolLifecycle:
    def test_reuse_counts(self):
        pool = MinerPool()
        try:
            first = pool.executor(2)
            assert pool.size == 2
            assert (pool.started, pool.reuses) == (1, 0)
            second = pool.executor(2)
            assert second is first
            assert (pool.started, pool.reuses) == (1, 1)
            # A smaller request also rides the running executor.
            third = pool.executor(1)
            assert third is first
            assert (pool.started, pool.reuses) == (1, 2)
        finally:
            pool.close()

    def test_grow_replaces_executor(self):
        pool = MinerPool()
        try:
            small = pool.executor(2)
            grown = pool.executor(3)
            assert grown is not small
            assert pool.size == 3
            assert pool.started == 2
            # The grown executor actually runs tasks.
            assert grown.submit(int, "7").result(timeout=30) == 7
        finally:
            pool.close()

    def test_close_then_restart(self):
        pool = MinerPool()
        try:
            pool.executor(2)
            pool.close()
            assert pool.size == 0
            revived = pool.executor(2)
            assert pool.size == 2
            assert pool.started == 2
            assert revived.submit(int, "3").result(timeout=30) == 3
        finally:
            pool.close()

    def test_max_workers_cap(self):
        pool = MinerPool(max_workers=2)
        try:
            pool.executor(8)
            assert pool.size == 2
        finally:
            pool.close()

    def test_slot_lease_cycle(self):
        pool = MinerPool()
        first = pool.acquire_slot()
        second = pool.acquire_slot()
        assert first != second
        pool.cancel_slot(first)
        assert pool._slots[first] == 1
        assert pool._slots[second] == 0
        pool.release_slot(first)
        assert pool._slots[first] == 0
        # The released slot is leasable again.
        leased = {pool.acquire_slot() for _ in range(2)}
        assert first in leased
        pool.release_slot(second)

    def test_slot_exhaustion_times_out_with_minus_one(self):
        """Leasing past the slot count no longer raises (pre-fix the 65th
        concurrent cancellable mine got a RuntimeError, which the service
        surfaced as a client-visible 500): the bounded wait expires and
        the caller receives -1, the serial-fallback sentinel."""
        pool = MinerPool()
        leased = [pool.acquire_slot() for _ in range(_POOL_CANCEL_SLOTS)]
        assert pool.acquire_slot(timeout=0.05) == -1
        for index in leased:
            pool.release_slot(index)

    def test_slot_release_unblocks_waiter(self):
        pool = MinerPool()
        leased = [pool.acquire_slot() for _ in range(_POOL_CANCEL_SLOTS)]
        got = []

        def waiter():
            got.append(pool.acquire_slot(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        pool.release_slot(leased.pop())
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(got) == 1 and got[0] >= 0
        pool.release_slot(got[0])
        for index in leased:
            pool.release_slot(index)

    def test_heal_replaces_broken_executor(self):
        """A worker death breaks the executor; heal() retires the broken
        generation and the next use starts a fresh, working one."""
        pool = MinerPool(max_workers=1)
        try:
            executor = pool.executor(1)
            with pytest.raises(Exception):
                executor.submit(os._exit, 1).result(timeout=30)
            assert pool.heal() is True
            assert pool.failure_restarts == 1
            # A healthy pool is left alone.
            assert pool.heal() is False
            assert pool.failure_restarts == 1
            revived = pool.executor(1)
            assert revived.submit(int, "5").result(timeout=30) == 5
        finally:
            pool.close()

    def test_default_pool_is_singleton(self):
        assert get_pool() is get_pool()

    def test_pool_stats_keys(self):
        stats = pool_stats()
        assert set(stats) == {
            "miner_pool_started",
            "miner_pool_reuses",
            "planner_serial_fallbacks",
            "shard_retries",
            "pool_restarts_on_failure",
            "serial_degradations",
        }
        assert all(isinstance(v, int) and v >= 0 for v in stats.values())


class TestAdaptivePlanner:
    def test_serial_below_threshold(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        before = pool_stats()["planner_serial_fallbacks"]
        assert plan_auto_workers(10, serial_threshold=100) == 1
        assert pool_stats()["planner_serial_fallbacks"] == before + 1

    def test_parallel_above_threshold(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        before = pool_stats()["planner_serial_fallbacks"]
        assert plan_auto_workers(1_000_000, serial_threshold=100) == 4
        assert pool_stats()["planner_serial_fallbacks"] == before

    def test_single_core_always_serial(self, monkeypatch):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        assert plan_auto_workers(10**12, serial_threshold=100) == 1

    def test_work_estimates_scale(self, small_random):
        view = MiningView.cached(small_random, 0, 2)
        mass = view.support_index().support_mass
        assert mass > 0
        assert estimate_topk_work(view, 1) == mass * 2
        assert estimate_topk_work(view, 100) == mass * 101
        assert estimate_farmer_work(view) == mass * max(1, view.n_rows)
        # FARMER trees (no top-k pruning) always cost at least as much
        # as a k=1 top-k mine of the same view.
        assert estimate_farmer_work(view) >= estimate_topk_work(view, 1)

    def test_auto_matches_serial_bit_for_bit(self, small_random):
        for consequent in (0, 1):
            serial = mine_topk(small_random, consequent, 2, k=4)
            auto = mine_topk(small_random, consequent, 2, k=4, n_jobs=AUTO_JOBS)
            assert results_equal(serial, auto)

    def test_auto_small_workload_counts_fallback(self, small_random):
        """A tiny mine is far below _AUTO_TOPK_SERIAL_UNITS, so the
        planner must pick serial and count the decision."""
        view = MiningView.cached(small_random, 0, 2)
        assert estimate_topk_work(view, 4) < _AUTO_TOPK_SERIAL_UNITS
        before = pool_stats()["planner_serial_fallbacks"]
        mine_topk(small_random, 0, 2, k=4, n_jobs=AUTO_JOBS)
        assert pool_stats()["planner_serial_fallbacks"] == before + 1

    def test_auto_forced_parallel_matches_serial(self, small_random,
                                                 monkeypatch):
        """Force the planner into the parallel branch (cores=2, zero
        threshold) and check the warm-pool path still reproduces the
        serial result exactly."""
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(parallel_mod, "_AUTO_TOPK_SERIAL_UNITS", 0)
        serial = mine_topk(small_random, 0, 2, k=4)
        auto = mine_topk(small_random, 0, 2, k=4, n_jobs=AUTO_JOBS)
        assert results_equal(serial, auto)


class TestWarmPoolMining:
    def test_pool_reuse_across_mines(self, small_random):
        """Two parallel mines: the second rides the warm workers."""
        pool = get_pool()
        serial = mine_topk(small_random, 0, 2, k=4)
        first = mine_topk(small_random, 0, 2, k=4, n_jobs=2)
        started_after_first = pool.started
        reuses_after_first = pool.reuses
        assert started_after_first >= 1
        second = mine_topk(small_random, 0, 2, k=4, n_jobs=2)
        assert pool.started == started_after_first  # no new executor
        assert pool.reuses > reuses_after_first
        assert results_equal(serial, first)
        assert results_equal(serial, second)

    def test_mine_after_shutdown_restarts(self, small_random):
        pool = get_pool()
        mine_topk(small_random, 0, 2, k=4, n_jobs=2)
        pool.close()
        started_before = pool.started
        serial = mine_topk(small_random, 0, 2, k=4)
        revived = mine_topk(small_random, 0, 2, k=4, n_jobs=2)
        assert pool.started == started_before + 1
        assert results_equal(serial, revived)
