"""Tests for the CBA rule/group selection machinery."""

import pytest

from repro.classifiers.selection import (
    cba_select,
    cba_select_groups,
    majority_class,
)
from repro.core.bitset import from_indices
from repro.core.rules import Rule, RuleGroup
from repro.data.dataset import DiscretizedDataset, Item


def dataset(rows, labels):
    n_items = max((max(row) for row in rows if row), default=-1) + 1
    items = [
        Item(i, i, f"g{i}", float("-inf"), float("inf"))
        for i in range(n_items)
    ]
    return DiscretizedDataset(
        rows, labels, items, class_names=["c0", "c1"]
    )


def rule(items, consequent, sup, conf):
    return Rule(frozenset(items), consequent, sup, conf)


class TestMajorityClass:
    def test_majority(self):
        assert majority_class([0, 1, 1], 2) == 1

    def test_tie_prefers_smaller_id(self):
        assert majority_class([0, 1], 2) == 0

    def test_empty_defaults_to_zero(self):
        assert majority_class([], 2) == 0


class TestCbaSelect:
    def test_perfect_rule_selected(self):
        ds = dataset([{0}, {0}, {1}, {1}], [1, 1, 0, 0])
        rules = [rule({0}, 1, 2, 1.0), rule({1}, 0, 2, 1.0)]
        selected = cba_select(rules, ds)
        assert len(selected.rules) >= 1
        assert selected.training_errors == 0

    def test_rule_without_correct_cover_skipped(self):
        # Rule for class 1 matching only class-0 rows must not be kept.
        ds = dataset([{0}, {0}], [0, 0])
        rules = [rule({0}, 1, 1, 0.5)]
        selected = cba_select(rules, ds)
        assert selected.rules == []
        assert selected.default_class == 0

    def test_higher_confidence_wins_order(self):
        ds = dataset([{0, 1}, {0, 1}, {2}], [1, 1, 0])
        strong = rule({0}, 1, 2, 1.0)
        weak = rule({1}, 1, 2, 0.6)
        selected = cba_select([weak, strong], ds)
        assert selected.rules[0] is strong

    def test_covered_rows_removed(self):
        # After the first rule covers both class-1 rows, the second
        # class-1 rule covers nothing new and is dropped.
        ds = dataset([{0, 1}, {0, 1}, {2}], [1, 1, 0])
        first = rule({0}, 1, 2, 1.0)
        second = rule({1}, 1, 2, 0.9)
        selected = cba_select([first, second], ds)
        assert second not in selected.rules

    def test_default_class_is_majority_of_remaining(self):
        ds = dataset([{0}, {1}, {1}], [1, 0, 0])
        selected = cba_select([rule({0}, 1, 1, 1.0)], ds)
        assert selected.default_class == 0

    def test_error_cut_truncates_harmful_tail(self):
        # A low-confidence rule that misclassifies more than the default
        # would must be cut by step 4.
        ds = dataset(
            [{0}, {0}, {1, 2}, {1}, {1}, {1}],
            [1, 1, 1, 0, 0, 0],
        )
        good = rule({0}, 1, 2, 1.0)
        bad = rule({1}, 1, 1, 0.25)  # covers rows 2..5, 3 errors
        selected = cba_select([good, bad], ds)
        assert bad not in selected.rules

    def test_empty_rules(self):
        ds = dataset([{0}, {1}], [0, 1])
        selected = cba_select([], ds)
        assert selected.rules == []
        assert selected.default_class in (0, 1)

    def test_first_match_helper(self):
        ds = dataset([{0}, {1}], [1, 0])
        r = rule({0}, 1, 1, 1.0)
        selected = cba_select([r], ds)
        assert selected.first_match(frozenset({0, 5})) is r
        assert selected.first_match(frozenset({5})) is None


def group(items, consequent, rows, sup, conf):
    return RuleGroup(frozenset(items), consequent, from_indices(rows), sup, conf)


class TestCbaSelectGroups:
    def test_coverage_only_keeps_both_classes(self):
        ds = dataset([{0}, {0}, {1}, {1}], [1, 1, 0, 0])
        groups = [
            group({0}, 1, [0, 1], 2, 1.0),
            group({1}, 0, [2, 3], 2, 1.0),
        ]
        selected = cba_select_groups(groups, ds)
        assert len(selected.groups) == 2

    def test_error_cut_mode_truncates(self):
        ds = dataset([{0}, {0}, {1}, {1}], [1, 1, 0, 0])
        groups = [
            group({0}, 1, [0, 1], 2, 1.0),
            group({1}, 0, [2, 3], 2, 1.0),
        ]
        selected = cba_select_groups(groups, ds, error_cut=True)
        # After the first group, default class 0 makes zero errors, so
        # the cut keeps only the first group.
        assert len(selected.groups) == 1

    def test_group_without_correct_cover_skipped(self):
        ds = dataset([{0}, {1}], [0, 1])
        junk = group({0}, 1, [0], 0, 0.0)
        selected = cba_select_groups([junk], ds)
        assert selected.groups == []

    def test_significance_order(self):
        ds = dataset([{0, 1}, {0, 1}, {2}], [1, 1, 0])
        weak = group({1}, 1, [0, 1], 2, 0.5)
        strong = group({0}, 1, [0, 1], 2, 1.0)
        selected = cba_select_groups([weak, strong], ds)
        assert selected.groups[0] is strong

    def test_default_class_after_full_coverage(self):
        ds = dataset([{0}, {0}, {1}], [1, 1, 1])
        selected = cba_select_groups([group({0}, 1, [0, 1, 2], 3, 1.0)], ds)
        assert selected.default_class == 1
