"""Rules, rule groups, and the significance orders of the paper.

A *rule* is ``A -> C`` where ``A`` is a set of items and ``C`` a class
label.  A *rule group* (Definition 2.1) is the equivalence class of all
rules with the same antecedent support set; it is represented here by its
unique upper bound: the closed antecedent ``I(R(A))`` together with the row
support set.  Support and confidence follow Section 2: support is
``|R(A ∪ C)|`` (rows of class ``C`` containing ``A``) and confidence is
``|R(A ∪ C)| / |R(A)|``.

Two orders matter:

* the *significance* order of Definition 2.2 (confidence first, then
  support), used to rank candidate members of the per-row top-k lists, and
* the CBA total order ``≺`` of Section 2.2 Step 2 (confidence, support,
  then shorter antecedent / earlier discovery), used when building
  classifiers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .bitset import popcount, to_indices

__all__ = [
    "Rule",
    "RuleGroup",
    "significance_key",
    "more_significant",
    "cba_sort_key",
    "TopKList",
]


@dataclass(frozen=True)
class Rule:
    """A single association rule ``antecedent -> consequent``.

    Attributes:
        antecedent: frozen set of item ids.
        consequent: class label id.
        support: absolute support, ``|R(A ∪ C)|``.
        confidence: ``support / |R(A)|``.
    """

    antecedent: frozenset[int]
    consequent: int
    support: int
    confidence: float

    def __len__(self) -> int:
        return len(self.antecedent)

    def matches(self, row_items: frozenset[int]) -> bool:
        """Return True iff the rule's antecedent is contained in the row."""
        return self.antecedent <= row_items

    def describe(self, item_namer=None) -> str:
        """Human-readable rendering, optionally naming items via a callable."""
        namer = item_namer if item_namer is not None else str
        items = ", ".join(namer(i) for i in sorted(self.antecedent))
        return (
            f"{{{items}}} -> class {self.consequent} "
            f"(sup={self.support}, conf={self.confidence:.3f})"
        )


@dataclass(frozen=True)
class RuleGroup:
    """A rule group, represented by its unique upper bound.

    Attributes:
        antecedent: the closed antecedent ``I(R(A))`` as a frozenset of
            item ids (the upper bound rule's antecedent).
        consequent: class label id.
        row_set: bitset of all rows containing the antecedent (``R(A)``).
        support: ``|R(A ∪ C)|`` — rows of the consequent class in
            ``row_set``.
        confidence: ``support / |row_set|``.
    """

    antecedent: frozenset[int]
    consequent: int
    row_set: int
    support: int
    confidence: float

    @classmethod
    def from_row_set(
        cls,
        antecedent: Iterable[int],
        consequent: int,
        row_set: int,
        class_mask: int,
    ) -> "RuleGroup":
        """Build a group from its support set and the consequent class mask.

        ``class_mask`` is the bitset of all rows labelled with the
        consequent class; support and confidence are derived from it.
        """
        total = popcount(row_set)
        sup = popcount(row_set & class_mask)
        conf = sup / total if total else 0.0
        return cls(frozenset(antecedent), consequent, row_set, sup, conf)

    @property
    def total_support(self) -> int:
        """``|R(A)|`` — rows of any class containing the antecedent."""
        return popcount(self.row_set)

    def covered_rows(self, class_mask: int) -> list[int]:
        """Row ids of the consequent class covered by this group."""
        return to_indices(self.row_set & class_mask)

    def upper_bound_rule(self) -> Rule:
        """The upper bound rule of this group."""
        return Rule(self.antecedent, self.consequent, self.support, self.confidence)

    def describe(self, item_namer=None) -> str:
        namer = item_namer if item_namer is not None else str
        items = ", ".join(namer(i) for i in sorted(self.antecedent))
        return (
            f"RG{{{items}}} -> class {self.consequent} "
            f"(sup={self.support}, conf={self.confidence:.3f}, "
            f"|R(A)|={self.total_support})"
        )


def significance_key(group: RuleGroup) -> tuple[float, int]:
    """Sort key implementing Definition 2.2 (larger key = more significant)."""
    return (group.confidence, group.support)


def more_significant(first: RuleGroup, second: RuleGroup) -> bool:
    """Return True iff ``first`` is strictly more significant (Def. 2.2)."""
    if first.confidence != second.confidence:
        return first.confidence > second.confidence
    return first.support > second.support


def cba_sort_key(rule: Rule, discovery_index: int) -> tuple[float, int, int, int]:
    """Key for the CBA precedence ``≺`` (sort ascending = best first).

    Higher confidence first, then higher support, then shorter antecedent
    (CBA's breadth-first discovery picks the shortest), then earlier
    discovery.
    """
    return (-rule.confidence, -rule.support, len(rule.antecedent), discovery_index)


@dataclass
class TopKList:
    """The top-k covering rule group list of a single row.

    Maintains up to ``k`` rule groups ordered from most to least
    significant.  Entries are keyed by their row support set so that the
    same rule group (possibly discovered provisionally via the single-item
    initialization optimization of Section 4.1.1) is never duplicated and
    can be upgraded in place once its closed upper bound is found.

    Confidence/support ties are broken *canonically by content*: the full
    sort key is ``(-confidence, -support, canonical row set)``, where the
    canonical row set is ``canonical_key(group)`` when provided (the
    miner passes a position-to-row translator so ties compare in original
    row space) and ``group.row_set`` otherwise.  The key is a total order
    over distinct groups, so the surviving members of a boundary tie
    class depend only on the offered population — never on arrival
    order.  That is what lets the serial, sharded-parallel, and hybrid
    partitioned miners all converge to bit-identical lists.

    ``offer`` is the hottest policy operation of the whole miner (every
    emitted group is offered to every consequent-class row it covers), so
    the list keeps two derived structures alongside ``groups``:

    * ``_keys`` — the full sort keys in ascending order, so an insertion
      position comes from one :func:`bisect.bisect_right` call.
    * ``_members`` — ``(row_set, consequent) -> RuleGroup`` for O(1)
      duplicate detection.

    ``kth_conf``/``kth_sup`` cache :meth:`kth_threshold` so the dynamic
    pruning bounds of Equations 1-2 read two attributes per row instead
    of calling a method.  All mutation goes through :meth:`offer`, which
    keeps every derived structure in sync.
    """

    k: int
    groups: list[RuleGroup] = field(default_factory=list)
    canonical_key: Optional[Callable[[RuleGroup], int]] = None

    def __post_init__(self) -> None:
        self._keys: list[tuple[float, int, int]] = [
            self._key(group) for group in self.groups
        ]
        self._members: dict[tuple[int, int], RuleGroup] = {
            (group.row_set, group.consequent): group for group in self.groups
        }
        self._refresh_kth()

    def _key(self, group: RuleGroup) -> tuple[float, int, int]:
        canon = self.canonical_key
        rows = group.row_set if canon is None else canon(group)
        return (-group.confidence, -group.support, rows)

    def _refresh_kth(self) -> None:
        if len(self.groups) < self.k:
            self.kth_conf = 0.0
            self.kth_sup = 0
        else:
            last = self.groups[-1]
            self.kth_conf = last.confidence
            self.kth_sup = last.support

    def kth_threshold(self) -> tuple[float, int]:
        """Confidence and support of the k-th entry (0, 0 if underfull).

        This is the per-row contribution to the dynamic ``minconf`` and
        ``sup`` thresholds of Equations 1 and 2.
        """
        return (self.kth_conf, self.kth_sup)

    def would_accept(self, confidence: float, support: int) -> bool:
        """Return True iff a group with these stats *could* enter the list.

        Non-strict at exact ``(kth_conf, kth_sup)`` equality: a boundary
        tie member may still displace the current k-th entry under the
        canonical content tie-break, so pruning on this predicate must
        not discard it.  :meth:`offer` settles exact ties with the full
        key.
        """
        if confidence != self.kth_conf:
            return confidence > self.kth_conf
        return support >= self.kth_sup

    def offer(self, group: RuleGroup) -> bool:
        """Offer a group to the list; return True if the list changed.

        A group already present (same row support set) upgrades the stored
        antecedent — this realises the paper's "update the single item with
        the upper bound rule" adaptation of Step 13.
        """
        identity = (group.row_set, group.consequent)
        existing = self._members.get(identity)
        if existing is not None:
            if len(group.antecedent) > len(existing.antecedent):
                # Same row set means same sort key, so the upgrade
                # replaces in place without disturbing the order; bisect
                # narrows the identity scan to the equal-key run.
                index = bisect_left(self._keys, self._key(existing))
                groups = self.groups
                while groups[index] is not existing:
                    index += 1
                groups[index] = group
                self._members[identity] = group
                return True
            return False
        if not self.would_accept(group.confidence, group.support):
            return False
        key = self._key(group)
        index = bisect_right(self._keys, key)
        if index >= self.k and len(self.groups) >= self.k:
            # An exact (confidence, support) tie with the k-th entry that
            # loses the canonical tie-break would be popped right back.
            return False
        self.groups.insert(index, group)
        self._keys.insert(index, key)
        self._members[identity] = group
        if len(self.groups) > self.k:
            dropped = self.groups.pop()
            self._keys.pop()
            del self._members[(dropped.row_set, dropped.consequent)]
        self._refresh_kth()
        return True

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __getitem__(self, index: int) -> RuleGroup:
        return self.groups[index]
