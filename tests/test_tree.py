"""Tests for the C4.5-style decision tree."""

import numpy as np
import pytest

from repro.classifiers import DecisionTreeC45
from repro.errors import NotFittedError


def separable(n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 2] > 0).astype(int)
    return X, y


class TestFitting:
    def test_perfect_on_separable(self):
        X, y = separable()
        tree = DecisionTreeC45().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_splits_on_informative_feature(self):
        X, y = separable()
        tree = DecisionTreeC45().fit(X, y)
        assert tree.root_.feature == 2

    def test_pure_labels_single_leaf(self):
        X = np.zeros((10, 3))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeC45().fit(X, y)
        assert tree.root_.is_leaf
        assert tree.depth() == 0

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeC45(max_depth=1).fit(X, y)
        assert tree.depth() <= 1

    def test_conjunction_needs_depth_two(self):
        # y = (x0 > 0) AND (x1 > 0): a stump cannot express it, depth 2
        # can (greedy trees cannot learn symmetric XOR at all — zero
        # marginal gain — so the classic depth test uses a conjunction).
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 2))
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeC45(max_depth=1).fit(X, y)
        deep = DecisionTreeC45(max_depth=4).fit(X, y)
        assert deep.score(X, y) >= 0.95
        assert deep.score(X, y) > stump.score(X, y)

    def test_min_leaf_weight(self):
        X, y = separable(n=20)
        big_leaf = DecisionTreeC45(min_leaf_weight=10.0).fit(X, y)
        assert big_leaf.depth() <= 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeC45().fit(np.zeros((4, 2)), [0, 1])

    def test_sample_weights_steer_prediction(self):
        # Two identical value columns; weights decide the majority.
        X = np.array([[0.0], [0.0], [0.0]])
        y = np.array([0, 1, 1])
        flat = DecisionTreeC45().fit(X, y)
        assert flat.predict(np.array([[0.0]]))[0] == 1
        weighted = DecisionTreeC45().fit(
            X, y, sample_weight=np.array([10.0, 1.0, 1.0])
        )
        assert weighted.predict(np.array([[0.0]]))[0] == 0


class TestPrediction:
    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeC45().predict(np.zeros((1, 2)))

    def test_prediction_shape(self):
        X, y = separable()
        tree = DecisionTreeC45().fit(X, y)
        assert tree.predict(X[:7]).shape == (7,)

    def test_deterministic(self):
        X, y = separable()
        a = DecisionTreeC45(seed=3).fit(X, y).predict(X)
        b = DecisionTreeC45(seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_max_features_subsampling(self):
        X, y = separable()
        tree = DecisionTreeC45(max_features=2, seed=0).fit(X, y)
        assert tree.score(X, y) >= 0.5
