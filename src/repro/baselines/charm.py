"""CHARM: column-enumeration closed itemset mining (Zaki & Hsiao, SDM'02).

The paper uses CHARM with diffsets as a representative of the
column-enumeration school and reports that it exhausts memory on
entropy-discretized microarray data; Figure 6's story is that the item
space (thousands of columns) is the wrong dimension to enumerate.  This
is a from-scratch implementation over the same frequent-item-reduced
space as the row-enumeration miners, so the two families can be
cross-validated: CHARM's closed itemsets with consequent-class support at
least ``minsup`` are exactly the rule-group upper bounds FARMER finds
with ``minconf = 0``.

The IT-tree search uses the four subsumption properties of the original
algorithm.  With ``use_diffsets=True`` (the paper's configuration) child
nodes carry diffsets — the rows *lost* from the parent's tidset — and
supports are maintained incrementally; tidsets are reconstructed only
when a closed candidate is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.bitset import popcount
from ..core.rules import RuleGroup
from ..core.view import MiningView
from ..errors import MiningBudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["CharmResult", "mine_charm"]


@dataclass
class CharmResult:
    """Outcome of one CHARM run."""

    groups: list[RuleGroup]
    consequent: int
    minsup: int
    completed: bool
    nodes_visited: int
    elapsed_seconds: float = 0.0


class _ClosedRegistry:
    """Closed-set store with the subsumption check of CHARM.

    A candidate itemset is subsumed iff an already-recorded closed set
    with the same tidset is a superset.  Candidates are bucketed by
    tidset so the check is a few set comparisons.
    """

    def __init__(self) -> None:
        self._by_tidset: dict[int, list[frozenset[int]]] = {}

    def subsumed(self, itemset: frozenset[int], tidset: int) -> bool:
        return any(
            existing >= itemset for existing in self._by_tidset.get(tidset, ())
        )

    def add(self, itemset: frozenset[int], tidset: int) -> None:
        self._by_tidset.setdefault(tidset, []).append(itemset)

    def items(self) -> list[tuple[frozenset[int], int]]:
        return [
            (itemset, tidset)
            for tidset, itemsets in self._by_tidset.items()
            for itemset in itemsets
        ]


def mine_charm(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    use_diffsets: bool = True,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> CharmResult:
    """Mine all rule-group upper bounds by column enumeration.

    Args:
        dataset: discretized dataset.
        consequent: class id whose support defines frequency.
        minsup: absolute minimum consequent-class support.
        use_diffsets: carry diffsets below the first level (the paper's
            "CHARM which uses diff-sets" configuration).
        node_budget: optional cap on explored IT-tree nodes; on overrun a
            partial result with ``completed=False`` is returned.
        time_budget: optional wall-clock cap in seconds, same semantics.

    Returns:
        A :class:`CharmResult` whose groups match FARMER at
        ``minconf = 0`` on any dataset (verified by the cross-miner
        tests).
    """
    import time

    start = time.monotonic()
    view = MiningView(dataset, consequent, minsup)
    positive_mask = view.positive_mask
    registry = _ClosedRegistry()
    state = {"nodes": 0, "completed": True}

    def class_support(tidset: int) -> int:
        return popcount(tidset & positive_mask)

    deadline = time.monotonic() + time_budget if time_budget else None

    def charge() -> None:
        state["nodes"] += 1
        if node_budget is not None and state["nodes"] > node_budget:
            raise MiningBudgetExceeded(f"node budget {node_budget} exceeded")
        if (
            deadline is not None
            and state["nodes"] % 32 == 0
            and time.monotonic() > deadline
        ):
            raise MiningBudgetExceeded("time budget exceeded")

    # Level 1: single items as (itemset, tidset) pairs, frequency-ordered.
    # CHARM explores ascending support so that tidset-subset properties
    # fire as often as possible.
    level_one = [
        (frozenset([item]), view.item_rows[item])
        for item in view.frequent_items
    ]
    level_one = [
        pair for pair in level_one if class_support(pair[1]) >= minsup
    ]
    level_one.sort(key=lambda pair: (popcount(pair[1]), min(pair[0])))

    def extend(nodes: list[tuple[frozenset[int], int]]) -> None:
        """CHARM-EXTEND over (itemset, tidset) nodes of one prefix class."""
        index = 0
        while index < len(nodes):
            charge()
            itemset_i, tidset_i = nodes[index]
            merged_itemset = itemset_i
            children: list[tuple[frozenset[int], int]] = []
            j = index + 1
            while j < len(nodes):
                itemset_j, tidset_j = nodes[j]
                tidset_ij = tidset_i & tidset_j
                if class_support(tidset_ij) < minsup:
                    j += 1
                    continue
                if tidset_i == tidset_j:
                    # Property 1: X_j is always with X_i; absorb it.
                    merged_itemset = merged_itemset | itemset_j
                    del nodes[j]
                    continue
                if tidset_i & ~tidset_j == 0:
                    # Property 2: t(X_i) ⊂ t(X_j); X_i implies X_j.
                    merged_itemset = merged_itemset | itemset_j
                    j += 1
                    continue
                if tidset_j & ~tidset_i == 0:
                    # Property 3: t(X_j) ⊂ t(X_i); X_j spawns the child
                    # and disappears from this level.
                    children.append((merged_itemset | itemset_j, tidset_ij))
                    del nodes[j]
                    continue
                # Property 4: incomparable tidsets.
                children.append((merged_itemset | itemset_j, tidset_ij))
                j += 1
            if children:
                # Children inherit the (possibly grown) prefix itemset.
                fixed = [
                    (merged_itemset | child_items, child_tids)
                    for child_items, child_tids in children
                ]
                fixed.sort(key=lambda pair: popcount(pair[1]))
                extend(fixed)
            if not registry.subsumed(merged_itemset, tidset_i):
                registry.add(merged_itemset, tidset_i)
            index += 1

    def extend_diffsets(
        nodes: list[tuple[frozenset[int], int, int]], prefix_tidset: int
    ) -> None:
        """CHARM-EXTEND where nodes carry (itemset, diffset, support).

        ``diffset`` holds the rows of the prefix tidset *not* containing
        the node's itemset; the true tidset is ``prefix_tidset & ~diffset``
        and is materialised only when recording closed sets.
        """
        index = 0
        while index < len(nodes):
            charge()
            itemset_i, diffset_i, _support_i = nodes[index]
            merged_itemset = itemset_i
            tidset_i = prefix_tidset & ~diffset_i
            children: list[tuple[frozenset[int], int, int]] = []
            j = index + 1
            while j < len(nodes):
                itemset_j, diffset_j, _support_j = nodes[j]
                # d(X_i X_j) relative to X_i: rows in t(X_i) lost by X_j.
                diffset_ij = diffset_j & ~diffset_i
                tidset_ij = tidset_i & ~diffset_ij
                if class_support(tidset_ij) < minsup:
                    j += 1
                    continue
                if diffset_i == diffset_j:
                    merged_itemset = merged_itemset | itemset_j
                    del nodes[j]
                    continue
                if diffset_j & ~diffset_i == 0:
                    # d_j ⊆ d_i ⟺ t(X_i) ⊆ t(X_j).
                    merged_itemset = merged_itemset | itemset_j
                    j += 1
                    continue
                if diffset_i & ~diffset_j == 0:
                    children.append(
                        (merged_itemset | itemset_j, diffset_ij, 0)
                    )
                    del nodes[j]
                    continue
                children.append((merged_itemset | itemset_j, diffset_ij, 0))
                j += 1
            if children:
                fixed = [
                    (merged_itemset | child_items, child_diff, 0)
                    for child_items, child_diff, _ in children
                ]
                fixed.sort(
                    key=lambda node: -popcount(node[1])
                )  # largest diffset = smallest tidset first
                extend_diffsets(fixed, tidset_i)
            if not registry.subsumed(merged_itemset, tidset_i):
                registry.add(merged_itemset, tidset_i)
            index += 1

    try:
        if use_diffsets and level_one:
            all_rows = (1 << view.n_rows) - 1
            diff_nodes = [
                (itemset, all_rows & ~tidset, class_support(tidset))
                for itemset, tidset in level_one
            ]
            extend_diffsets(diff_nodes, all_rows)
        else:
            extend(level_one)
    except MiningBudgetExceeded:
        state["completed"] = False

    groups = [
        RuleGroup(
            antecedent=itemset,
            consequent=consequent,
            row_set=view.positions_to_rows(tidset),
            support=class_support(tidset),
            confidence=class_support(tidset) / popcount(tidset),
        )
        for itemset, tidset in registry.items()
    ]
    return CharmResult(
        groups=groups,
        consequent=consequent,
        minsup=minsup,
        completed=state["completed"],
        nodes_visited=state["nodes"],
        elapsed_seconds=time.monotonic() - start,
    )
