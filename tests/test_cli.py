"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.data.loaders import load_discretized, load_expression


@pytest.fixture
def dataset_files(tmp_path):
    """Generated train/test TSVs at tiny scale."""
    code = main(["generate", "ALL", "--scale", "0.02",
                 "--output", str(tmp_path)])
    assert code == 0
    return tmp_path / "ALL_train.tsv", tmp_path / "ALL_test.tsv"


class TestNoSubcommand:
    def test_no_subcommand_prints_usage_and_returns_2(self, capsys):
        code = main([])
        assert code == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_serve_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "--models-dir" in capsys.readouterr().out


class TestGenerate:
    def test_writes_both_splits(self, dataset_files):
        train_path, test_path = dataset_files
        assert train_path.exists() and test_path.exists()
        train = load_expression(train_path)
        assert train.n_samples == 38

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "XX", "--output", str(tmp_path)])


class TestDiscretize:
    def test_discretize_train_and_test(self, dataset_files, tmp_path, capsys):
        train_path, test_path = dataset_files
        items = tmp_path / "items.json"
        test_items = tmp_path / "test_items.json"
        code = main([
            "discretize", str(train_path), "--output", str(items),
            "--test", str(test_path), "--test-output", str(test_items),
        ])
        assert code == 0
        loaded = load_discretized(items)
        assert loaded.n_rows == 38
        assert load_discretized(test_items).items == loaded.items
        assert "genes kept" in capsys.readouterr().out


class TestMine:
    def test_mine_prints_groups(self, dataset_files, tmp_path, capsys):
        train_path, _ = dataset_files
        items = tmp_path / "items.json"
        main(["discretize", str(train_path), "--output", str(items)])
        capsys.readouterr()
        code = main(["mine", str(items), "--k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "covering rule groups" in out
        assert "sup=" in out

    def test_mine_explicit_minsup(self, dataset_files, tmp_path, capsys):
        train_path, _ = dataset_files
        items = tmp_path / "items.json"
        main(["discretize", str(train_path), "--output", str(items)])
        capsys.readouterr()
        code = main(["mine", str(items), "--minsup", "20"])
        assert code == 0
        assert "minsup=20" in capsys.readouterr().out


class TestClassify:
    @pytest.mark.parametrize("name", ("rcbt", "cba", "tree", "svm"))
    def test_classifiers_run(self, dataset_files, capsys, name):
        train_path, test_path = dataset_files
        code = main([
            "classify", name, "--train", str(train_path),
            "--test", str(test_path), "--k", "2", "--nl", "2",
        ])
        assert code == 0
        assert "accuracy=" in capsys.readouterr().out


class TestExperimentsForwarding:
    def test_forwards_to_driver(self, capsys):
        code = main([
            "experiments", "table1", "--scale", "0.02", "--datasets", "ALL",
        ])
        assert code == 0
        assert "Table 1" in capsys.readouterr().out


class TestSaveAndPredict:
    def test_save_then_predict(self, dataset_files, tmp_path, capsys):
        train_path, test_path = dataset_files
        model_path = tmp_path / "model.json"
        code = main([
            "classify", "rcbt", "--train", str(train_path),
            "--test", str(test_path), "--k", "2", "--nl", "2",
            "--save", str(model_path),
        ])
        assert code == 0
        assert model_path.exists()
        assert model_path.with_suffix(".pipeline.json").exists()
        capsys.readouterr()
        code = main([
            "predict", "--model", str(model_path),
            "--pipeline", str(model_path.with_suffix(".pipeline.json")),
            "--data", str(test_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sample 0:" in out
        assert "accuracy=" in out

    def test_save_rejected_for_numeric(self, dataset_files, tmp_path):
        train_path, test_path = dataset_files
        code = main([
            "classify", "svm", "--train", str(train_path),
            "--test", str(test_path), "--save", str(tmp_path / "m.json"),
        ])
        assert code == 2
