"""Tests for rules, rule groups and the top-k list semantics."""

import pytest

from repro.core.bitset import from_indices
from repro.core.rules import (
    Rule,
    RuleGroup,
    TopKList,
    cba_sort_key,
    more_significant,
    significance_key,
)


def group(conf, sup, rows, antecedent=(0,), consequent=1):
    return RuleGroup(
        antecedent=frozenset(antecedent),
        consequent=consequent,
        row_set=from_indices(rows),
        support=sup,
        confidence=conf,
    )


class TestRule:
    def test_matches(self):
        rule = Rule(frozenset({1, 2}), 0, 3, 0.9)
        assert rule.matches(frozenset({1, 2, 5}))
        assert not rule.matches(frozenset({1, 5}))

    def test_len(self):
        assert len(Rule(frozenset({1, 2, 3}), 0, 1, 1.0)) == 3

    def test_describe_names_items(self):
        rule = Rule(frozenset({2, 1}), 0, 3, 0.5)
        text = rule.describe(lambda i: f"g{i}")
        assert "g1, g2" in text
        assert "sup=3" in text


class TestRuleGroup:
    def test_from_row_set_computes_stats(self):
        class_mask = from_indices([0, 1, 2])
        g = RuleGroup.from_row_set([7], 1, from_indices([0, 1, 4]), class_mask)
        assert g.support == 2
        assert g.total_support == 3
        assert g.confidence == pytest.approx(2 / 3)

    def test_covered_rows(self):
        g = group(1.0, 2, [0, 3, 5])
        assert g.covered_rows(from_indices([0, 5, 7])) == [0, 5]

    def test_upper_bound_rule_carries_stats(self):
        g = group(0.8, 4, [0, 1, 2, 3, 4])
        rule = g.upper_bound_rule()
        assert rule.support == 4
        assert rule.confidence == 0.8
        assert rule.antecedent == g.antecedent


class TestSignificance:
    def test_confidence_dominates(self):
        assert more_significant(group(0.9, 1, [0]), group(0.8, 100, [0]))

    def test_support_breaks_confidence_ties(self):
        assert more_significant(group(0.9, 5, [0]), group(0.9, 4, [0]))

    def test_equal_groups_not_more_significant(self):
        a, b = group(0.9, 5, [0]), group(0.9, 5, [1])
        assert not more_significant(a, b)
        assert not more_significant(b, a)

    def test_significance_key_orders(self):
        groups = [group(0.5, 9, [0]), group(0.9, 1, [1]), group(0.9, 3, [2])]
        ordered = sorted(groups, key=significance_key, reverse=True)
        assert [g.confidence for g in ordered] == [0.9, 0.9, 0.5]
        assert ordered[0].support == 3


class TestCbaSortKey:
    def test_orders_by_conf_sup_length_discovery(self):
        r1 = Rule(frozenset({1}), 0, 5, 0.9)
        r2 = Rule(frozenset({1, 2}), 0, 5, 0.9)
        r3 = Rule(frozenset({3}), 0, 5, 0.8)
        rules = [(r3, 0), (r2, 1), (r1, 2)]
        ordered = sorted(rules, key=lambda p: cba_sort_key(p[0], p[1]))
        assert ordered[0][0] is r1  # shorter wins the tie
        assert ordered[1][0] is r2
        assert ordered[2][0] is r3

    def test_discovery_order_is_final_tiebreak(self):
        r1 = Rule(frozenset({1}), 0, 5, 0.9)
        r2 = Rule(frozenset({2}), 0, 5, 0.9)
        assert cba_sort_key(r1, 0) < cba_sort_key(r2, 1)


class TestTopKList:
    def test_keeps_k_most_significant(self):
        topk = TopKList(2)
        topk.offer(group(0.5, 2, [0], (1,)))
        topk.offer(group(0.9, 2, [1], (2,)))
        topk.offer(group(0.7, 2, [2], (3,)))
        assert [g.confidence for g in topk] == [0.9, 0.7]

    def test_kth_threshold_underfull_is_zero(self):
        topk = TopKList(3)
        topk.offer(group(0.9, 5, [0]))
        assert topk.kth_threshold() == (0.0, 0)

    def test_kth_threshold_full(self):
        topk = TopKList(1)
        topk.offer(group(0.9, 5, [0]))
        assert topk.kth_threshold() == (0.9, 5)

    def test_ties_break_canonically_by_row_set(self):
        # Exact (confidence, support) ties are settled by the row set,
        # not by arrival order: the smaller row set wins either way.
        winner = group(0.9, 5, [0], (1,))
        loser = group(0.9, 5, [1], (2,))
        assert winner.row_set < loser.row_set

        topk = TopKList(1)
        topk.offer(winner)
        assert not topk.offer(loser)
        assert topk[0] is winner

        topk = TopKList(1)
        topk.offer(loser)
        assert topk.offer(winner)
        assert topk[0] is winner

    def test_same_row_set_upgrades_antecedent(self):
        topk = TopKList(1)
        topk.offer(group(0.9, 5, [0, 1], (1,)))
        upgraded = group(0.9, 5, [0, 1], (1, 2, 3))
        assert topk.offer(upgraded)
        assert topk[0].antecedent == frozenset({1, 2, 3})
        assert len(topk) == 1

    def test_same_row_set_never_duplicates(self):
        topk = TopKList(3)
        topk.offer(group(0.9, 5, [0, 1], (1, 2)))
        assert not topk.offer(group(0.9, 5, [0, 1], (7,)))
        assert len(topk) == 1

    def test_would_accept_boundary(self):
        topk = TopKList(1)
        topk.offer(group(0.9, 5, [0]))
        # Non-strict at exact equality: a boundary tie could still win
        # the canonical tie-break, so pruning must keep it enumerable.
        assert topk.would_accept(0.9, 5)
        assert topk.would_accept(0.9, 6)
        assert topk.would_accept(0.95, 1)
        assert not topk.would_accept(0.9, 4)
        assert not topk.would_accept(0.8, 100)

    def test_iteration_order_is_significance(self):
        topk = TopKList(3)
        for conf, sup, row in ((0.5, 1, 0), (0.9, 9, 1), (0.9, 2, 2)):
            topk.offer(group(conf, sup, [row]))
        stats = [(g.confidence, g.support) for g in topk]
        assert stats == [(0.9, 9), (0.9, 2), (0.5, 1)]
