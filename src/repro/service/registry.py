"""Named, versioned registry of trained rule-based classifiers.

Layered directly on the :mod:`repro.classifiers.persistence` JSON format:
registering a model stores it in memory for serving and (when a root
directory is configured) writes the same ``save_classifier`` payload to
``<root>/<name>/v<version>.model.json``, so a restarted server warm
starts from disk into an identical registry.  Versions are dense
integers starting at 1; ``get(name)`` resolves to the newest version.

A model may carry a *pipeline* sidecar — the discretizer cuts, gene
names and class names written by ``repro classify --save`` — which lets
the server accept raw expression values on ``/classify`` and discretize
them on the way in.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..classifiers.cba import CBAClassifier
from ..classifiers.persistence import (
    classifier_from_payload,
    classifier_to_payload,
)
from ..classifiers.rcbt import RCBTClassifier

__all__ = ["ModelRecord", "ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

RuleModel = Union[CBAClassifier, RCBTClassifier]


@dataclass
class ModelRecord:
    """One registered model version."""

    name: str
    version: int
    kind: str
    model: RuleModel = field(repr=False)
    pipeline: Optional[dict] = field(default=None, repr=False)

    def describe(self) -> dict:
        """JSON-safe summary for the ``/models`` endpoint."""
        return {
            "name": self.name,
            "version": self.version,
            "kind": self.kind,
            "has_pipeline": self.pipeline is not None,
        }


class ModelRegistry:
    """Thread-safe in-memory model store with optional disk persistence.

    Args:
        root: directory for persisted models.  When given, existing
            models under it are loaded immediately (warm start) and new
            registrations are written through.  ``None`` keeps the
            registry purely in memory.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self._lock = threading.RLock()
        self._models: dict[str, dict[int, ModelRecord]] = {}
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._warm_start()

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        model: RuleModel,
        pipeline: Optional[dict] = None,
    ) -> ModelRecord:
        """Store a fitted classifier under ``name`` as a new version.

        Returns the created :class:`ModelRecord`.  Raises
        ``NotFittedError`` for untrained models and ``ValueError`` for
        unusable names.
        """
        payload = classifier_to_payload(model)  # validates fitted + kind
        return self._insert(name, model, payload["kind"], pipeline,
                            persist_payload=payload)

    def register_payload(
        self,
        name: str,
        payload: dict,
        pipeline: Optional[dict] = None,
    ) -> ModelRecord:
        """Store a model from its serialized payload (the wire format)."""
        model = classifier_from_payload(payload)
        return self._insert(name, model, payload["kind"], pipeline,
                            persist_payload=payload)

    def _insert(
        self,
        name: str,
        model: RuleModel,
        kind: str,
        pipeline: Optional[dict],
        persist_payload: dict,
    ) -> ModelRecord:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, '_', "
                "'.' or '-'"
            )
        with self._lock:
            versions = self._models.setdefault(name, {})
            version = max(versions, default=0) + 1
            record = ModelRecord(
                name=name, version=version, kind=kind,
                model=model, pipeline=pipeline,
            )
            versions[version] = record
            if self.root is not None:
                self._persist(record, persist_payload)
            return record

    # -- lookup ------------------------------------------------------------

    def get(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """The requested (or newest) version of a named model.

        Raises:
            KeyError: unknown name or version.
        """
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise KeyError(f"unknown model {name!r}")
            if version is None:
                version = max(versions)
            record = versions.get(version)
            if record is None:
                raise KeyError(f"model {name!r} has no version {version}")
            return record

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def describe(self) -> list[dict]:
        """JSON-safe listing of every model version."""
        with self._lock:
            return [
                self._models[name][version].describe()
                for name in sorted(self._models)
                for version in sorted(self._models[name])
            ]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._models.values())

    # -- persistence -------------------------------------------------------

    def _model_path(self, name: str, version: int) -> Path:
        assert self.root is not None
        return self.root / name / f"v{version}.model.json"

    def _persist(self, record: ModelRecord, payload: dict) -> None:
        path = self._model_path(record.name, record.version)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        if record.pipeline is not None:
            sidecar = path.with_suffix("").with_suffix(".pipeline.json")
            sidecar.write_text(json.dumps(record.pipeline), encoding="utf-8")

    def _warm_start(self) -> None:
        assert self.root is not None
        for model_dir in sorted(self.root.iterdir()):
            if not model_dir.is_dir():
                continue
            name = model_dir.name
            if not _NAME_PATTERN.match(name):
                continue
            versions = self._models.setdefault(name, {})
            for path in sorted(model_dir.glob("v*.model.json")):
                try:
                    version = int(path.name.split(".", 1)[0][1:])
                except ValueError:
                    continue
                payload = json.loads(path.read_text(encoding="utf-8"))
                pipeline = None
                sidecar = path.with_suffix("").with_suffix(".pipeline.json")
                if sidecar.exists():
                    pipeline = json.loads(sidecar.read_text(encoding="utf-8"))
                versions[version] = ModelRecord(
                    name=name,
                    version=version,
                    kind=payload.get("kind", "unknown"),
                    model=classifier_from_payload(payload),
                    pipeline=pipeline,
                )
            if not versions:
                self._models.pop(name, None)
