"""Tests for the MiningView preparation step."""

import pytest

from repro.core.bitset import iter_indices, popcount, to_indices
from repro.core.view import MiningView
from repro.data.synthetic import random_discretized_dataset


class TestOrdering:
    def test_class_dominant_order(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        labels = [figure1.labels[row] for row in view.order]
        assert labels == [1, 1, 1, 0, 0]

    def test_positive_positions_are_low(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        assert view.n_positive == 3
        assert to_indices(view.positive_mask) == [0, 1, 2]

    def test_other_consequent_flips(self, figure1):
        view = MiningView(figure1, consequent=0, minsup=1)
        labels = [figure1.labels[row] for row in view.order]
        assert labels == [0, 0, 1, 1, 1]

    def test_rows_sorted_by_frequent_item_count(self):
        ds = random_discretized_dataset(12, 10, density=0.5, seed=3)
        view = MiningView(ds, consequent=1, minsup=2)
        lengths = [len(view.row_items[p]) for p in range(view.n_positive)]
        assert lengths == sorted(lengths)
        negative = [
            len(view.row_items[p])
            for p in range(view.n_positive, view.n_rows)
        ]
        assert negative == sorted(negative)

    def test_position_of_inverts_order(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        for position, row in enumerate(view.order):
            assert view.position_of[row] == position


class TestFrequentItems:
    def test_infrequent_items_removed(self, figure1):
        # With minsup=2 and consequent C, items f, g, h, o, p appear in
        # fewer than 2 class-C rows.
        view = MiningView(figure1, consequent=1, minsup=2)
        assert set(view.frequent_items) == {0, 1, 2, 3, 4}

    def test_minsup_one_keeps_all_class_items(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        # p appears only in r2 (class C) so it stays; h only in r5 (not C).
        assert 9 in view.frequent_items
        assert 7 not in view.frequent_items

    def test_row_items_restricted(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=2)
        for items in view.row_items:
            assert items <= set(view.frequent_items)

    def test_item_rows_match_dataset(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=2)
        for item in view.frequent_items:
            positions = set(iter_indices(view.item_rows[item]))
            rows = {view.order[p] for p in positions}
            expected = {
                r for r, row in enumerate(figure1.rows) if item in row
            }
            assert rows == expected


class TestValidation:
    def test_minsup_zero_rejected(self, figure1):
        with pytest.raises(ValueError, match="minsup"):
            MiningView(figure1, consequent=1, minsup=0)

    def test_bad_consequent_rejected(self, figure1):
        with pytest.raises(ValueError, match="consequent"):
            MiningView(figure1, consequent=5, minsup=1)


class TestClosures:
    def test_closure_rows_roundtrip(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        for item in view.frequent_items:
            rows = view.closure_rows([item])
            assert rows == view.item_rows[item]

    def test_closed_items_of_closure(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        # cde in item ids is {2, 3, 4}; its support set closes to itself.
        rows = view.closure_rows([2, 3, 4])
        assert view.closed_items(rows) >= {2, 3, 4}

    def test_positions_to_rows(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        bits = view.positions_to_rows(0b101)
        rows = to_indices(bits)
        assert rows == sorted(view.order[p] for p in (0, 2))

    def test_positive_count(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=1)
        assert view.positive_count(view.positive_mask) == 3
        assert view.positive_count(0) == 0


class TestSingleItemGroups:
    def test_groups_keyed_by_support_set(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=2)
        groups = view.single_item_groups()
        for row_bits, items in groups.items():
            for item in items:
                assert view.item_rows[item] == row_bits

    def test_items_with_same_support_share_group(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=2)
        groups = view.single_item_groups()
        # a and b always co-occur in Figure 1 (rows r1, r2).
        shared = [items for items in groups.values() if 0 in items]
        assert shared and 1 in shared[0]

    def test_all_frequent_items_covered(self, figure1):
        view = MiningView(figure1, consequent=1, minsup=2)
        groups = view.single_item_groups()
        covered = {item for items in groups.values() for item in items}
        assert covered == set(view.frequent_items)
