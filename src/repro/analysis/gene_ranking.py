"""Gene and item discriminative-power rankings.

Two rankings from the paper:

* the *entropy score* used by FindLB's item ordering (Figure 5 step 1,
  after Baldi & Brunak [3]) — here the information gain of a gene's
  discretized partition about the class label; and
* the *chi-square ranking* of Figure 8, the classic contingency statistic
  between a gene's discretized intervals and the class labels.

Both operate on a :class:`~repro.data.dataset.DiscretizedDataset`, whose
item catalog maps items back to genes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = [
    "gene_entropy_scores",
    "gene_chi_square_scores",
    "item_scores",
    "rank_genes",
]


def _class_entropy(counts: list[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts:
        if count:
            probability = count / total
            result -= probability * math.log2(probability)
    return result


def _gene_contingency(
    dataset: "DiscretizedDataset",
) -> dict[int, dict[int, list[int]]]:
    """gene index -> item id -> per-class row counts."""
    n_classes = dataset.n_classes
    tables: dict[int, dict[int, list[int]]] = {}
    item_gene = {item.item_id: item.gene_index for item in dataset.items}
    for row, label in zip(dataset.rows, dataset.labels):
        for item in row:
            gene = item_gene[item]
            per_item = tables.setdefault(gene, {})
            counts = per_item.setdefault(item, [0] * n_classes)
            counts[label] += 1
    return tables


def gene_entropy_scores(dataset: "DiscretizedDataset") -> dict[int, float]:
    """Information gain of each gene's item partition (higher = better).

    ``IG(gene) = H(class) - Σ_item p(item) · H(class | item)`` computed
    over the dataset's rows.  Genes not represented by any item score 0.
    """
    n_rows = dataset.n_rows
    base = _class_entropy(dataset.class_counts())
    scores: dict[int, float] = {}
    for gene, per_item in _gene_contingency(dataset).items():
        conditional = 0.0
        for counts in per_item.values():
            weight = sum(counts) / n_rows
            conditional += weight * _class_entropy(counts)
        scores[gene] = base - conditional
    return scores


def gene_chi_square_scores(dataset: "DiscretizedDataset") -> dict[int, float]:
    """Chi-square statistic of each gene's intervals vs. the class label.

    Higher means more class-correlated; used for the Figure 8 ranking.
    """
    class_counts = dataset.class_counts()
    n_rows = dataset.n_rows
    scores: dict[int, float] = {}
    for gene, per_item in _gene_contingency(dataset).items():
        statistic = 0.0
        for counts in per_item.values():
            item_total = sum(counts)
            for class_id, observed in enumerate(counts):
                expected = item_total * class_counts[class_id] / n_rows
                if expected > 0:
                    statistic += (observed - expected) ** 2 / expected
        scores[gene] = statistic
    return scores


def item_scores(
    dataset: "DiscretizedDataset", gene_scores: dict[int, float]
) -> dict[int, float]:
    """Lift a per-gene score onto items (each item inherits its gene's)."""
    return {
        item.item_id: gene_scores.get(item.gene_index, 0.0)
        for item in dataset.items
    }


def rank_genes(scores: dict[int, float]) -> dict[int, int]:
    """1-based ranks, best (highest score) first; ties broken by index."""
    ordered = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
    return {gene: rank for rank, (gene, _score) in enumerate(ordered, start=1)}
