"""Reproducible perf harness: serial vs. process-pool mining wall-clock.

``repro bench`` (or ``benchmarks/bench_runner.py``) times the miners on
the synthetic paper-shaped generators — the same workloads the Figure 6
drivers sweep — serially and through :mod:`repro.parallel`, verifies the
parallel output is bit-identical, and writes everything to
``BENCH_core.json`` so every future change has a perf baseline to move.

Honesty rules baked in:

* best-of-``repeats`` wall-clock (robust to scheduler noise, biased the
  same way for serial and parallel runs);
* the host's ``cpu_count`` is recorded next to every speedup, and every
  parallel measurement whose worker count exceeds the host's cores is
  flagged ``oversubscribed`` — a 4-worker run on a 1-core container
  *cannot* speed up, and the report says so rather than hiding it
  (oversubscribed points must not back any speedup claim);
* every parallel measurement carries ``identical_output``, the assertion
  that sharded mining reproduced the serial result exactly;
* every workload is also timed with ``n_jobs="auto"`` so the adaptive
  planner's choice is itself measured, not assumed;
* every workload is also timed with ``backend="auto"``, and the
  ``chose_backend`` field records which backend the planner *actually*
  resolved (counted at the resolver, not recomputed), so the committed
  numbers cannot claim a backend the run never used;
* :func:`compare_reports` (``repro bench --compare``) diffs a fresh run
  against a committed baseline and fails on serial-time regressions, so
  perf changes land with evidence.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from .baselines.farmer import FarmerResult, mine_farmer
from .core.backends import auto_backend_stats, available_backends
from .core.hybrid import mine_topk_hybrid
from .core.topk_miner import TopkResult, mine_topk, relative_minsup
from .data.loaders import load_benchmark
from .data.synthetic import generate_tall_cohort
from .experiments.harness import format_seconds
from .parallel import (
    AUTO_JOBS,
    mine_farmer_parallel,
    mine_topk_parallel,
    pool_stats,
    results_equal,
)

__all__ = [
    "Workload",
    "BenchReport",
    "run_bench",
    "write_report",
    "compare_reports",
    "main",
]

SCHEMA_VERSION = 1

# CI smoke profile: one small workload, two workers, one repetition.
QUICK_JOBS = (2,)


@dataclass(frozen=True)
class Workload:
    """One named mining configuration to time.

    ``dataset`` is a paper benchmark name (``load_benchmark``) or a tall
    cohort registry name (``tall-1k``/``tall-4k``/``tall-16k``, see
    :data:`repro.data.TALL_COHORTS`).  ``scale`` pins the workload to a
    fixed scale regardless of the CLI ``--scale`` so its committed
    baseline entry stays comparable.  ``backends`` restricts the
    per-backend serial columns (None = every available backend); tall
    workloads exclude the pure-Python ``packed`` backend, which is
    several times slower than ``int`` there and would dominate the
    harness runtime without informing any decision.  ``measure_parallel``
    turns off the worker-pool columns for workloads that exist to
    compare *backends* (process pools on the tall cohorts would double
    the runtime to measure an orthogonal axis).
    """

    name: str
    dataset: str
    miner: str  # "topk", "hybrid" or "farmer"
    engine: str
    k: int = 1
    fraction: float = 0.9
    minconf: float = 0.0
    scale: Optional[float] = None
    backends: Optional[tuple[str, ...]] = None
    measure_parallel: bool = True


# The full profile mirrors the Figure 6 series: MineTopkRGS at small and
# large k on the prefix tree, the bitset engine the classifiers use, and
# the FARMER baseline on its faithful projected-table engine.  The tall
# workloads are the vectorized-backend showcase: at 512 rows the numpy
# dynamic-threshold fold beats int top-k mining >2x (the committed
# acceptance evidence for backend="auto"), while the tall FARMER point
# documents that static-threshold mining stays fastest on int — which is
# exactly what the auto planner chooses (the ``auto_backend`` column
# records the choice).
DEFAULT_WORKLOADS = (
    Workload("all-topk-tree-k1", "ALL", "topk", "tree", k=1),
    Workload("all-topk-tree-k100", "ALL", "topk", "tree", k=100),
    Workload("all-topk-bitset-k10", "ALL", "topk", "bitset", k=10),
    Workload("all-farmer-table", "ALL", "farmer", "table"),
    Workload("pc-topk-tree-k1", "PC", "topk", "tree", k=1),
    Workload("pc-farmer-table", "PC", "farmer", "table"),
    Workload("tall-512-topk-bitset-k2", "tall-1k", "topk", "bitset",
             k=2, fraction=0.7, scale=0.5, backends=("int", "numpy"),
             measure_parallel=False),
    Workload("tall-256-farmer-bitset", "tall-1k", "farmer", "bitset",
             fraction=0.6, scale=0.25, backends=("int", "numpy"),
             measure_parallel=False),
    # The out-of-core tall path: column-partitioned hybrid mining on the
    # same 512-row tall point as the direct showcase above.  Its
    # ``direct`` column records the wall-clock ratio against the single
    # global enumeration and asserts hybrid == direct bit for bit on
    # every run of the harness; the ``hybrid`` block records the
    # bounded-memory evidence (peak resident cells vs matrix size).
    Workload("tall-hybrid-512-bitset-k2", "tall-1k", "hybrid", "bitset",
             k=2, fraction=0.7, scale=0.5, backends=("int", "numpy"),
             measure_parallel=False),
)

# Three workloads: a fast bitset sanity point, a k=100 tree mine that
# runs long enough (~10ms serial) to carry a meaningful wall-clock
# comparison — sub-millisecond mines drown in scheduler jitter, so the
# regression gate needs at least one entry above the noise floor — and a
# 128-row tall point that keeps the tall generator + per-backend columns
# exercised on every CI run (small enough for seconds-long smoke, so it
# gates regressions; the >=1.5x numpy win is evidenced by the full
# profile's 512-row entry).
QUICK_WORKLOADS = (
    Workload("quick-topk-bitset-k5", "ALL", "topk", "bitset", k=5),
    Workload("quick-topk-tree-k100", "ALL", "topk", "tree", k=100),
    Workload("quick-tall-topk-bitset-k2", "tall-1k", "topk", "bitset",
             k=2, fraction=0.7, scale=0.125, backends=("int", "numpy"),
             measure_parallel=False),
    Workload("quick-tall-hybrid-bitset-k2", "tall-1k", "hybrid", "bitset",
             k=2, fraction=0.7, scale=0.125, backends=("int", "numpy"),
             measure_parallel=False),
)


@dataclass
class BenchReport:
    """Everything ``repro bench`` measured, JSON-ready."""

    host: dict
    config: dict
    benchmarks: list[dict] = field(default_factory=list)
    created_at: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "created_at": self.created_at,
            "host": self.host,
            "config": self.config,
            "benchmarks": self.benchmarks,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"repro bench — {len(self.benchmarks)} workloads, "
            f"cpu_count={self.host['cpu_count']}"
        ]
        for entry in self.benchmarks:
            parts = [
                f"{entry['name']}: serial "
                f"{format_seconds(entry['serial_seconds'])}"
            ]
            direct = entry.get("direct")
            if direct is not None:
                check = "ok" if direct["identical_output"] else "MISMATCH"
                parts.append(
                    f"direct {format_seconds(direct['seconds'])} "
                    f"(x{direct['speedup']:.2f}, {check})"
                )
            for backend_name, measured in entry.get("backends", {}).items():
                check = "ok" if measured["identical_output"] else "MISMATCH"
                parts.append(
                    f"{backend_name} {format_seconds(measured['seconds'])} "
                    f"(x{measured['speedup']:.2f}, {check})"
                )
            auto_backend = entry.get("auto_backend")
            if auto_backend is not None:
                check = "ok" if auto_backend["identical_output"] else "MISMATCH"
                parts.append(
                    f"auto-backend[{auto_backend['chose_backend']}] "
                    f"{format_seconds(auto_backend['seconds'])} "
                    f"(x{auto_backend['speedup']:.2f}, {check})"
                )
            for jobs, measured in sorted(
                entry["parallel"].items(), key=lambda kv: int(kv[0])
            ):
                check = "ok" if measured["identical_output"] else "MISMATCH"
                over = "!" if measured.get("oversubscribed") else ""
                parts.append(
                    f"{jobs}j{over} {format_seconds(measured['seconds'])} "
                    f"(x{measured['speedup']:.2f}, {check})"
                )
            auto = entry.get("auto")
            if auto is not None:
                check = "ok" if auto["identical_output"] else "MISMATCH"
                plan = "serial" if auto["chose_serial"] else "parallel"
                parts.append(
                    f"auto[{plan}] {format_seconds(auto['seconds'])} "
                    f"(x{auto['speedup']:.2f}, {check})"
                )
            lines.append("  " + " | ".join(parts))
        if self.host["cpu_count"] < max(
            (int(jobs) for entry in self.benchmarks
             for jobs in entry["parallel"]),
            default=1,
        ):
            lines.append(
                "  note: worker count exceeds host cores; measurements "
                "flagged '!' are oversubscribed and say nothing about "
                "the backend"
            )
        return lines


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _farmer_identical(a: FarmerResult, b: FarmerResult) -> bool:
    key = lambda g: (g.antecedent, g.consequent, g.row_set, g.support,
                     g.confidence)
    return list(map(key, a.groups)) == list(map(key, b.groups))


def _measure(
    workload: Workload,
    scale: float,
    jobs: Sequence[int],
    repeats: int,
) -> dict:
    if workload.scale is not None:
        scale = workload.scale
    if workload.dataset.startswith("tall-"):
        train = generate_tall_cohort(workload.dataset, scale=scale)
    else:
        train = load_benchmark(workload.dataset, scale=scale).train_items
    minsup = relative_minsup(train, 1, workload.fraction)
    if workload.miner == "topk":
        serial_fn = lambda backend=None: mine_topk(
            train, 1, minsup, k=workload.k, engine=workload.engine,
            backend=backend,
        )
        parallel_fn = lambda n: mine_topk_parallel(
            train, 1, minsup, k=workload.k, engine=workload.engine, n_jobs=n
        )
        identical = results_equal
    elif workload.miner == "hybrid":
        serial_fn = lambda backend=None: mine_topk_hybrid(
            train, 1, minsup, k=workload.k, engine=workload.engine,
            backend=backend,
        )
        parallel_fn = lambda n: mine_topk_hybrid(
            train, 1, minsup, k=workload.k, engine=workload.engine, n_jobs=n
        )
        identical = results_equal
    else:
        serial_fn = lambda backend=None: mine_farmer(
            train, 1, minsup, minconf=workload.minconf,
            engine=workload.engine, backend=backend,
        )
        parallel_fn = lambda n: mine_farmer_parallel(
            train, 1, minsup, minconf=workload.minconf,
            engine=workload.engine, n_jobs=n,
        )
        identical = _farmer_identical
    serial_seconds, serial_result = _best_of(serial_fn, repeats)
    cpu_count = os.cpu_count() or 1
    entry = {
        "name": workload.name,
        "dataset": workload.dataset,
        "miner": workload.miner,
        "engine": workload.engine,
        "k": workload.k,
        "minsup": minsup,
        "fraction": workload.fraction,
        "scale": scale,
        "n_rows": train.n_rows,
        "serial_seconds": serial_seconds,
        "serial_nodes_visited": serial_result.stats.nodes_visited,
        "backends": {},
        "parallel": {},
    }
    if workload.miner == "hybrid":
        # Reference column: the direct miner on the identical inputs.
        # identical_output is the hybrid == direct claim, asserted on
        # every harness run; speedup is direct_seconds/serial_seconds
        # (> 1 means hybrid beat the single global enumeration).
        direct_seconds, direct_result = _best_of(
            lambda: mine_topk(
                train, 1, minsup, k=workload.k, engine=workload.engine
            ),
            repeats,
        )
        entry["direct"] = {
            "seconds": direct_seconds,
            "speedup": (
                direct_seconds / serial_seconds if serial_seconds > 0 else 0.0
            ),
            "identical_output": results_equal(serial_result, direct_result),
        }
        hybrid_stats = serial_result.hybrid_stats
        entry["hybrid"] = {
            "n_partitions": hybrid_stats.n_partitions,
            "total_cells": hybrid_stats.total_cells,
            "peak_resident_cells": hybrid_stats.peak_resident_cells,
        }
    # One serial column per available bitset backend (repro.core.backends):
    # the default serial_seconds above ran under the ambient resolution,
    # these pin each backend explicitly and assert bit-identical output.
    backend_names = (
        available_backends()
        if workload.backends is None
        else tuple(
            name for name in workload.backends
            if name in available_backends()
        )
    )
    for backend_name in backend_names:
        seconds, result = _best_of(
            lambda: serial_fn(backend=backend_name), repeats
        )
        entry["backends"][backend_name] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else 0.0,
            "identical_output": identical(serial_result, result),
            "nodes_visited": result.stats.nodes_visited,
        }
    # The backend="auto" column reports what the planner actually chose
    # (counted via auto_backend_stats, not recomputed), so the committed
    # numbers cannot silently claim a backend the run never used.
    choices_before = auto_backend_stats()
    auto_backend_seconds, result = _best_of(
        lambda: serial_fn(backend="auto"), repeats
    )
    choices = {
        name: count - choices_before.get(name, 0)
        for name, count in auto_backend_stats().items()
    }
    entry["auto_backend"] = {
        "seconds": auto_backend_seconds,
        "speedup": (
            serial_seconds / auto_backend_seconds
            if auto_backend_seconds > 0 else 0.0
        ),
        "identical_output": identical(serial_result, result),
        "chose_backend": max(choices, key=lambda name: choices[name]),
    }
    if not workload.measure_parallel:
        return entry
    for n_jobs in jobs:
        seconds, result = _best_of(lambda: parallel_fn(n_jobs), repeats)
        entry["parallel"][str(n_jobs)] = {
            "seconds": seconds,
            "speedup": serial_seconds / seconds if seconds > 0 else 0.0,
            "identical_output": identical(serial_result, result),
            "nodes_visited": result.stats.nodes_visited,
            # Workers beyond the host's cores cannot run concurrently;
            # such a point measures scheduling overhead, not the backend,
            # and must not back a speedup claim.
            "oversubscribed": n_jobs > cpu_count,
        }
    # The planner path is measured unconditionally: "auto" must never be
    # meaningfully slower than whatever it picked against (the acceptance
    # bar is within 5% of serial on serial-sized workloads).
    fallbacks_before = pool_stats()["planner_serial_fallbacks"]
    auto_seconds, auto_result = _best_of(lambda: parallel_fn(AUTO_JOBS), repeats)
    chose_serial = pool_stats()["planner_serial_fallbacks"] > fallbacks_before
    entry["auto"] = {
        "seconds": auto_seconds,
        "speedup": serial_seconds / auto_seconds if auto_seconds > 0 else 0.0,
        "identical_output": identical(serial_result, auto_result),
        "chose_serial": chose_serial,
    }
    return entry


def run_bench(
    scale: float = 0.25,
    jobs: Sequence[int] = (2, 4),
    repeats: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[Workload]] = None,
    include_quick: bool = False,
) -> BenchReport:
    """Time every workload serially and at each worker count.

    ``quick`` switches to the CI smoke profile: two small workloads, two
    workers, three repetitions, scale 0.05 — a few seconds end to end
    (best-of-3 because the quick numbers feed the ``--compare``
    regression gate, where a single noisy sample would flake).
    ``include_quick`` appends the quick workloads (measured at the quick
    profile's scale and worker count) to a full run, so the committed
    baseline contains the exact entries a CI ``--quick --compare`` run
    will look up.
    """
    if quick:
        workloads = QUICK_WORKLOADS if workloads is None else workloads
        jobs = QUICK_JOBS
        repeats = 3
        scale = min(scale, 0.05)
    elif workloads is None:
        workloads = DEFAULT_WORKLOADS
    report = BenchReport(
        host={
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
        },
        config={
            "scale": scale,
            "jobs": [int(n) for n in jobs],
            "repeats": repeats,
            "quick": quick,
            "include_quick": include_quick,
        },
    )
    for workload in workloads:
        report.benchmarks.append(_measure(workload, scale, jobs, repeats))
    if include_quick and not quick:
        for workload in QUICK_WORKLOADS:
            report.benchmarks.append(
                _measure(workload, min(scale, 0.05), QUICK_JOBS, repeats)
            )
    return report


def write_report(report: BenchReport, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
    )


# A serial time more than this factor above the baseline fails the
# comparison.  Generous on purpose: CI containers are noisy and the
# committed baseline may come from different hardware; the gate exists to
# catch algorithmic regressions (2x+), not scheduler jitter.
REGRESSION_FACTOR = 2.0

# A ratio alone cannot condemn a sub-millisecond measurement: on a busy
# CI runner a ~1ms mine routinely doubles from scheduler jitter.  A
# regression must also be slower in absolute terms by at least this
# much, so only workloads big enough to time reliably can fail the gate.
REGRESSION_MIN_DELTA_SECONDS = 0.005

# Keys that must match for a baseline entry to be comparable: if any
# differ, the workload itself changed and a wall-clock diff is
# meaningless.
_COMPARE_KEYS = ("dataset", "miner", "engine", "k", "minsup", "n_rows")

# What to run (and commit) when the gate reports a missing baseline
# entry, surfaced verbatim in the failure line.
_REBASELINE_COMMAND = (
    "PYTHONPATH=src python -m repro.bench --include-quick "
    "--output BENCH_core.json"
)


def _is_regression(
    base_seconds: float, seconds: float, regression_factor: float
) -> bool:
    return (
        base_seconds > 0
        and seconds > regression_factor * base_seconds
        and seconds - base_seconds > REGRESSION_MIN_DELTA_SECONDS
    )


def compare_reports(
    current: dict,
    baseline: dict,
    regression_factor: float = REGRESSION_FACTOR,
) -> tuple[list[str], bool]:
    """Diff ``current`` against ``baseline`` (both ``as_dict`` payloads).

    Benchmarks are matched by name and only compared when their workload
    configuration is identical (:data:`_COMPARE_KEYS`).  Returns the
    human-readable diff lines and an ``ok`` flag that is False iff

    * any compared benchmark's ``serial_seconds`` (or per-backend
      ``backends.<name>.seconds`` column) regressed by more than
      ``regression_factor`` *and* by more than
      :data:`REGRESSION_MIN_DELTA_SECONDS` in absolute terms, or
    * a current entry (or one of its backend columns) has no comparable
      baseline entry.  A silently skipped workload is a hole in the
      regression gate — the fix is to regenerate and commit the
      baseline, and the failure line says exactly how.

    The reverse direction stays a note, not a failure: a baseline
    measured with an optional backend (numpy) still gates a host where
    that backend is unavailable.
    """
    lines: list[str] = []
    ok = True
    current_host = current.get("host", {})
    baseline_host = baseline.get("host", {})
    if (
        current_host.get("platform") != baseline_host.get("platform")
        or current_host.get("cpu_count") != baseline_host.get("cpu_count")
    ):
        lines.append(
            "  note: baseline host differs "
            f"({baseline_host.get('platform')}, "
            f"{baseline_host.get('cpu_count')} cores vs "
            f"{current_host.get('platform')}, "
            f"{current_host.get('cpu_count')} cores); wall-clock deltas "
            "partly reflect hardware"
        )
    baseline_by_name = {
        entry.get("name"): entry for entry in baseline.get("benchmarks", [])
    }
    compared = 0
    for entry in current.get("benchmarks", []):
        name = entry.get("name")
        base = baseline_by_name.get(name)
        if base is None:
            ok = False
            lines.append(
                f"  {name}: MISSING BASELINE — no entry in the committed "
                f"report; regenerate it with: {_REBASELINE_COMMAND}"
            )
            continue
        mismatched = [
            key for key in _COMPARE_KEYS if entry.get(key) != base.get(key)
        ]
        if mismatched:
            lines.append(
                f"  {name}: workload changed ({', '.join(mismatched)}) "
                "— skipped"
            )
            continue
        compared += 1
        base_serial = base["serial_seconds"]
        serial = entry["serial_seconds"]
        speedup = base_serial / serial if serial > 0 else float("inf")
        regressed = _is_regression(base_serial, serial, regression_factor)
        if regressed:
            ok = False
        status = "REGRESSION" if regressed else (
            "faster" if speedup >= 1.0 else "slower"
        )
        lines.append(
            f"  {name}: serial {format_seconds(base_serial)} -> "
            f"{format_seconds(serial)} (x{speedup:.2f}, {status})"
        )
        base_backends = base.get("backends", {})
        for backend_name, measured in entry.get("backends", {}).items():
            base_measured = base_backends.get(backend_name)
            if base_measured is None:
                ok = False
                lines.append(
                    f"  {name}[{backend_name}]: MISSING BASELINE — no "
                    f"backend column in the committed report; regenerate "
                    f"it with: {_REBASELINE_COMMAND}"
                )
                continue
            base_seconds = base_measured["seconds"]
            seconds = measured["seconds"]
            backend_speedup = (
                base_seconds / seconds if seconds > 0 else float("inf")
            )
            regressed = _is_regression(
                base_seconds, seconds, regression_factor
            )
            if regressed:
                ok = False
            status = "REGRESSION" if regressed else (
                "faster" if backend_speedup >= 1.0 else "slower"
            )
            lines.append(
                f"  {name}[{backend_name}]: "
                f"{format_seconds(base_seconds)} -> "
                f"{format_seconds(seconds)} (x{backend_speedup:.2f}, "
                f"{status})"
            )
        for backend_name in base_backends:
            if backend_name not in entry.get("backends", {}):
                lines.append(
                    f"  {name}[{backend_name}]: baseline-only backend "
                    "(unavailable on this host) — skipped"
                )
        # The auto column is only comparable when both runs resolved to
        # the same backend (a host without numpy legitimately picks int
        # where the baseline picked numpy — different code, not a
        # regression).
        auto_backend = entry.get("auto_backend")
        base_auto = base.get("auto_backend")
        if auto_backend is not None and base_auto is not None:
            if auto_backend["chose_backend"] != base_auto["chose_backend"]:
                lines.append(
                    f"  {name}[auto]: chose "
                    f"{auto_backend['chose_backend']!r} vs baseline "
                    f"{base_auto['chose_backend']!r} — skipped"
                )
            else:
                base_seconds = base_auto["seconds"]
                seconds = auto_backend["seconds"]
                auto_speedup = (
                    base_seconds / seconds if seconds > 0 else float("inf")
                )
                regressed = _is_regression(
                    base_seconds, seconds, regression_factor
                )
                if regressed:
                    ok = False
                status = "REGRESSION" if regressed else (
                    "faster" if auto_speedup >= 1.0 else "slower"
                )
                lines.append(
                    f"  {name}[auto->{auto_backend['chose_backend']}]: "
                    f"{format_seconds(base_seconds)} -> "
                    f"{format_seconds(seconds)} (x{auto_speedup:.2f}, "
                    f"{status})"
                )
    header = (
        f"baseline comparison — {compared} compared, "
        f"{'ok' if ok else 'REGRESSED'} "
        f"(fail threshold: serial > {regression_factor:g}x baseline, "
        "or a current entry/backend column with no baseline)"
    )
    return [header, *lines], ok


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``benchmarks/bench_runner.py`` wraps it)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_core.json")
    parser.add_argument("--jobs", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--include-quick", action="store_true")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="diff against this committed report; exit "
                             "non-zero on a serial-time regression")
    parser.add_argument("--only", metavar="SUBSTRING",
                        help="run only workloads whose name contains this "
                             "substring (applied to the active profile)")
    args = parser.parse_args(argv)
    workloads: Optional[tuple[Workload, ...]] = None
    if args.only:
        pool = QUICK_WORKLOADS if args.quick else DEFAULT_WORKLOADS
        workloads = tuple(w for w in pool if args.only in w.name)
        if not workloads:
            names = ", ".join(w.name for w in pool)
            print(f"--only {args.only!r} matches no workload; "
                  f"available: {names}")
            return 2
    # Read the baseline before writing, in case --output points at it.
    baseline = None
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text(encoding="utf-8"))
    report = run_bench(
        scale=args.scale, jobs=tuple(args.jobs), repeats=args.repeats,
        quick=args.quick, include_quick=args.include_quick,
        workloads=workloads,
    )
    write_report(report, args.output)
    for line in report.summary_lines():
        print(line)
    print(f"wrote {args.output}")
    if baseline is not None:
        lines, ok = compare_reports(report.as_dict(), baseline)
        for line in lines:
            print(line)
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
