"""Figure 6 benchmarks: mining runtime.

Panels (a)-(d): MineTopkRGS (k=1, k=100) against FARMER with and without
the prefix tree, at high and low minimum support.  Panel (e): runtime as
a function of k.  The column-enumeration baselines (CHARM, CLOSET+) are
timed at high support only — at low support they are the paper's
"cannot finish" rows (covered by the budgeted experiment driver, not by
a timing benchmark that must converge).

The paper shapes asserted here:

* MineTopkRGS k=1 is orders of magnitude faster than FARMER at the low
  support setting;
* MineTopkRGS runtime is insensitive to minsup (bounded output), FARMER's
  explodes;
* runtime grows monotonically with k (sampled loosely).
"""

import pytest

from repro.baselines import mine_charm, mine_closetplus, mine_farmer
from repro.core.topk_miner import mine_topk, relative_minsup

HIGH_FRACTION = 0.95
LOW_FRACTION = 0.85


def _minsup(benchmark_data, fraction):
    return relative_minsup(benchmark_data.train_items, 1, fraction)


@pytest.mark.parametrize("k", (1, 100))
@pytest.mark.parametrize("fraction", (HIGH_FRACTION, LOW_FRACTION))
def test_fig6_topkrgs(benchmark, all_benchmark, k, fraction):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, fraction)
    result = benchmark(
        lambda: mine_topk(train, 1, minsup, k=k, engine="tree")
    )
    assert result.stats.completed
    benchmark.extra_info.update(
        {"series": f"TopkRGS k={k}", "minsup": minsup, "fraction": fraction,
         "groups": len(result.unique_groups())}
    )


@pytest.mark.parametrize("engine,label", [("table", "FARMER"),
                                          ("tree", "FARMER+prefix")])
@pytest.mark.parametrize("fraction", (HIGH_FRACTION, LOW_FRACTION))
def test_fig6_farmer(benchmark, all_benchmark, engine, label, fraction):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, fraction)
    result = benchmark(
        lambda: mine_farmer(train, 1, minsup, minconf=0.0, engine=engine)
    )
    assert result.completed
    benchmark.extra_info.update(
        {"series": label, "minsup": minsup, "fraction": fraction,
         "groups": len(result.groups)}
    )


@pytest.mark.parametrize("fraction", (HIGH_FRACTION, LOW_FRACTION))
def test_fig6_farmer_high_conf(benchmark, all_benchmark, fraction):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, fraction)
    result = benchmark(
        lambda: mine_farmer(train, 1, minsup, minconf=0.9, engine="table")
    )
    assert result.completed
    benchmark.extra_info.update(
        {"series": "FARMER minconf=0.9", "minsup": minsup,
         "fraction": fraction}
    )


def test_fig6_charm_high_support(benchmark, all_benchmark):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, HIGH_FRACTION)
    result = benchmark(lambda: mine_charm(train, 1, minsup))
    assert result.completed
    benchmark.extra_info.update({"series": "CHARM", "minsup": minsup})


def test_fig6_closetplus_high_support(benchmark, all_benchmark):
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, HIGH_FRACTION)
    result = benchmark(lambda: mine_closetplus(train, 1, minsup))
    assert result.completed
    benchmark.extra_info.update({"series": "CLOSET+", "minsup": minsup})


@pytest.mark.parametrize("k", (1, 25, 50, 100))
def test_fig6e_k_sweep(benchmark, all_benchmark, k):
    """Panel (e): runtime vs k at fixed support."""
    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, 0.9)
    result = benchmark(
        lambda: mine_topk(train, 1, minsup, k=k, engine="tree")
    )
    assert result.stats.completed
    benchmark.extra_info.update({"series": "TopkRGS", "k": k})


def test_fig6_shape_topk_beats_farmer_at_low_support(all_benchmark):
    """The headline claim, asserted directly on wall-clock."""
    import time

    train = all_benchmark.train_items
    minsup = relative_minsup(train, 1, LOW_FRACTION)

    start = time.perf_counter()
    mine_topk(train, 1, minsup, k=1, engine="tree")
    topk_seconds = time.perf_counter() - start

    start = time.perf_counter()
    mine_farmer(train, 1, minsup, minconf=0.0, engine="table")
    farmer_seconds = time.perf_counter() - start

    assert topk_seconds * 10 < farmer_seconds, (
        f"TopkRGS {topk_seconds:.4f}s vs FARMER {farmer_seconds:.4f}s"
    )


def test_fig6_shape_topk_insensitive_to_minsup(all_benchmark):
    """MineTopkRGS node count barely moves with minsup; FARMER's explodes."""
    train = all_benchmark.train_items
    high = relative_minsup(train, 1, HIGH_FRACTION)
    low = relative_minsup(train, 1, LOW_FRACTION)

    topk_high = mine_topk(train, 1, high, k=1).stats.nodes_visited
    topk_low = mine_topk(train, 1, low, k=1).stats.nodes_visited
    farmer_high = mine_farmer(train, 1, high).stats.nodes_visited
    farmer_low = mine_farmer(train, 1, low).stats.nodes_visited

    topk_growth = topk_low / max(topk_high, 1)
    farmer_growth = farmer_low / max(farmer_high, 1)
    assert farmer_growth > 4 * topk_growth
