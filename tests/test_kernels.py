"""The iterative enumeration kernels vs the recursive reference walkers.

The hot-path rewrite turned the three recursive engine walkers into
explicit-stack kernels with incremental closure/rest-mask maintenance
and a per-view ``SupportIndex``.  The contract is *total* equivalence:
for every engine and every §4.1.1 optimization-flag combination the
kernels must visit the same nodes in the same order, fire the same
pruning rules, and emit the same groups — so both the finalized results
and every ``MinerStats`` counter must match exactly.

The reference implementations below are the pre-rewrite recursive
walkers, kept verbatim (minus the hot-path local bindings) as executable
specification.  Cases come from the audit generator, so the comparison
covers the same degenerate shapes (duplicates, empty rows, single class,
tie-heavy lists) the differential audit sweeps.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import product
from typing import Optional, Sequence

import pytest

from repro.audit.generator import generate_cases
from repro.baselines.farmer import FarmerPolicy
from repro.core.backends import available_backends
from repro.core.bitset import iter_indices, mask_below
from repro.core.enumeration import ENGINES, MinerStats, run_enumeration
from repro.core.prefix_tree import PrefixTree
from repro.core.topk_miner import TopkPolicy
from repro.core.view import MiningView

# The 2^3 combinations of the paper's §4.1.1 optimizations.
FLAG_COMBOS = tuple(
    {
        "initialize_single_items": init,
        "dynamic_minsup": dynamic,
        "use_topk_pruning": pruning,
    }
    for init, dynamic, pruning in product((False, True), repeat=3)
)

CASES = generate_cases(seed=7, n_cases=8)


# ---------------------------------------------------------------------------
# Reference implementations: the recursive walkers the kernels replaced.
# ---------------------------------------------------------------------------


def _reference_bitset(view, policy, stats, first_rows=None) -> None:
    item_rows = view.item_rows
    row_items = view.row_items
    positive_mask = view.positive_mask
    bit_count = int.bit_count

    def recurse(x_bits, x_p, x_n, items, cand_bits, allowed) -> None:
        remaining = cand_bits
        rem_p = bit_count(cand_bits & positive_mask)
        rem_n = bit_count(cand_bits) - rem_p
        for r in iter_indices(cand_bits):
            r_bit = 1 << r
            remaining &= ~r_bit
            if r_bit & positive_mask:
                rem_p -= 1
                seed_p, seed_n = x_p + 1, x_n
            else:
                rem_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            stats.nodes_visited += 1
            threshold_bits = ((x_bits | r_bit) | remaining) & positive_mask
            if policy.loose_prunable(seed_p, seed_n, rem_p, rem_n,
                                     threshold_bits):
                stats.loose_pruned += 1
                continue
            present = row_items[r]
            new_items = [i for i in items if i in present]
            if not new_items:
                continue
            closure = item_rows[new_items[0]]
            union = closure
            for item in new_items[1:]:
                rows = item_rows[item]
                closure &= rows
                union |= rows
            if closure & (r_bit - 1) & ~x_bits:
                stats.backward_pruned += 1
                continue
            new_cand = remaining & union & ~closure
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = bit_count(new_cand & positive_mask)
            new_r_n = bit_count(new_cand) - m_p
            new_threshold = (closure | new_cand) & positive_mask
            if policy.tight_prunable(new_x_p, new_x_n, m_p, new_r_n,
                                     new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit(new_items, closure, new_x_p, new_x_n)
            if new_cand:
                recurse(closure, new_x_p, new_x_n, new_items, new_cand, None)

    recurse(0, 0, 0, list(view.frequent_items), mask_below(view.n_rows),
            first_rows)


def _reference_table(view, policy, stats, first_rows=None) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    bit_count = int.bit_count

    root_tuples = [
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    ]

    def recurse(x_bits, x_p, x_n, tuples, cand, allowed) -> None:
        rest_p = 0
        rest_pos_bits = 0
        for row in cand:
            if row < n_positive:
                rest_p += 1
                rest_pos_bits |= 1 << row
        rest_n = len(cand) - rest_p
        for r in cand:
            r_bit = 1 << r
            if r < n_positive:
                rest_p -= 1
                rest_pos_bits &= ~r_bit
                seed_p, seed_n = x_p + 1, x_n
            else:
                rest_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            stats.nodes_visited += 1
            threshold_bits = ((x_bits | r_bit) & positive_mask) | rest_pos_bits
            if policy.loose_prunable(seed_p, seed_n, rest_p, rest_n,
                                     threshold_bits):
                stats.loose_pruned += 1
                continue
            kept = []
            for item, rows in tuples:
                position = bisect_left(rows, r)
                if position < len(rows) and rows[position] == r:
                    kept.append((item, rows))
            if not kept:
                continue
            freq: dict = {}
            for _item, rows in kept:
                for row in rows:
                    freq[row] = freq.get(row, 0) + 1
            n_tuples = len(kept)
            closure = 0
            backward = False
            for row, count in freq.items():
                if count == n_tuples:
                    if row < r and not x_bits >> row & 1:
                        backward = True
                        break
                    closure |= 1 << row
            if backward:
                stats.backward_pruned += 1
                continue
            new_cand = sorted(
                row for row, count in freq.items()
                if row > r and count < n_tuples
            )
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = 0
            new_cand_pos_bits = 0
            for row in new_cand:
                if row < n_positive:
                    m_p += 1
                    new_cand_pos_bits |= 1 << row
            new_r_n = len(new_cand) - m_p
            new_threshold = (closure & positive_mask) | new_cand_pos_bits
            if policy.tight_prunable(new_x_p, new_x_n, m_p, new_r_n,
                                     new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit([item for item, _rows in kept], closure, new_x_p,
                        new_x_n)
            if new_cand:
                recurse(closure, new_x_p, new_x_n, kept, new_cand, None)

    recurse(0, 0, 0, root_tuples, list(range(view.n_rows)), first_rows)


def _reference_tree(view, policy, stats, first_rows=None) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    item_rows = view.item_rows
    bit_count = int.bit_count

    root_tree = PrefixTree.from_items(
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    )

    def recurse(x_bits, x_p, x_n, tree, allowed) -> None:
        cand = [row for row in tree.rows_present() if not x_bits >> row & 1]
        rest_p = 0
        rest_pos_bits = 0
        for row in cand:
            if row < n_positive:
                rest_p += 1
                rest_pos_bits |= 1 << row
        rest_n = len(cand) - rest_p
        for r in cand:
            r_bit = 1 << r
            if r < n_positive:
                rest_p -= 1
                rest_pos_bits &= ~r_bit
                seed_p, seed_n = x_p + 1, x_n
            else:
                rest_n -= 1
                seed_p, seed_n = x_p, x_n + 1
            if allowed is not None and not allowed & r_bit:
                continue
            stats.nodes_visited += 1
            threshold_bits = ((x_bits | r_bit) & positive_mask) | rest_pos_bits
            if policy.loose_prunable(seed_p, seed_n, rest_p, rest_n,
                                     threshold_bits):
                stats.loose_pruned += 1
                continue
            projected = tree.project(r)
            if projected.n_items == 0:
                continue
            new_items = projected.all_items()
            closure = item_rows[new_items[0]]
            for item in new_items[1:]:
                closure &= item_rows[item]
            if closure & (r_bit - 1) & ~x_bits:
                stats.backward_pruned += 1
                continue
            freq = projected.row_frequencies()
            new_cand_rows = [row for row in freq if not closure >> row & 1]
            new_x_p = bit_count(closure & positive_mask)
            new_x_n = bit_count(closure) - new_x_p
            m_p = 0
            new_cand_pos_bits = 0
            for row in new_cand_rows:
                if row < n_positive:
                    m_p += 1
                    new_cand_pos_bits |= 1 << row
            new_r_n = len(new_cand_rows) - m_p
            new_threshold = (closure & positive_mask) | new_cand_pos_bits
            if policy.tight_prunable(new_x_p, new_x_n, m_p, new_r_n,
                                     new_threshold):
                stats.tight_pruned += 1
                continue
            stats.groups_emitted += 1
            policy.emit(new_items, closure, new_x_p, new_x_n)
            if new_cand_rows:
                recurse(closure, new_x_p, new_x_n, projected, None)

    recurse(0, 0, 0, root_tree, first_rows)


REFERENCE_WALKERS = {
    "bitset": _reference_bitset,
    "table": _reference_table,
    "tree": _reference_tree,
}

COUNTERS = (
    "nodes_visited",
    "groups_emitted",
    "loose_pruned",
    "tight_pruned",
    "backward_pruned",
)


def _run_reference(view, policy, engine: str,
                   first_rows: Optional[int] = None) -> MinerStats:
    stats = MinerStats(engine=engine)
    REFERENCE_WALKERS[engine](view, policy, stats, first_rows)
    return stats


def _snapshot(policy: TopkPolicy) -> list:
    return [
        [
            (g.antecedent, g.consequent, g.row_set, g.support, g.confidence)
            for g in topk.groups
        ]
        for topk in policy.lists
    ]


def _counters(stats: MinerStats) -> dict:
    return {name: getattr(stats, name) for name in COUNTERS}


class TestKernelsMatchReference:
    """Iterative kernels == recursive walkers, counter for counter."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "flags", FLAG_COMBOS,
        ids=["".join("ft"[v] for v in combo.values()) for combo in FLAG_COMBOS],
    )
    def test_topk_flag_combos(self, engine, flags):
        for case in CASES:
            view = MiningView(case.dataset, case.consequent, case.minsup)

            reference_policy = TopkPolicy(view, case.k, **flags)
            reference_stats = _run_reference(view, reference_policy, engine)

            kernel_policy = TopkPolicy(view, case.k, **flags)
            kernel_stats = run_enumeration(view, kernel_policy, engine=engine)

            label = f"case {case.index} ({case.shape}), engine {engine}"
            assert _counters(kernel_stats) == _counters(reference_stats), label
            assert _snapshot(kernel_policy) == _snapshot(reference_policy), label

    @pytest.mark.parametrize("engine", ENGINES)
    def test_farmer(self, engine):
        for case in CASES:
            view = MiningView(case.dataset, case.consequent, case.minsup)

            reference_policy = FarmerPolicy(view, minconf=0.5)
            reference_stats = _run_reference(view, reference_policy, engine)

            kernel_policy = FarmerPolicy(view, minconf=0.5)
            kernel_stats = run_enumeration(view, kernel_policy, engine=engine)

            label = f"case {case.index} ({case.shape}), engine {engine}"
            assert _counters(kernel_stats) == _counters(reference_stats), label
            assert [
                (g.antecedent, g.consequent, g.row_set, g.support, g.confidence)
                for g in kernel_policy.groups
            ] == [
                (g.antecedent, g.consequent, g.row_set, g.support, g.confidence)
                for g in reference_policy.groups
            ], label

    @pytest.mark.parametrize("engine", ENGINES)
    def test_first_rows_sharding(self, engine):
        """The root-level `allowed` filter behaves identically (the
        contract the parallel shard workers rely on): filtered roots are
        skipped before being charged, deeper levels are never filtered."""
        case = CASES[0]
        view = MiningView(case.dataset, case.consequent, case.minsup)
        n_rows = view.n_rows
        if n_rows < 2:
            pytest.skip("case too small to shard")
        shard = mask_below((n_rows + 1) // 2)  # first half of the roots

        reference_policy = TopkPolicy(view, case.k)
        reference_stats = _run_reference(view, reference_policy, engine,
                                         first_rows=shard)

        kernel_policy = TopkPolicy(view, case.k)
        kernel_stats = run_enumeration(view, kernel_policy, engine=engine,
                                       first_rows=shard)

        assert _counters(kernel_stats) == _counters(reference_stats)
        assert _snapshot(kernel_policy) == _snapshot(reference_policy)


class TestKernelsAcrossBackends:
    """Engines × §4.1.1 flags × bitset backends: every backend must
    reproduce the ``int`` backend's groups *and* MinerStats exactly.

    The comparison is per engine across backends — engines legitimately
    differ from each other in counters (the tree engine only enumerates
    rows present in the prefix tree, so it visits fewer nodes), but a
    backend swap must be invisible: same nodes, same prunes, same
    groups, counter for counter.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "flags", FLAG_COMBOS,
        ids=["".join("ft"[v] for v in combo.values()) for combo in FLAG_COMBOS],
    )
    def test_topk_backend_identity(self, engine, flags):
        alternates = [
            name for name in available_backends() if name != "int"
        ]
        assert alternates, "packed backend must always be registered"
        for case in CASES:
            view = MiningView(
                case.dataset, case.consequent, case.minsup, backend="int"
            )
            policy = TopkPolicy(view, case.k, **flags)
            stats = run_enumeration(view, policy, engine=engine)
            expected = (_counters(stats), _snapshot(policy))

            for backend in alternates:
                other_view = MiningView(
                    case.dataset, case.consequent, case.minsup,
                    backend=backend,
                )
                other_policy = TopkPolicy(other_view, case.k, **flags)
                other_stats = run_enumeration(
                    other_view, other_policy, engine=engine
                )
                label = (
                    f"case {case.index} ({case.shape}), engine {engine}, "
                    f"backend {backend}"
                )
                assert (
                    _counters(other_stats), _snapshot(other_policy)
                ) == expected, label


class TestSupportIndex:
    """The per-view SupportIndex must be pure memoization: shared across
    runs without leaking any run's pruning decisions into the next."""

    def test_repeat_runs_identical(self):
        case = CASES[1]
        view = MiningView(case.dataset, case.consequent, case.minsup)
        outcomes = []
        for _ in range(3):
            policy = TopkPolicy(view, case.k)
            stats = run_enumeration(view, policy, engine="bitset")
            outcomes.append((_counters(stats), _snapshot(policy)))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_cached_view_reused(self):
        case = CASES[1]
        first = MiningView.cached(case.dataset, case.consequent, case.minsup)
        second = MiningView.cached(case.dataset, case.consequent, case.minsup)
        assert first is second
        assert first.support_index() is second.support_index()

    def test_support_mass(self):
        case = CASES[1]
        view = MiningView(case.dataset, case.consequent, case.minsup)
        index = view.support_index()
        expected = sum(
            int.bit_count(view.item_rows[item]) for item in view.frequent_items
        )
        assert index.support_mass == expected
