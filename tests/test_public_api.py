"""The package's public surface: imports, exports, version, cache config."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.data",
            "repro.baselines",
            "repro.classifiers",
            "repro.analysis",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_headline_workflow_symbols(self):
        # The symbols the README quickstart uses must stay importable.
        from repro import (  # noqa: F401
            find_lower_bounds,
            generate_paper_dataset,
            load_benchmark,
            make_figure1_example,
            mine_topk,
            relative_minsup,
        )


class TestCacheDirOverride:
    def test_env_override(self, monkeypatch, tmp_path):
        from repro.data.loaders import default_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_default_under_home(self, monkeypatch):
        from repro.data.loaders import default_cache_dir

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert "repro-topkrgs" in str(default_cache_dir())
