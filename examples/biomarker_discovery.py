"""Biomarker discovery on the prostate-cancer workload (Figure 8 style).

Mines the top-1 covering rule groups of the PC-shaped dataset, extracts
their shortest lower bounds, and studies which genes those diagnostic
rules actually use — setting occurrence counts against the chi-square
gene ranking the way the paper does when it nominates candidate
biomarkers (M61916, W72186, ... in the original data).

Run:  python examples/biomarker_discovery.py [--scale 0.25]
"""

import argparse

from repro import find_lower_bounds_batch, mine_topk, relative_minsup
from repro.analysis import (
    gene_chi_square_scores,
    gene_entropy_scores,
    gene_usage,
    item_scores,
    rank_genes,
)
from repro.data import generate_paper_dataset
from repro.data.discretize import EntropyDiscretizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--nl", type=int, default=20,
                        help="lower bounds per rule group")
    args = parser.parse_args()

    train, _test = generate_paper_dataset("PC", scale=args.scale)
    discretizer = EntropyDiscretizer().fit(train)
    items = discretizer.transform(train)
    print(f"PC workload: {items.n_rows} samples, "
          f"{discretizer.n_selected_genes} genes after discretization")

    scores = item_scores(items, gene_entropy_scores(items))
    rules = []
    for class_id in range(items.n_classes):
        minsup = relative_minsup(items, class_id, 0.7)
        result = mine_topk(items, class_id, minsup, k=1)
        groups = result.unique_groups()
        print(f"  class {items.class_names[class_id]!r}: "
              f"{len(groups)} distinct top-1 rule groups "
              f"(minsup={minsup})")
        for bounds in find_lower_bounds_batch(
            items, groups, nl=args.nl, item_scores=scores
        ).values():
            rules.extend(bounds)
    print(f"  {len(rules)} lower bound rules extracted")

    usage = gene_usage(items, rules)
    chi_ranks = rank_genes(gene_chi_square_scores(items))
    print(f"\n{len(usage)} genes participate in the diagnostic rules.")
    print("Candidate biomarkers (most used in rules):")
    ordered = sorted(usage.items(), key=lambda pair: (-pair[1], pair[0]))
    for gene, count in ordered[:10]:
        name = train.gene_names[gene]
        rank = chi_ranks.get(gene, len(chi_ranks))
        print(f"  {name}: occurs in {count} rules, chi-square rank {rank}")

    low_ranked = [
        gene
        for gene, count in usage.items()
        if chi_ranks.get(gene, 0) > len(chi_ranks) // 2
    ]
    print(f"\n{len(low_ranked)} of the rule-forming genes sit in the lower "
          "half of the chi-square ranking — the paper's observation that "
          "low-ranked genes supply necessary supplementary signal.")


if __name__ == "__main__":
    main()
