"""Fault injection for the parallel backend's crash-recovery supervisor.

Every recovery path of ``repro.parallel._execute`` is exercised here
deterministically through :class:`~repro.parallel.FaultPlan` instead of
being trusted:

* a worker killed mid-shard (``kill`` — the in-process stand-in for an
  OOM kill or a container runtime reaping the process) is retried on a
  healed pool and the merged result stays bit-identical to serial;
* a worker killed on *every* pool attempt exhausts the retry cap and the
  surviving shards degrade losslessly to serial in-process execution;
* a hung shard (``hang``) is bounded by the global time budget through
  the cancellation slot, not by luck;
* an ordinary exception in a shard (``raise``) is a hard failure: it
  propagates, and the not-yet-started sibling shards are cancelled
  instead of burning CPU unobserved (the pre-fix in-order ``.result()``
  loop left them running);
* the cancellation-slot lease degrades to watcher-free serial execution
  when every slot is taken, instead of raising (pre-fix the service
  turned that into a client-visible 500).

No test here may ever see a ``BrokenProcessPool``.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.parallel as parallel_mod
from repro.core.topk_miner import mine_topk
from repro.parallel import (
    AUTO_JOBS,
    FAULT_ANY,
    Fault,
    FaultPlan,
    InjectedFault,
    MineRequest,
    MinerPool,
    _execute,
    _merge_topk,
    mine_farmer_parallel,
    mine_topk_parallel,
    mine_topk_sharded,
    plan_shards,
    pool_stats,
    results_equal,
    shutdown_pool,
)
from repro.baselines.farmer import mine_farmer
from repro.core.hybrid import mine_topk_hybrid


@pytest.fixture
def serial_result(small_random):
    return mine_topk(small_random, 1, 2, k=4)


def _topk_request(**overrides):
    defaults = dict(consequent=1, minsup=2, k=4)
    defaults.update(overrides)
    return MineRequest(**defaults)


class TestFaultPlan:
    def test_parse_single_entry(self):
        plan = FaultPlan.parse("kill@0.0")
        assert plan.faults == (Fault(mode="kill", shard=0, attempt=0),)
        assert plan.find(0, 0).mode == "kill"
        assert plan.find(0, 1) is None
        assert plan.find(1, 0) is None

    def test_parse_multiple_entries_and_seconds(self):
        plan = FaultPlan.parse("kill@0.0;hang@1.0:30;delay@2.1:0.25")
        assert len(plan.faults) == 3
        assert plan.find(1, 0) == Fault(mode="hang", shard=1, attempt=0,
                                        seconds=30.0)
        assert plan.find(2, 1).seconds == 0.25

    def test_parse_wildcards(self):
        plan = FaultPlan.parse("kill@*.*")
        assert plan.faults[0].shard == FAULT_ANY
        assert plan.faults[0].attempt == FAULT_ANY
        for shard, attempt in ((0, 0), (7, 3)):
            assert plan.find(shard, attempt) is not None

    def test_parse_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultPlan.parse("explode@0.0")

    def test_parse_rejects_missing_target(self):
        with pytest.raises(ValueError, match="bad fault entry"):
            FaultPlan.parse("kill")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT", "kill@0.1")
        plan = FaultPlan.from_env()
        assert plan.find(0, 1).mode == "kill"


class TestCrashRecovery:
    def test_crash_on_first_attempt_recovers(self, small_random,
                                             serial_result):
        """Shard 0's worker dies on attempt 0: the supervisor heals the
        pool, resubmits the lost shards, and the merged result is
        bit-identical to serial — no BrokenProcessPool escapes."""
        before = pool_stats()
        result = mine_topk_parallel(
            small_random, 1, 2, k=4, n_jobs=2,
            fault=FaultPlan.parse("kill@0.0"),
        )
        after = pool_stats()
        assert results_equal(serial_result, result)
        assert result.stats.degraded is False  # recovered, not degraded
        assert after["shard_retries"] - before["shard_retries"] >= 1
        assert (after["pool_restarts_on_failure"]
                - before["pool_restarts_on_failure"]) >= 1
        assert (after["serial_degradations"]
                == before["serial_degradations"])

    def test_crash_on_retry_degrades_serially(self, small_random,
                                              serial_result):
        """Workers die on the first attempt *and* the retry: the retry
        cap trips and the remaining shards run serially in-process —
        still bit-identical, flagged degraded, counted exactly once."""
        before = pool_stats()
        result = mine_topk_parallel(
            small_random, 1, 2, k=4, n_jobs=2,
            fault=FaultPlan.parse("kill@*.*"),
        )
        after = pool_stats()
        assert results_equal(serial_result, result)
        assert result.stats.degraded is True
        assert after["serial_degradations"] - before["serial_degradations"] == 1
        assert after["shard_retries"] - before["shard_retries"] >= 1

    def test_crash_on_single_shard_retry_only(self, small_random,
                                              serial_result):
        """Kill only shard 0 on both pool attempts: every other shard
        completes on the pool and only the stubborn one degrades."""
        result = mine_topk_parallel(
            small_random, 1, 2, k=4, n_jobs=2,
            fault=FaultPlan.parse("kill@0.0;kill@0.1"),
        )
        assert results_equal(serial_result, result)
        assert result.stats.degraded is True

    def test_hang_until_timeout_is_bounded(self, small_random):
        """A shard hung for up to 30 s is released by the global time
        budget through the cancellation slot: the mine returns within
        the budget (plus watcher latency), never hanging the caller."""
        start = time.monotonic()
        result = mine_topk_parallel(
            small_random, 1, 2, k=4, n_jobs=2, time_budget=0.4,
            fault=FaultPlan.parse("hang@0.0:30"),
        )
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        # Cooperative cancellation: a shard small enough to finish under
        # the poll stride may still complete fully — in that case the
        # result must be the exact serial result.
        if result.stats.completed:
            assert results_equal(mine_topk(small_random, 1, 2, k=4), result)

    def test_crash_during_sharded_auto_jobs(self, small_random,
                                            serial_result, monkeypatch):
        """n_jobs="auto" forced into the parallel branch + a worker kill:
        the planner path recovers exactly like the explicit path."""
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(parallel_mod, "_AUTO_TOPK_SERIAL_UNITS", 0)
        results = mine_topk_sharded(
            small_random, [_topk_request()], n_jobs=AUTO_JOBS,
            fault=FaultPlan.parse("kill@0.0"),
        )
        assert len(results) == 1
        assert results_equal(serial_result, results[0])

    def test_farmer_crash_recovers(self, small_random):
        serial = mine_farmer(small_random, 1, 2)
        recovered = mine_farmer_parallel(
            small_random, 1, 2, n_jobs=2, fault=FaultPlan.parse("kill@0.0")
        )
        assert [g.row_set for g in recovered.groups] == [
            g.row_set for g in serial.groups
        ]
        assert recovered.stats.degraded is False

    def test_env_fault_plan_reaches_forked_workers(self, small_random,
                                                   serial_result,
                                                   monkeypatch):
        """REPRO_FAULT set before the pool starts is inherited by the
        workers (the subprocess-test hook): shard 0 crashes on its first
        attempt and recovery still reproduces the serial result."""
        shutdown_pool()  # force a fresh generation that inherits the env
        monkeypatch.setenv("REPRO_FAULT", "kill@0.0")
        try:
            result = mine_topk_parallel(small_random, 1, 2, k=4, n_jobs=2)
            assert results_equal(serial_result, result)
        finally:
            monkeypatch.delenv("REPRO_FAULT")
            shutdown_pool()  # do not leak fault-laden workers to others

    def test_delay_fault_changes_nothing(self, small_random, serial_result):
        result = mine_topk_parallel(
            small_random, 1, 2, k=4, n_jobs=2,
            fault=FaultPlan.parse("delay@*.0:0.05"),
        )
        assert results_equal(serial_result, result)
        assert result.stats.degraded is False


class TestHybridPartitionFaults:
    """Hybrid column partitions ride the same supervisor as row shards:
    a killed partition worker is retried on a healed pool, and the
    caller's cancellation token still stops a parallel hybrid run."""

    def test_partition_worker_crash_recovers(self, small_random):
        """Partition 0's worker dies on attempt 0: the supervisor heals
        the pool, re-mines the lost partition, and the aggregated result
        is bit-identical to the serial hybrid run."""
        serial = mine_topk_hybrid(small_random, 1, 2, k=4)
        recovered = mine_topk_hybrid(
            small_random, 1, 2, k=4, n_jobs=2,
            fault=FaultPlan.parse("kill@0.0"),
        )
        assert results_equal(serial, recovered)
        assert recovered.stats.completed is True

    def test_preset_cancel_parallel_marks_incomplete(self, small_random):
        """A cancel set before the parallel partition fan-out yields an
        honest partial result instead of hanging or raising."""
        cancel = threading.Event()
        cancel.set()
        result = mine_topk_hybrid(
            small_random, 1, 2, k=4, n_jobs=2, cancel=cancel,
        )
        assert result.stats.completed is False


class TestHardFailures:
    """An ordinary shard exception is a bug, not a crash: it must
    propagate — but without leaving sibling shards running unobserved."""

    def test_injected_raise_propagates(self, small_random):
        with pytest.raises(InjectedFault, match="injected fault"):
            mine_topk_parallel(
                small_random, 1, 2, k=4, n_jobs=2,
                fault=FaultPlan.parse("raise@0.0"),
            )

    def test_raise_cancels_pending_shards(self, small_random):
        """Regression for the in-order ``.result()`` loop: pre-fix, an
        early shard's exception left every later shard queued/running on
        the pool (wasted CPU, lost exceptions).  Eight slow sibling
        shards behind one worker take 4 s if they all run; cancellation
        can only spare the truly pending ones (the executor prefetches
        ~2 into its call queue, where futures are already RUNNING), so
        a healthy fix finishes in well under the all-run time."""
        pool = MinerPool(max_workers=1)
        request = _topk_request()
        jobs = [("topk", request, 1 << position) for position in range(9)]
        fault = FaultPlan.parse(
            "raise@0.0;" + ";".join(
                f"delay@{shard}.0:0.5" for shard in range(1, 9)
            )
        )
        try:
            start = time.monotonic()
            with pytest.raises(InjectedFault):
                _execute(small_random, jobs, 1, pool=pool, fault=fault)
            elapsed = time.monotonic() - start
            # All-run (pre-fix) is 8 * 0.5 = 4 s on the lone worker;
            # post-fix at most the prefetched couple of delays run.
            assert elapsed < 3.0
        finally:
            pool.close()

    def test_smallest_index_error_wins(self, small_random):
        """Two raising shards: the reported failure is deterministic
        (the smallest shard index), not submission-race-dependent."""
        with pytest.raises(InjectedFault, match="shard 0"):
            mine_topk_parallel(
                small_random, 1, 2, k=4, n_jobs=2,
                fault=FaultPlan.parse("raise@0.0;raise@1.0"),
            )


class TestSlotExhaustionFallback:
    def test_execute_degrades_when_no_slot_free(self, small_random,
                                                monkeypatch,
                                                serial_result):
        """All cancellation slots leased + a cancellable mine: instead
        of raising (pre-fix: a 500 through the service), the call runs
        watcher-free and serial in this process, exact as ever."""
        monkeypatch.setattr(parallel_mod, "_SLOT_WAIT_SECONDS", 0.05)
        pool = MinerPool()
        leased = [pool.acquire_slot()
                  for _ in range(parallel_mod._POOL_CANCEL_SLOTS)]
        request = _topk_request()
        jobs = [("topk", request, mask)
                for mask in plan_shards(small_random.n_rows, 2)]
        before = pool_stats()
        try:
            outputs, recovery = _execute(
                small_random, jobs, 2, cancel=threading.Event(), pool=pool
            )
        finally:
            for index in leased:
                pool.release_slot(index)
            pool.close()
        after = pool_stats()
        assert recovery["degraded"] is True
        assert recovery["serial_degradations"] == 1
        assert after["serial_degradations"] - before["serial_degradations"] == 1
        merged = _merge_topk(small_random, request, outputs,
                             degraded=recovery["degraded"])
        assert results_equal(serial_result, merged)
        assert merged.stats.degraded is True

    def test_cancel_still_honored_in_degraded_mode(self, small_random,
                                                   monkeypatch):
        """The watcher-free fallback polls the caller's token directly:
        a pre-set cancel yields a partial (completed=False) result."""
        monkeypatch.setattr(parallel_mod, "_SLOT_WAIT_SECONDS", 0.05)
        pool = MinerPool()
        leased = [pool.acquire_slot()
                  for _ in range(parallel_mod._POOL_CANCEL_SLOTS)]
        cancel = threading.Event()
        cancel.set()
        request = _topk_request(minsup=1, k=8)
        jobs = [("topk", request, mask)
                for mask in plan_shards(small_random.n_rows, 2)]
        try:
            outputs, recovery = _execute(
                small_random, jobs, 2, cancel=cancel, pool=pool
            )
        finally:
            for index in leased:
                pool.release_slot(index)
            pool.close()
        assert recovery["degraded"] is True
        assert all(payload is not None for payload, _stats in outputs)
