"""Thread-pool job queue for long-running mining requests.

``/mine`` requests can run for seconds to minutes, far past what an HTTP
round-trip should hold open, so the server submits them here and hands
the client a job id to poll.  The design leans on machinery the miners
already have:

* **cancellation** is cooperative — every job gets a
  :class:`threading.Event` that the mining loop polls through the
  ``cancel`` budget hook of :func:`repro.core.enumeration.run_enumeration`
  (same stride as the wall-clock deadline), so a cancelled job stops
  within a few dozen enumeration nodes;
* **budgets** — node and wall-clock caps from
  :func:`~repro.core.topk_miner.mine_topk` — bound each job regardless of
  client behaviour.

The queue's worker *threads* dispatch and supervise jobs; the CPU-bound
enumeration itself can run in worker *processes* when the service is
configured with ``mine_jobs`` > 1 (see :class:`~repro.service.server.
RuleService`), in which case a job thread blocks on the process pool of
:mod:`repro.parallel` while other threads keep serving requests — the
GIL is only held for dispatch and merging, not for mining.  Cooperative
cancellation composes: the job's cancel event is bridged into the pool
by a watcher thread.

Worker threads are deliberately *non-daemon*: :meth:`JobQueue.shutdown`
must be able to prove a clean exit (the tests assert no non-daemon
threads survive it), and daemon threads would just hide leaks.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import ReproError

__all__ = ["Job", "JobCancelled", "JobQueue"]

# Job lifecycle: queued -> running -> {done, failed, cancelled};
# queued jobs may go straight to cancelled.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class JobCancelled(ReproError):
    """Raised inside a job function to acknowledge a cancellation."""


@dataclass
class Job:
    """One submitted unit of work and its observable state."""

    job_id: str
    status: str = QUEUED
    result: Any = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    _done: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> dict:
        """JSON-safe status (without the result payload).

        Job fields are mutated by the queue's worker threads under the
        queue lock; callers that need an atomic view of a possibly
        still-running job (e.g. a status poller that must not see a
        terminal result paired with a non-terminal status) should go
        through :meth:`JobQueue.snapshot` instead of reading fields off
        a live job directly.
        """
        return {
            "job_id": self.job_id,
            "status": self.status,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_event.is_set(),
        }

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)


class JobQueue:
    """FIFO queue of jobs executed by a fixed pool of worker threads.

    Args:
        workers: worker thread count.  Mining is CPU-bound pure Python,
            so a small pool (default 2) keeps the GIL contention low
            while still overlapping mining with request handling.
        start_id: first numeric job id to hand out.  A durable service
            seeds this past the ids in its :class:`~repro.service.store.
            JobStore` so resurrected and fresh jobs never collide.
        observer: called with a :meth:`snapshot`-shaped dict after every
            job transition (queued, running, terminal), outside the
            queue lock — the durability hook.  Notifications for one job
            may arrive out of order for sub-millisecond jobs; consumers
            must treat terminal states as final.
    """

    def __init__(
        self,
        workers: int = 2,
        name: str = "repro-miner",
        start_id: int = 1,
        observer: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._job_fns: dict[str, Callable[[Job], Any]] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(max(1, start_id))
        self._observer = observer
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client surface ----------------------------------------------------

    @property
    def workers(self) -> int:
        """Size of the worker thread pool."""
        return len(self._threads)

    def next_id(self) -> str:
        """Reserve and return a fresh job id without submitting.

        A durable service records a job in its store *before* the queue
        can start running it (otherwise a fast job's transitions would
        race the insert); reserving the id first makes that ordering
        possible.
        """
        return f"job-{next(self._ids)}"

    def submit(
        self, fn: Callable[[Job], Any], job_id: Optional[str] = None
    ) -> Job:
        """Enqueue ``fn`` and return its job handle immediately.

        ``fn`` receives the :class:`Job` (so it can poll
        ``job.cancel_event``) and its return value becomes
        ``job.result``.  Raising :class:`JobCancelled` marks the job
        cancelled instead of failed.  ``job_id`` resurrects a specific
        id (restart recovery re-enqueues a stored job under the id its
        client is already polling); fresh submissions leave it None.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is shut down")
            if job_id is None:
                job_id = f"job-{next(self._ids)}"
            elif job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already exists")
            job = Job(job_id=job_id)
            self._jobs[job.job_id] = job
            self._job_fns[job.job_id] = fn
        self._queue.put(job)
        self._notify(job)
        return job

    def get(self, job_id: str) -> Job:
        """Look up a job by id; raises KeyError for unknown ids."""
        with self._lock:
            return self._jobs[job_id]

    def snapshot(self, job_id: str) -> dict:
        """Atomic :meth:`Job.describe` + result under the queue lock.

        All job-field mutations happen while the queue lock is held, so
        holding it across the read guarantees the returned status and
        result belong to one consistent state.  Raises KeyError for
        unknown ids.
        """
        with self._lock:
            job = self._jobs[job_id]
            payload = job.describe()
            if job.result is not None:
                payload["result"] = job.result
            return payload

    def snapshots(self) -> list[dict]:
        """Atomic snapshot of every known job (for store checkpoints)."""
        with self._lock:
            payloads = []
            for job in self._jobs.values():
                payload = job.describe()
                if job.result is not None:
                    payload["result"] = job.result
                payloads.append(payload)
            return payloads

    def cancel(self, job_id: str) -> Job:
        """Request cancellation of a job.

        A still-queued job is cancelled immediately; a running job has
        its cancel event set and transitions once the mining loop
        notices.  Terminal jobs are returned unchanged.
        """
        job = self.get(job_id)
        with self._lock:
            if job.status == QUEUED:
                self._finish(job, CANCELLED, error="cancelled before start")
            job.cancel_event.set()
        self._notify(job)
        return job

    def describe(self) -> dict:
        """JSON-safe queue summary for ``/metrics``."""
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "workers": len(self._threads),
                "jobs": len(self._jobs),
                "by_status": dict(sorted(by_status.items())),
            }

    def shutdown(self, cancel_running: bool = True) -> None:
        """Stop accepting work, drain the pool, join every worker.

        Queued jobs are cancelled; running jobs are cancelled too when
        ``cancel_running`` (otherwise they finish).  Idempotent, and on
        return no worker thread is alive.
        """
        changed: list[Job] = []
        with self._lock:
            if self._closed:
                already_closed = True
            else:
                already_closed = False
                self._closed = True
                for job in self._jobs.values():
                    if job.status == QUEUED:
                        self._finish(job, CANCELLED, error="queue shut down")
                        job.cancel_event.set()
                        changed.append(job)
                    elif job.status == RUNNING and cancel_running:
                        job.cancel_event.set()
        for job in changed:
            self._notify(job)
        if not already_closed:
            for _ in self._threads:
                self._queue.put(None)
        for thread in self._threads:
            thread.join()

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.status != QUEUED:  # cancelled while waiting
                    self._job_fns.pop(job.job_id, None)
                    continue
                job.status = RUNNING
                job.started_at = time.time()
                fn = self._job_fns.pop(job.job_id)
            self._notify(job)
            try:
                try:
                    result = fn(job)
                except JobCancelled as stop:
                    with self._lock:
                        self._finish(job, CANCELLED,
                                     error=str(stop) or "cancelled")
                except Exception:
                    with self._lock:
                        self._finish(job, FAILED, error=traceback.format_exc())
                except BaseException:
                    # A job fn raising SystemExit (or any other bare
                    # BaseException) must not kill the worker thread:
                    # pre-fix it propagated, the thread died, the job
                    # stayed RUNNING forever (wait() hung) and the queue
                    # silently lost a worker.  Fail the job and keep
                    # serving.  (threading would swallow SystemExit from
                    # a non-main thread anyway — exiting is not an option
                    # here, only dying uselessly was.)
                    with self._lock:
                        self._finish(job, FAILED, error=traceback.format_exc())
                else:
                    with self._lock:
                        if job.cancel_event.is_set():
                            # The function returned a partial result after
                            # a cooperative stop; keep it but mark the
                            # outcome.
                            job.result = result
                            self._finish(job, CANCELLED, error="cancelled")
                        else:
                            job.result = result
                            self._finish(job, DONE)
            finally:
                # Backstop: no code path may leave the job non-terminal —
                # wait() blocks on _done, and a stuck RUNNING job would
                # pin its cache/inflight bookkeeping forever.
                with self._lock:
                    if not job._done.is_set():
                        self._finish(
                            job, FAILED,
                            error="job ended without a terminal transition",
                        )
                # One notification covers whichever terminal transition
                # the try-arms above performed.
                self._notify(job)

    def _notify(self, job: Job) -> None:
        """Deliver one observer notification for ``job``'s current state.

        The snapshot is taken under the lock (consistent status/result
        pair) but the observer runs outside it: a persistence hook doing
        disk I/O must not serialize the whole queue, and must never be
        able to deadlock against submit/cancel paths that also notify.
        """
        if self._observer is None:
            return
        with self._lock:
            payload = job.describe()
            if job.result is not None:
                payload["result"] = job.result
        try:
            self._observer(payload)
        except Exception:  # pragma: no cover - defensive
            # A broken durability hook (disk full, closed store) must
            # degrade to in-memory-only serving, not kill the worker.
            traceback.print_exc()

    def _finish(
        self, job: Job, status: str, error: Optional[str] = None
    ) -> None:
        """Transition a job to a terminal state (caller holds the lock)."""
        job.status = status
        job.error = error
        job.finished_at = time.time()
        self._job_fns.pop(job.job_id, None)
        job._done.set()
