"""Pluggable vectorized bitset-operation backends.

Every hot path in the reproduction — closure intersection, backward
pruning subset tests, support popcounts (paper §4.1, Figure 3) —
bottoms out in operations over row bitsets.  This package makes the
*implementation* of those operations pluggable while keeping the
*representation* at the API boundary fixed: *every backend consumes and
returns plain Python ``int`` bitsets* (bit ``i`` set means row ``i``
present, exactly as in :mod:`repro.core.bitset`), so results are
bit-identical across backends by construction.  What a backend may vary
is how it stores an *encoded support table* internally and how it
executes the batch operations over it:

``int`` (default)
    The pure arbitrary-precision-integer implementation the package has
    always used.  No encoding, no dependencies; batch calls are tight
    loops over ``&``/``|``/``int.bit_count``.

``packed``
    Supports packed into 64-bit words (``array("Q")``) with a
    table-driven 16-bit popcount.  Pure stdlib.

``numpy``
    Supports packed into a ``uint64`` matrix; ``intersect_many`` is one
    ``np.bitwise_and.reduce`` over a row slice, popcounts go through
    ``np.bitwise_count``.  Import-guarded: the backend registers only
    when numpy is importable, and nothing else in the package imports
    numpy.

Selection precedence (see :func:`resolve_backend`):

1. an explicit ``backend=`` argument (a name or a
   :class:`~repro.core.backends.base.BitsetBackend` instance) threaded
   through ``MiningView``/``mine_topk``/``mine_farmer``/the service;
2. the ``REPRO_BITSET_BACKEND`` environment variable;
3. the ``int`` default.

The special name ``"auto"`` (:data:`AUTO_BACKEND`) defers the choice to
:func:`plan_auto_backend`, which picks from the dataset's row count,
the mining task and the backends available in this process: ``int``
wins at paper scale (tens of rows, where batch-call overhead dominates)
and the vectorized ``numpy`` backend wins tall *top-k* runs (its
dynamic-threshold min-fold vectorizes; the measured crossover sits at
:data:`AUTO_TALL_ROWS` rows — see ``BENCH_core.json``), while
static-threshold FARMER runs stay on ``int`` at every size.  ``"auto"`` can
only be resolved where a row count is known — dataset-aware entry
points (``MiningView``, the miners, the parallel front ends, the
service) pass ``n_rows`` through; :func:`auto_backend_stats` counts the
choices made so bench output and ``/metrics`` can report them honestly.

The batch contract every backend honours (and
``tests/test_backends.py`` enforces on audit-generator cases):

* ``encode_supports(bitsets, n_bits)`` returns an opaque handle over a
  support table; ``intersect_many(handle, ids)`` /
  ``union_many(handle, ids)`` / ``intersect_union_many(handle, ids)``
  fold the selected supports in one call and return plain ``int``
  bitsets equal to the ``&``/``|`` folds;
* ``popcount_many(bitsets)`` equals ``[popcount(b) for b in bitsets]``;
* the scalar index helpers (``bit``/``from_indices``/``mask_below``/
  ``mask_upto``...) share one validated implementation, so every
  backend agrees on edge semantics — negative indices raise
  ``ValueError`` everywhere.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .base import BitsetBackend, ThresholdStore
from .int_backend import IntBackend
from .packed_backend import PackedBackend

__all__ = [
    "AUTO_BACKEND",
    "AUTO_TALL_ROWS",
    "BitsetBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "ThresholdStore",
    "auto_backend_stats",
    "available_backends",
    "get_backend",
    "plan_auto_backend",
    "resolve_backend",
]

ENV_VAR = "REPRO_BITSET_BACKEND"
DEFAULT_BACKEND = "int"

# Sentinel name deferring backend selection to :func:`plan_auto_backend`.
AUTO_BACKEND = "auto"

# Row count at which the vectorized numpy backend overtakes the int
# default for top-k mining.  Measured on the tall synthetic cohorts
# (minsup 0.7, k=2, bitset engine, 1-core host): int wins at 128 rows
# (0.87x), numpy wins from 256 rows up (1.4x at 256, 2.4x at 512, 4.6x
# at 1024) — the win comes from the vectorized dynamic-threshold fold,
# which grows with the consequent-class row count.  The crossover table
# in README.md tracks the measurements this constant mirrors.
AUTO_TALL_ROWS = 256

# Name -> singleton instance.  Backends are stateless (the per-view
# state lives in the encoded handles), so one shared instance per
# process is enough and lets SupportIndex compare backends by identity.
_REGISTRY: dict[str, BitsetBackend] = {
    "int": IntBackend(),
    "packed": PackedBackend(),
}

try:  # numpy is optional: pure Python stays the default.
    from .numpy_backend import NumpyBackend

    _REGISTRY["numpy"] = NumpyBackend()
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    NumpyBackend = None

# Names a user may ask for, available or not — used for CLI choices and
# for the "unavailable" (vs "unknown") error distinction.
KNOWN_BACKENDS = ("int", "packed", "numpy")


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this process, default first."""
    return tuple(
        sorted(_REGISTRY, key=lambda name: (name != DEFAULT_BACKEND, name))
    )


def get_backend(name: str) -> BitsetBackend:
    """The registered backend singleton for ``name``.

    Raises:
        ValueError: unknown name, or a known backend whose optional
            dependency is missing in this environment.  Both errors list
            the registry keys actually usable in this process, so a user
            holding an available-but-unknown name (a typo, a backend from
            a newer version) sees what they *can* ask for.
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        registered = ", ".join(available_backends())
        if name in KNOWN_BACKENDS:
            raise ValueError(
                f"bitset backend {name!r} is not available in this "
                f"environment (is its dependency installed?); registered "
                f"backends: {registered}"
            )
        raise ValueError(
            f"unknown bitset backend {name!r}; expected one of "
            f"{', '.join(KNOWN_BACKENDS)} (or {AUTO_BACKEND!r} at a "
            f"dataset-aware entry point); registered backends: {registered}"
        )
    return backend


# Choices made by the auto planner, by resolved backend name.  Plain
# int increments under the GIL; sampled by ``repro bench`` (the
# ``chose_backend`` honesty field) and the service's ``/metrics``.
_AUTO_CHOICES: dict[str, int] = {name: 0 for name in KNOWN_BACKENDS}


def plan_auto_backend(n_rows: int, task: str = "topk") -> str:
    """Backend name for ``backend="auto"``: row count x task x availability.

    The int default wins below :data:`AUTO_TALL_ROWS` rows, where batch
    folds span one or two machine words and per-call overhead dominates.
    At or above it the vectorized numpy backend wins — if it registered;
    the pure-Python packed backend never beats int, so a numpy-free host
    stays on the default rather than auto-selecting a slower backend.

    ``task`` names what the backend will execute: ``"topk"`` (dynamic
    top-k mining, the default) or ``"farmer"`` (static-threshold FARMER
    baselines).  Only top-k runs get the vectorized backend — its tall
    win comes from the dynamic-threshold min-fold, which static policies
    never perform, and on pure closure/union folds the int backend wins
    at every measured size (see DESIGN.md §12).
    """
    if (
        task == "topk"
        and n_rows >= AUTO_TALL_ROWS
        and "numpy" in _REGISTRY
    ):
        return "numpy"
    return DEFAULT_BACKEND


def auto_backend_stats() -> dict[str, int]:
    """Snapshot of how often ``backend="auto"`` picked each backend."""
    return dict(_AUTO_CHOICES)


def resolve_backend(
    backend: Optional[Union[str, BitsetBackend]] = None,
    n_rows: Optional[int] = None,
    task: str = "topk",
) -> BitsetBackend:
    """Apply the selection precedence: argument > environment > default.

    ``backend="auto"`` (as an argument or via the environment variable)
    resolves through :func:`plan_auto_backend` and therefore needs
    ``n_rows``; dataset-aware callers (``MiningView``, the miners, the
    parallel front ends) pass it through.  ``task`` qualifies the auto
    plan (``"topk"``/``"farmer"``, see :func:`plan_auto_backend`); the
    FARMER entry points pass ``"farmer"`` so tall static-threshold runs
    stay on the int backend that wins them.
    """
    if isinstance(backend, BitsetBackend):
        return backend
    name = backend
    if name is None:
        env = os.environ.get(ENV_VAR, "").strip()
        name = env or DEFAULT_BACKEND
    if name == AUTO_BACKEND:
        if n_rows is None:
            raise ValueError(
                f"backend={AUTO_BACKEND!r} needs a row count to plan "
                "from; resolve it at a dataset-aware entry point (or "
                "pass n_rows)"
            )
        chosen = plan_auto_backend(n_rows, task=task)
        _AUTO_CHOICES[chosen] += 1
        return _REGISTRY[chosen]
    return get_backend(name)
