"""Figure 8: gene ranks vs. occurrence in the deployed lower bound rules.

On the prostate-cancer workload, mines the top-1 covering rule groups,
extracts their shortest lower bounds (as RCBT's main classifier does),
counts how often each gene occurs in those rules, and sets the counts
against the chi-square ranking of the genes.

The paper's reading: the most-used genes sit high in the chi-square
ranking, but a long tail of low-ranked genes is *also* required to form
the globally significant rules — single-gene rankings are not enough.
The driver reports the most frequent genes with their ranks, plus the
rank-distribution summary that captures the figure's shape.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..analysis.gene_ranking import (
    gene_chi_square_scores,
    gene_entropy_scores,
    item_scores,
    rank_genes,
)
from ..analysis.significance import gene_usage
from ..core.lower_bounds import find_lower_bounds_batch
from ..core.topk_miner import mine_topk, relative_minsup
from .harness import DATASET_NAMES, prepare, render_table

__all__ = ["Fig8Result", "run", "render", "main"]


@dataclass
class Fig8Result:
    """Occurrence counts and chi-square ranks of rule-forming genes."""

    dataset: str
    n_rule_genes: int
    n_ranked_genes: int
    occurrences: dict[int, int] = field(default_factory=dict)  # gene -> count
    ranks: dict[int, int] = field(default_factory=dict)  # gene -> 1-based rank
    gene_names: dict[int, str] = field(default_factory=dict)

    def top_genes(self, limit: int = 10) -> list[tuple[int, int, int]]:
        """(gene index, occurrences, chi-square rank), most used first."""
        ordered = sorted(
            self.occurrences.items(), key=lambda pair: (-pair[1], pair[0])
        )
        return [
            (gene, count, self.ranks.get(gene, 0))
            for gene, count in ordered[:limit]
        ]

    def rank_quantile_shares(
        self, quantiles: Sequence[float] = (0.1, 0.25, 0.5)
    ) -> dict[float, float]:
        """Share of rule-gene occurrences coming from top-q ranked genes."""
        total = sum(self.occurrences.values())
        shares = {}
        for quantile in quantiles:
            cutoff = max(1, int(self.n_ranked_genes * quantile))
            in_top = sum(
                count
                for gene, count in self.occurrences.items()
                if self.ranks.get(gene, self.n_ranked_genes) <= cutoff
            )
            shares[quantile] = in_top / total if total else 0.0
        return shares


def run(
    scale: float = 1.0,
    dataset: str = "PC",
    nl: int = 500,
    minsup_fraction: float = 0.7,
) -> Fig8Result:
    """Count gene occurrences in the shortest lower bounds of top-1 RGs."""
    benchmark = prepare(dataset, scale)
    train = benchmark.train_items
    scores = item_scores(train, gene_entropy_scores(train))
    rules = []
    for class_id in range(train.n_classes):
        minsup = relative_minsup(train, class_id, minsup_fraction)
        mined = mine_topk(train, class_id, minsup, k=1)
        groups = mined.unique_groups()
        lower_bounds = find_lower_bounds_batch(
            train, groups, nl=nl, item_scores=scores
        )
        for bounds in lower_bounds.values():
            rules.extend(bounds)

    occurrences = gene_usage(train, rules)
    chi_ranks = rank_genes(gene_chi_square_scores(train))
    gene_names = {
        gene: benchmark.train.gene_names[gene] for gene in occurrences
    }
    return Fig8Result(
        dataset=dataset,
        n_rule_genes=len(occurrences),
        n_ranked_genes=len(chi_ranks),
        occurrences=occurrences,
        ranks=chi_ranks,
        gene_names=gene_names,
    )


def render(result: Fig8Result, top: int = 10) -> str:
    headers = ["Gene", "Occurrences", "Chi-square rank"]
    body = [
        [result.gene_names.get(gene, str(gene)), count, rank]
        for gene, count, rank in result.top_genes(top)
    ]
    table = render_table(
        headers,
        body,
        title=(
            f"Figure 8 — {result.dataset}: {result.n_rule_genes} genes form "
            "the top-1 rule groups' lower bounds"
        ),
    )
    shares = result.rank_quantile_shares()
    lines = [table, ""]
    for quantile, share in shares.items():
        lines.append(
            f"top {quantile:.0%} of chi-square-ranked genes account for "
            f"{share:.1%} of rule occurrences"
        )
    lines.append(
        "(high-ranked genes dominate, with a long tail of low-ranked genes "
        "— the paper's Figure 8 shape)"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dataset", default="PC", choices=DATASET_NAMES)
    parser.add_argument("--nl", type=int, default=500,
                        help="lower bounds per rule group; the paper's "
                             "occurrence counts imply (near-)exhaustive "
                             "lower bound enumeration")
    parser.add_argument("--top", type=int, default=10)
    args = parser.parse_args(argv)
    print(render(run(scale=args.scale, dataset=args.dataset, nl=args.nl),
                 top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
