"""Unit and property tests for the integer bitset helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitset as B


class TestBasics:
    def test_bit(self):
        assert B.bit(0) == 1
        assert B.bit(5) == 32

    def test_from_indices_empty(self):
        assert B.from_indices([]) == 0

    def test_from_indices_duplicates_collapse(self):
        assert B.from_indices([2, 2, 2]) == 4

    def test_to_indices_sorted(self):
        assert B.to_indices(B.from_indices([5, 1, 3])) == [1, 3, 5]

    def test_iter_indices_ascending(self):
        assert list(B.iter_indices(0b101010)) == [1, 3, 5]

    def test_popcount(self):
        assert B.popcount(0) == 0
        assert B.popcount(0b1011) == 3

    def test_contains(self):
        bits = B.from_indices([0, 7])
        assert B.contains(bits, 0)
        assert B.contains(bits, 7)
        assert not B.contains(bits, 3)

    def test_is_subset(self):
        assert B.is_subset(0b0101, 0b1101)
        assert not B.is_subset(0b0111, 0b1101)
        assert B.is_subset(0, 0)

    def test_lowest_bit_index(self):
        assert B.lowest_bit_index(0b1000) == 3
        assert B.lowest_bit_index(0b1001) == 0

    def test_lowest_bit_index_empty_raises(self):
        with pytest.raises(ValueError):
            B.lowest_bit_index(0)

    def test_mask_below(self):
        assert B.mask_below(0) == 0
        assert B.mask_below(3) == 0b111

    def test_mask_upto(self):
        assert B.mask_upto(0) == 1
        assert B.mask_upto(2) == 0b111


class TestNegativeIndices:
    """Negative indices raise a clear ValueError instead of silently
    producing an empty or nonsensical mask (``bit(-1)`` used to raise a
    confusing shift error, ``mask_upto(-1)`` silently returned 0)."""

    def test_bit_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative, got -1"):
            B.bit(-1)

    def test_from_indices_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative, got -3"):
            B.from_indices([0, 5, -3])

    def test_mask_below_rejects_negative(self):
        with pytest.raises(ValueError, match="mask_below.*got -1"):
            B.mask_below(-1)

    def test_mask_upto_rejects_negative(self):
        """mask_upto(-1) must not silently alias mask_below(0)."""
        with pytest.raises(ValueError, match="mask_upto.*got -1"):
            B.mask_upto(-1)

    def test_empty_mask_spelling(self):
        """The empty prefix mask is mask_below(0), and it still works."""
        assert B.mask_below(0) == 0


indices = st.sets(st.integers(min_value=0, max_value=200), max_size=40)


class TestProperties:
    @given(indices)
    def test_roundtrip(self, values):
        assert set(B.to_indices(B.from_indices(values))) == values

    @given(indices)
    def test_popcount_matches_cardinality(self, values):
        assert B.popcount(B.from_indices(values)) == len(values)

    @given(indices, indices)
    def test_subset_matches_set_semantics(self, a, b):
        assert B.is_subset(B.from_indices(a), B.from_indices(b)) == (a <= b)

    @given(indices, indices)
    def test_and_is_intersection(self, a, b):
        bits = B.from_indices(a) & B.from_indices(b)
        assert set(B.to_indices(bits)) == (a & b)

    @given(indices, indices)
    def test_or_is_union(self, a, b):
        bits = B.from_indices(a) | B.from_indices(b)
        assert set(B.to_indices(bits)) == (a | b)

    @given(indices)
    def test_lowest_bit_is_minimum(self, values):
        bits = B.from_indices(values)
        if values:
            assert B.lowest_bit_index(bits) == min(values)
