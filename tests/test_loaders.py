"""Tests for dataset serialization and the benchmark registry."""

import numpy as np
import pytest

from repro.data.loaders import (
    load_benchmark,
    load_discretized,
    load_expression,
    save_discretized,
    save_expression,
)
from repro.data.synthetic import generate_paper_dataset, make_figure1_example


class TestExpressionRoundtrip:
    def test_roundtrip(self, tmp_path):
        original, _ = generate_paper_dataset("ALL", scale=0.02)
        path = tmp_path / "data.tsv"
        save_expression(original, path)
        loaded = load_expression(path)
        assert np.allclose(loaded.values, original.values, atol=1e-5)
        assert list(loaded.labels) == list(original.labels)
        assert loaded.gene_names == original.gene_names
        assert loaded.class_names == original.class_names
        assert loaded.name == original.name

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("no header here\n")
        with pytest.raises(ValueError, match="header"):
            load_expression(path)


class TestDiscretizedRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = make_figure1_example()
        path = tmp_path / "items.json"
        save_discretized(original, path)
        loaded = load_discretized(path)
        assert loaded.rows == original.rows
        assert loaded.labels == original.labels
        assert loaded.class_names == original.class_names
        assert [i.gene_name for i in loaded.items] == [
            i.gene_name for i in original.items
        ]

    def test_infinite_bounds_roundtrip(self, tmp_path):
        original = make_figure1_example()
        path = tmp_path / "items.json"
        save_discretized(original, path)
        loaded = load_discretized(path)
        assert loaded.items[0].low == float("-inf")
        assert loaded.items[0].high == float("inf")


class TestLoadBenchmark:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_benchmark("NOPE")

    def test_bundle_consistency(self, small_benchmark):
        bm = small_benchmark
        assert bm.train_items.n_rows == bm.train.n_samples
        assert bm.test_items.n_rows == bm.test.n_samples
        assert bm.train_items.items == bm.test_items.items
        assert bm.name == "ALL"

    def test_cut_cache_reused(self, tmp_path):
        first = load_benchmark("ALL", scale=0.02, cache_dir=tmp_path)
        cached = list(tmp_path.glob("*.cuts.json"))
        assert len(cached) == 1
        second = load_benchmark("ALL", scale=0.02, cache_dir=tmp_path)
        assert second.train_items.rows == first.train_items.rows
        assert (
            second.discretizer.selected_genes_
            == first.discretizer.selected_genes_
        )

    def test_no_cache_still_works(self):
        bm = load_benchmark("ALL", scale=0.02, use_cache=False)
        assert bm.train_items.n_items > 0


class TestCorruptInputs:
    def test_malformed_json_raises(self, tmp_path):
        import json

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_discretized(path)

    def test_unknown_class_name_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(
            '#{"name": "x", "gene_names": ["g0"], "class_names": ["a"]}\n'
            "mystery\t1.0\n"
        )
        with pytest.raises(KeyError):
            load_expression(path)

    def test_non_numeric_cell_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(
            '#{"name": "x", "gene_names": ["g0"], "class_names": ["a"]}\n'
            "a\tnot_a_number\n"
        )
        with pytest.raises(ValueError):
            load_expression(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text(
            '#{"name": "x", "gene_names": ["g0"], "class_names": ["a", "b"]}\n'
            "a\t1.0\n"
            "\n"
            "b\t2.0\n"
        )
        ds = load_expression(path)
        assert ds.n_samples == 2
