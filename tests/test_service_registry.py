"""Tests for the model registry, including the persistence round-trip."""

import pytest

from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.classifiers.persistence import load_classifier, save_classifier
from repro.errors import NotFittedError
from repro.service.registry import ModelRegistry


@pytest.fixture(scope="module")
def fitted_models(small_benchmark):
    rcbt = RCBTClassifier(k=2, nl=2).fit(small_benchmark.train_items)
    cba = CBAClassifier().fit(small_benchmark.train_items)
    return {"rcbt": rcbt, "cba": cba}


class TestRegistryBasics:
    def test_register_and_get_latest(self, fitted_models):
        registry = ModelRegistry()
        record = registry.register("all", fitted_models["rcbt"])
        assert (record.name, record.version, record.kind) == ("all", 1, "rcbt")
        registry.register("all", fitted_models["cba"])
        assert registry.get("all").version == 2
        assert registry.get("all", version=1).kind == "rcbt"
        assert registry.names() == ["all"]
        assert len(registry) == 2

    def test_unknown_lookups_raise(self, fitted_models):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("nope")
        registry.register("all", fitted_models["cba"])
        with pytest.raises(KeyError):
            registry.get("all", version=7)

    def test_unfitted_model_rejected(self):
        with pytest.raises(NotFittedError):
            ModelRegistry().register("all", RCBTClassifier())

    def test_bad_names_rejected(self, fitted_models):
        registry = ModelRegistry()
        for name in ("", "../evil", "a b", ".hidden"):
            with pytest.raises(ValueError):
                registry.register(name, fitted_models["cba"])

    def test_describe_lists_every_version(self, fitted_models):
        registry = ModelRegistry()
        registry.register("all", fitted_models["rcbt"])
        registry.register("all", fitted_models["rcbt"])
        listing = registry.describe()
        assert [entry["version"] for entry in listing] == [1, 2]
        assert all(entry["name"] == "all" for entry in listing)


class TestPersistenceRoundTrip:
    """A classifier saved by ``classifiers/persistence.py`` loads into the
    registry and predicts identically to the in-memory original."""

    @pytest.mark.parametrize("kind", ("rcbt", "cba"))
    def test_saved_file_loads_into_registry_and_predicts_identically(
        self, tmp_path, small_benchmark, fitted_models, kind
    ):
        original = fitted_models[kind]
        path = tmp_path / f"{kind}.model.json"
        save_classifier(original, path)

        registry = ModelRegistry()
        record = registry.register(kind, load_classifier(path))
        assert record.kind == kind

        test_items = small_benchmark.test_items
        expected = original.predict_with_sources(test_items)
        restored = record.model.predict_with_sources(test_items)
        assert restored == expected

    def test_warm_start_from_disk(self, tmp_path, small_benchmark,
                                  fitted_models):
        root = tmp_path / "models"
        first = ModelRegistry(root)
        first.register("all", fitted_models["rcbt"],
                       pipeline={"class_names": ["ALL", "AML"]})
        first.register("all", fitted_models["cba"])

        second = ModelRegistry(root)
        assert len(second) == 2
        assert second.get("all").version == 2
        assert second.get("all", version=1).pipeline == {
            "class_names": ["ALL", "AML"]
        }
        test_items = small_benchmark.test_items
        assert (
            second.get("all", version=1).model.predict_with_sources(test_items)
            == fitted_models["rcbt"].predict_with_sources(test_items)
        )

    def test_warm_start_versions_continue(self, tmp_path, fitted_models):
        root = tmp_path / "models"
        ModelRegistry(root).register("all", fitted_models["cba"])
        second = ModelRegistry(root)
        record = second.register("all", fitted_models["cba"])
        assert record.version == 2
        # And a third registry sees both versions back from disk.
        assert len(ModelRegistry(root)) == 2
