"""Tests for evaluation metrics."""

import pytest

from repro.analysis.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    evaluate,
)


class TestAccuracy:
    def test_all_correct(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_half(self):
        assert accuracy([0, 1], [0, 0]) == 0.5

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            accuracy([0], [0, 1])


class TestConfusion:
    def test_matrix(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix == [[1, 1], [0, 2]]

    def test_explicit_classes(self):
        matrix = confusion_matrix([0], [0], n_classes=3)
        assert len(matrix) == 3
        assert matrix[0][0] == 1

    def test_empty(self):
        assert confusion_matrix([], []) == []


class TestEvaluate:
    def test_basic_report(self):
        report = evaluate([0, 1, 1], [0, 1, 0])
        assert report.accuracy == pytest.approx(2 / 3)
        assert report.n_errors == 1
        assert report.n_samples == 3

    def test_decision_sources_counted(self):
        report = evaluate(
            [0, 1, 1, 0],
            [0, 1, 0, 1],
            decision_sources=["main", "standby", "default", "default"],
        )
        assert report.default_class_used == 2
        assert report.default_class_errors == 2
        assert report.standby_used == 1
        assert report.standby_errors == 0

    def test_sources_length_mismatch(self):
        with pytest.raises(ValueError, match="decision_sources"):
            evaluate([0], [0], decision_sources=["main", "main"])

    def test_summary_mentions_default(self):
        report = evaluate(
            [0, 1], [0, 0], decision_sources=["main", "default"]
        )
        text = report.summary()
        assert "default class" in text
        assert "accuracy=50.00%" in text

    def test_summary_plain(self):
        report = ClassificationReport(1.0, 4, 0, [[4]])
        assert "accuracy=100.00%" in report.summary()
