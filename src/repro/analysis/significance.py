"""Descriptive statistics over collections of rules and rule groups.

Used by the examples and experiment drivers to summarize mining output
the way the paper discusses it: how many distinct groups, how long their
upper/lower bounds are, how well the per-row lists cover the data, and
which genes the deployed rules actually use (Figure 8's occurrence
counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.rules import Rule, RuleGroup

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["GroupSummary", "summarize_groups", "coverage_summary", "gene_usage"]


@dataclass
class GroupSummary:
    """Aggregate statistics of a rule group collection."""

    n_groups: int
    min_support: int
    max_support: int
    min_confidence: float
    max_confidence: float
    mean_antecedent_length: float

    def describe(self) -> str:
        if not self.n_groups:
            return "no rule groups"
        return (
            f"{self.n_groups} groups; support [{self.min_support}, "
            f"{self.max_support}]; confidence [{self.min_confidence:.3f}, "
            f"{self.max_confidence:.3f}]; mean upper-bound length "
            f"{self.mean_antecedent_length:.1f}"
        )


def summarize_groups(groups: Sequence[RuleGroup]) -> GroupSummary:
    """Summarize a collection of rule groups."""
    if not groups:
        return GroupSummary(0, 0, 0, 0.0, 0.0, 0.0)
    supports = [group.support for group in groups]
    confidences = [group.confidence for group in groups]
    lengths = [len(group.antecedent) for group in groups]
    return GroupSummary(
        n_groups=len(groups),
        min_support=min(supports),
        max_support=max(supports),
        min_confidence=min(confidences),
        max_confidence=max(confidences),
        mean_antecedent_length=sum(lengths) / len(lengths),
    )


def coverage_summary(per_row: dict[int, list[RuleGroup]]) -> dict[str, float]:
    """How completely the per-row top-k lists cover their rows."""
    n_rows = len(per_row)
    if not n_rows:
        return {"rows": 0, "covered": 0, "coverage": 0.0, "mean_list_length": 0.0}
    covered = sum(1 for groups in per_row.values() if groups)
    total_entries = sum(len(groups) for groups in per_row.values())
    return {
        "rows": n_rows,
        "covered": covered,
        "coverage": covered / n_rows,
        "mean_list_length": total_entries / n_rows,
    }


def gene_usage(
    dataset: "DiscretizedDataset", rules: Iterable[Rule]
) -> dict[int, int]:
    """Gene index -> number of rule antecedents using one of its items.

    This is the "frequency of occurrence" axis of Figure 8, computed over
    the deployed (lower bound) rules of a classifier.
    """
    item_gene = {item.item_id: item.gene_index for item in dataset.items}
    counts: dict[int, int] = {}
    for rule in rules:
        genes = {item_gene[item] for item in rule.antecedent}
        for gene in genes:
            counts[gene] = counts.get(gene, 0) + 1
    return counts


def rule_chi_square(
    n_rows: int, class_rows: int, antecedent_rows: int, support: int
) -> float:
    """Chi-square statistic of one rule ``A -> C`` on its 2x2 table.

    Args:
        n_rows: dataset size.
        class_rows: rows of the consequent class.
        antecedent_rows: ``|R(A)|``.
        support: ``|R(A ∪ C)|``.

    FARMER [6] accepts a rule group only if this statistic clears a
    user threshold; :func:`repro.baselines.farmer.mine_farmer` exposes it
    as ``min_chi_square``.
    """
    observed = [
        [support, antecedent_rows - support],
        [class_rows - support, n_rows - class_rows - antecedent_rows + support],
    ]
    row_totals = [antecedent_rows, n_rows - antecedent_rows]
    column_totals = [class_rows, n_rows - class_rows]
    statistic = 0.0
    for i in range(2):
        for j in range(2):
            expected = row_totals[i] * column_totals[j] / n_rows
            if expected > 0:
                statistic += (observed[i][j] - expected) ** 2 / expected
    return statistic
