"""FindLB: shortest lower bounds of a rule group (Figure 5).

A rule group's upper bound on discretized microarray data typically has
hundreds of items — far too specific to match unseen samples — while its
*lower bounds* (minimal antecedents with the same support set, Lemma 5.1)
have 1-5 items and are what CBA/RCBT classifiers actually deploy.

``find_lower_bounds`` performs the paper's breadth-first search over
subsets of the upper bound's items, ordered by the discriminative power
of their genes (entropy score), with bitmap containment tests.  A subset
``A'`` is a lower bound iff ``R(A') == R(A)`` (condition 2 of Lemma 5.1 —
conditions 1 and 3 are structural: the search only generates subsets, and
breadth-first order plus superset skipping guarantees minimality).

Two prunings keep the search tractable:

* supersets of already-found lower bounds are never extended;
* an item that does not shrink the current subset's support set is
  redundant in *every* superset of that subset (since
  ``R(S) = R(S∖{i}) ∩ R(i)`` and ``R(c ∪ {i}) = R(c)`` propagates), so
  such extensions are dropped outright.  This generalizes the paper's
  pairwise upper-bound intersection heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from .rules import Rule, RuleGroup

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["LowerBoundResult", "find_lower_bounds", "find_lower_bounds_batch"]


@dataclass
class LowerBoundResult:
    """Outcome of one FindLB search.

    Attributes:
        rules: up to ``nl`` lower bound rules, shortest first, each
            carrying the group's support and confidence.
        complete: True when the search was exhaustive up to the point it
            stopped (no frontier or item truncation happened before the
            requested count was reached).
        subsets_tested: number of candidate subsets whose support set was
            evaluated.
    """

    rules: list[Rule]
    complete: bool
    subsets_tested: int


def find_lower_bounds(
    dataset: "DiscretizedDataset",
    group: RuleGroup,
    nl: int = 1,
    item_scores: Optional[dict[int, float]] = None,
    max_items: Optional[int] = None,
    max_size: int = 6,
    max_frontier: int = 100_000,
) -> LowerBoundResult:
    """Find up to ``nl`` shortest lower bounds of ``group``.

    Args:
        dataset: the dataset the group was mined from (its row universe
            defines ``R``).
        group: the rule group (upper bound + row support set).
        nl: number of lower bounds requested.
        item_scores: discriminative score per item (higher = searched
            first); typically from
            :func:`repro.analysis.gene_ranking.item_scores`.  Unscored
            items default to 0.
        max_items: consider only the best-ranked this many items of the
            upper bound (the paper's "items from the most discriminant
            genes"); None keeps all.
        max_size: largest lower bound length searched.
        max_frontier: cap on retained partial subsets per level; when the
            cap trims the frontier the result may be incomplete.

    Returns:
        A :class:`LowerBoundResult`; ``rules`` is empty only if the upper
        bound itself is empty.
    """
    if nl < 1:
        raise ValueError(f"nl must be >= 1, got {nl}")
    scores = item_scores or {}
    items = sorted(group.antecedent, key=lambda i: (-scores.get(i, 0.0), i))
    truncated = False
    if max_items is not None and len(items) > max_items:
        items = items[:max_items]
        truncated = True
    item_rows = dataset.item_row_sets()
    target = group.row_set

    found: list[frozenset[int]] = []
    # For the minimality/superset check: item -> [lower bound minus that
    # item].  A frontier combo can never contain a whole lower bound (its
    # support set differs from the target), so ``combo ∪ {item}`` contains
    # one iff the bound includes ``item`` and its remainder is in the
    # combo — an O(found-per-item) probe instead of a scan over all found
    # bounds per candidate.
    found_remainders: dict[int, list[frozenset[int]]] = {}

    def _register(lower: frozenset[int]) -> None:
        found.append(lower)
        for member in lower:
            found_remainders.setdefault(member, []).append(lower - {member})

    tested = 0
    # Frontier entries: (row bitset of the subset, index of its last item
    # in the ranked list, the subset itself as a tuple).
    frontier: list[tuple[int, int, tuple[int, ...]]] = []
    for index, item in enumerate(items):
        rows = item_rows[item]
        tested += 1
        if rows == target:
            _register(frozenset([item]))
            if len(found) >= nl:
                break
        else:
            frontier.append((rows, index, (item,)))

    size = 1
    frontier_trimmed = False
    while frontier and len(found) < nl and size < max_size:
        size += 1
        next_frontier: list[tuple[int, int, tuple[int, ...]]] = []
        for rows, last, combo in frontier:
            if len(found) >= nl:
                break
            combo_set = frozenset(combo)
            for index in range(last + 1, len(items)):
                item = items[index]
                remainders = found_remainders.get(item)
                if remainders is not None and any(
                    remainder <= combo_set for remainder in remainders
                ):
                    continue
                new_rows = rows & item_rows[item]
                if new_rows == rows:
                    # Redundant here and in every superset; drop.
                    continue
                tested += 1
                if new_rows == target:
                    _register(frozenset(combo + (item,)))
                    if len(found) >= nl:
                        break
                else:
                    next_frontier.append((new_rows, index, combo + (item,)))
        if len(next_frontier) > max_frontier:
            next_frontier = next_frontier[:max_frontier]
            frontier_trimmed = True
        frontier = next_frontier

    if not found and group.antecedent:
        # No minimal subset was reachable within the search limits; fall
        # back to the full upper bound, which always satisfies
        # ``R(A) == target`` even though it may not be minimal.
        found.append(frozenset(group.antecedent))
    rules = [
        Rule(
            antecedent=lower,
            consequent=group.consequent,
            support=group.support,
            confidence=group.confidence,
        )
        for lower in sorted(found, key=lambda s: (len(s), sorted(s)))[:nl]
    ]
    # A non-empty frontier at exit means the size cap stopped the search
    # with candidates still pending.
    size_capped = bool(frontier)
    complete = (
        len(found) >= nl
        or not (truncated or frontier_trimmed or size_capped)
    )
    return LowerBoundResult(rules=rules, complete=complete, subsets_tested=tested)


def find_lower_bounds_batch(
    dataset: "DiscretizedDataset",
    groups: Sequence[RuleGroup],
    nl: int = 1,
    item_scores: Optional[dict[int, float]] = None,
    max_items: Optional[int] = None,
    max_size: int = 6,
) -> dict[tuple[int, int], list[Rule]]:
    """FindLB over many groups, memoized by support set.

    Returns a mapping ``(row_set, consequent) -> lower bound rules`` so
    classifier builders can share one search per distinct rule group even
    when the same group tops the lists of many rows.
    """
    cache: dict[tuple[int, int], list[Rule]] = {}
    for group in groups:
        key = (group.row_set, group.consequent)
        if key not in cache:
            cache[key] = find_lower_bounds(
                dataset,
                group,
                nl=nl,
                item_scores=item_scores,
                max_items=max_items,
                max_size=max_size,
            ).rules
    return cache
