"""Figure 7 benchmarks: RCBT build cost and accuracy as nl varies.

The paper's claim is flatness: accuracy saturates for nl ≳ 15.  Each
benchmark records the achieved accuracy so the series can be read off
the report; a shape test asserts the saturation directly.
"""

import pytest

from repro.classifiers import RCBTClassifier

NL_VALUES = (1, 5, 10, 20)


@pytest.mark.parametrize("nl", NL_VALUES)
def test_fig7_rcbt_vs_nl(benchmark, all_benchmark, nl):
    train = all_benchmark.train_items
    model = benchmark(lambda: RCBTClassifier(k=5, nl=nl).fit(train))
    accuracy = model.score(all_benchmark.test_items)
    benchmark.extra_info.update({"nl": nl, "accuracy": accuracy})


@pytest.mark.parametrize("nl", (5, 10))
def test_fig7_lc_series(benchmark, lc_benchmark, nl):
    train = lc_benchmark.train_items
    model = benchmark(lambda: RCBTClassifier(k=5, nl=nl).fit(train))
    accuracy = model.score(lc_benchmark.test_items)
    benchmark.extra_info.update(
        {"dataset": "LC", "nl": nl, "accuracy": accuracy}
    )


def test_fig7_shape_saturation(all_benchmark):
    """Accuracy at large nl is at least that at nl=15 (the flat region)."""
    train, test = all_benchmark.train_items, all_benchmark.test_items
    accuracies = {
        nl: RCBTClassifier(k=5, nl=nl).fit(train).score(test)
        for nl in (15, 20, 25)
    }
    spread = max(accuracies.values()) - min(accuracies.values())
    assert spread <= 0.06, accuracies
