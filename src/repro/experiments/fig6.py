"""Figure 6: runtime of MineTopkRGS vs. FARMER (a-d) and vs. k (e).

Panels (a)-(d) sweep the absolute minimum support (expressed here as a
fraction of the class-1 size, the paper's 0.95 down to 0.6) and time

* ``TopkRGS k=1`` and ``TopkRGS k=100`` — MineTopkRGS on the prefix-tree
  engine;
* ``FARMER`` — the projected-table engine (the original implementation),
  at ``minconf = 0`` and at the high confidence threshold the paper uses
  (0.9, or 0.95 on OC/PC);
* ``FARMER+prefix`` — the same search on the prefix-tree engine.

Panel (e) sweeps ``k`` at fixed minimum support on ALL- and PC-shaped
data.  ``--column-baselines`` adds CHARM and CLOSET+ runs, reproducing
the Section 6.1 observation that column enumeration does not finish.

Every run is guarded by a wall-clock budget; a trailing ``+`` on a time
means the budget expired first (the paper's "cannot finish" rows).
Absolute times are Python, not the paper's C — the object of comparison
is the *relative* picture: orders of magnitude between the series, and
MineTopkRGS's insensitivity to minsup.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..baselines import mine_charm, mine_closetplus, mine_farmer
from ..core.topk_miner import mine_topk, relative_minsup
from ..data.loaders import Benchmark
from .harness import DATASET_NAMES, Timing, prepare, render_table, timed

__all__ = ["Fig6Result", "run", "run_panel_e", "render", "main"]

DEFAULT_FRACTIONS = (0.95, 0.9, 0.85, 0.8, 0.7, 0.6)
DEFAULT_K_VALUES = (1, 25, 50, 75, 100)
_HIGH_CONF = {"ALL": 0.9, "LC": 0.9, "OC": 0.95, "PC": 0.9}


@dataclass
class Fig6Result:
    """Timings per dataset: list of (fraction, minsup, series -> Timing)."""

    panels: dict[str, list[tuple[float, int, dict[str, Timing]]]] = field(
        default_factory=dict
    )
    k_panel: dict[str, list[tuple[int, Timing]]] = field(default_factory=dict)
    time_budget: float = 20.0


def _sweep_dataset(
    benchmark: Benchmark,
    fractions: Sequence[float],
    time_budget: float,
    k_values: Sequence[int] = (1, 100),
    column_baselines: bool = False,
    n_jobs: int = 1,
) -> list[tuple[float, int, dict[str, Timing]]]:
    train = benchmark.train_items
    high_conf = _HIGH_CONF.get(benchmark.name, 0.9)
    rows = []
    for fraction in fractions:
        minsup = relative_minsup(train, 1, fraction)
        series: dict[str, Timing] = {}
        for k in k_values:
            timing, _ = timed(
                lambda k=k: mine_topk(
                    train, 1, minsup, k=k, engine="tree",
                    time_budget=time_budget,
                )
            )
            series[f"TopkRGS k={k}"] = timing
            if n_jobs != 1:
                # Parallel column next to its serial twin, so speedups
                # attributable to sharding are read off one row.
                timing, _ = timed(
                    lambda k=k: mine_topk(
                        train, 1, minsup, k=k, engine="tree",
                        time_budget=time_budget, n_jobs=n_jobs,
                    )
                )
                series[f"TopkRGS k={k} [{n_jobs}j]"] = timing
        timing, _ = timed(
            lambda: mine_farmer(
                train, 1, minsup, minconf=0.0, engine="table",
                time_budget=time_budget,
            )
        )
        series["FARMER"] = timing
        if n_jobs != 1:
            timing, _ = timed(
                lambda: mine_farmer(
                    train, 1, minsup, minconf=0.0, engine="table",
                    time_budget=time_budget, n_jobs=n_jobs,
                )
            )
            series[f"FARMER [{n_jobs}j]"] = timing
        timing, _ = timed(
            lambda: mine_farmer(
                train, 1, minsup, minconf=high_conf, engine="table",
                time_budget=time_budget,
            )
        )
        series[f"FARMER conf={high_conf}"] = timing
        timing, _ = timed(
            lambda: mine_farmer(
                train, 1, minsup, minconf=0.0, engine="tree",
                time_budget=time_budget,
            )
        )
        series["FARMER+prefix"] = timing
        if column_baselines:
            timing, result = timed(
                lambda: mine_charm(train, 1, minsup, time_budget=time_budget)
            )
            timing.completed = result.completed
            series["CHARM"] = timing
            timing, result = timed(
                lambda: mine_closetplus(
                    train, 1, minsup, time_budget=time_budget
                )
            )
            timing.completed = result.completed
            series["CLOSET+"] = timing
        rows.append((fraction, minsup, series))
    return rows


def run(
    scale: float = 1.0,
    datasets: Sequence[str] = DATASET_NAMES,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    time_budget: float = 20.0,
    column_baselines: bool = False,
    n_jobs: int = 1,
) -> Fig6Result:
    """Panels (a)-(d): the minsup sweep on each dataset.

    ``n_jobs`` != 1 adds a ``[Nj]`` wall-clock column next to each miner
    series, timing the same mine through the process-pool backend, so a
    reproduction can attribute speedups to pruning vs. parallelism.
    """
    result = Fig6Result(time_budget=time_budget)
    for name in datasets:
        benchmark = prepare(name, scale)
        result.panels[name] = _sweep_dataset(
            benchmark, fractions, time_budget,
            column_baselines=column_baselines,
            n_jobs=n_jobs,
        )
    return result


def run_panel_e(
    scale: float = 1.0,
    datasets: Sequence[str] = ("ALL", "PC"),
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    fraction: float = 0.8,
    time_budget: float = 20.0,
) -> Fig6Result:
    """Panel (e): runtime vs. k at fixed minimum support."""
    result = Fig6Result(time_budget=time_budget)
    for name in datasets:
        benchmark = prepare(name, scale)
        train = benchmark.train_items
        minsup = relative_minsup(train, 1, fraction)
        curve = []
        for k in k_values:
            timing, _ = timed(
                lambda k=k: mine_topk(
                    train, 1, minsup, k=k, engine="tree",
                    time_budget=time_budget,
                )
            )
            curve.append((k, timing))
        result.k_panel[name] = curve
    return result


def render(result: Fig6Result) -> str:
    """Plain-text rendering of all computed panels."""
    sections = []
    for dataset, rows in result.panels.items():
        if not rows:
            continue
        series_names = list(rows[0][2])
        headers = ["minsup (frac)", *series_names]
        body = [
            [f"{minsup} ({fraction:g})", *(series[name].render() for name in series_names)]
            for fraction, minsup, series in rows
        ]
        sections.append(
            render_table(headers, body, title=f"Figure 6 — {dataset} runtime")
        )
    for dataset, curve in result.k_panel.items():
        headers = ["k", "TopkRGS runtime"]
        body = [[k, timing.render()] for k, timing in curve]
        sections.append(
            render_table(headers, body, title=f"Figure 6(e) — {dataset}")
        )
    note = (
        f"('+' = wall-clock budget of {result.time_budget:g}s expired "
        "before completion)"
    )
    return "\n\n".join([*sections, note])


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="gene-count scale; FARMER needs small scales "
                             "to finish at low minsup")
    parser.add_argument("--datasets", nargs="+", default=list(DATASET_NAMES),
                        choices=DATASET_NAMES)
    parser.add_argument("--fractions", nargs="+", type=float,
                        default=list(DEFAULT_FRACTIONS))
    parser.add_argument("--time-budget", type=float, default=20.0)
    parser.add_argument("--column-baselines", action="store_true")
    parser.add_argument("--panel", choices=["sweep", "e", "all"], default="all")
    parser.add_argument("--jobs", type=int, default=1,
                        help="also time each miner on this many worker "
                             "processes (adds [Nj] columns; 0 = all cores)")
    args = parser.parse_args(argv)
    result = Fig6Result(time_budget=args.time_budget)
    if args.panel in ("sweep", "all"):
        swept = run(
            scale=args.scale,
            datasets=args.datasets,
            fractions=args.fractions,
            time_budget=args.time_budget,
            column_baselines=args.column_baselines,
            n_jobs=args.jobs,
        )
        result.panels = swept.panels
    if args.panel in ("e", "all"):
        k_result = run_panel_e(scale=args.scale, time_budget=args.time_budget)
        result.k_panel = k_result.k_panel
    print(render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
