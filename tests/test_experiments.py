"""Tests for the experiment drivers (at tiny scale)."""

import pytest

from repro.experiments import fig6, fig7, fig8, table1, table2

SCALE = 0.02


class TestTable1:
    def test_run_and_render(self):
        rows = table1.run(scale=SCALE, datasets=("ALL",))
        assert rows[0].name == "ALL"
        assert rows[0].n_train == 38
        assert rows[0].n_test == 34
        assert rows[0].n_genes_discretized <= rows[0].n_genes
        text = table1.render(rows)
        assert "Table 1" in text
        assert "ALL" in text

    def test_main_cli(self, capsys):
        assert table1.main(["--scale", str(SCALE), "--datasets", "ALL"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 (measured)" in out


class TestTable2:
    def test_run_subset(self):
        result = table2.run(
            scale=SCALE,
            datasets=("ALL",),
            classifiers=("RCBT", "CBA", "C4.5-single"),
            k=2,
            nl=3,
        )
        grid = result.cells["ALL"]
        assert set(grid) == {"RCBT", "CBA", "C4.5-single"}
        for cell in grid.values():
            assert 0.0 <= cell.accuracy <= 1.0
        averages = result.averages()
        assert "RCBT" in averages

    def test_render_with_details(self):
        result = table2.run(
            scale=SCALE, datasets=("ALL",), classifiers=("RCBT", "CBA"),
            k=2, nl=2,
        )
        text = table2.render(result, details=True, show_paper=True)
        assert "Table 2 (measured)" in text
        assert "Table 2 (paper)" in text
        assert "Decision details" in text

    def test_main_cli(self, capsys):
        code = table2.main([
            "--scale", str(SCALE), "--datasets", "ALL",
            "--classifiers", "CBA", "--k", "1", "--nl", "1",
        ])
        assert code == 0
        assert "CBA" in capsys.readouterr().out


class TestFig6:
    def test_sweep(self):
        result = fig6.run(
            scale=SCALE, datasets=("ALL",), fractions=(0.95, 0.9),
            time_budget=5.0,
        )
        rows = result.panels["ALL"]
        assert len(rows) == 2
        for _fraction, minsup, series in rows:
            assert minsup >= 1
            assert "TopkRGS k=1" in series
            assert "FARMER" in series
            assert "FARMER+prefix" in series

    def test_panel_e(self):
        result = fig6.run_panel_e(
            scale=SCALE, datasets=("ALL",), k_values=(1, 5), time_budget=5.0
        )
        curve = result.k_panel["ALL"]
        assert [k for k, _t in curve] == [1, 5]

    def test_column_baselines(self):
        result = fig6.run(
            scale=SCALE, datasets=("ALL",), fractions=(0.95,),
            time_budget=5.0, column_baselines=True,
        )
        series = result.panels["ALL"][0][2]
        assert "CHARM" in series
        assert "CLOSET+" in series

    def test_render(self):
        result = fig6.run(
            scale=SCALE, datasets=("ALL",), fractions=(0.95,), time_budget=5.0
        )
        text = fig6.render(result)
        assert "Figure 6" in text

    def test_main_cli(self, capsys):
        code = fig6.main([
            "--scale", str(SCALE), "--datasets", "ALL",
            "--fractions", "0.95", "--time-budget", "5", "--panel", "sweep",
        ])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out


class TestFig7:
    def test_run_and_render(self):
        result = fig7.run(
            scale=SCALE, datasets=("ALL",), nl_values=(1, 3), k=2
        )
        curve = result.curves["ALL"]
        assert [nl for nl, _acc in curve] == [1, 3]
        assert all(0.0 <= acc <= 1.0 for _nl, acc in curve)
        assert "Figure 7" in fig7.render(result)

    def test_main_cli(self, capsys):
        code = fig7.main([
            "--scale", str(SCALE), "--datasets", "ALL",
            "--nl-values", "1", "2", "--k", "2",
        ])
        assert code == 0
        assert "Figure 7" in capsys.readouterr().out


class TestFig8:
    def test_run(self):
        result = fig8.run(scale=SCALE, dataset="PC", nl=3)
        assert result.n_rule_genes > 0
        assert result.occurrences
        assert all(rank >= 1 for rank in result.ranks.values())
        top = result.top_genes(5)
        counts = [count for _g, count, _r in top]
        assert counts == sorted(counts, reverse=True)

    def test_quantile_shares(self):
        result = fig8.run(scale=SCALE, dataset="PC", nl=3)
        shares = result.rank_quantile_shares((0.5, 1.0))
        assert shares[1.0] == pytest.approx(1.0)
        assert 0.0 <= shares[0.5] <= 1.0

    def test_render(self):
        result = fig8.run(scale=SCALE, dataset="PC", nl=2)
        text = fig8.render(result)
        assert "Figure 8" in text

    def test_main_cli(self, capsys):
        code = fig8.main(["--scale", str(SCALE), "--dataset", "PC", "--nl", "2"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out


class TestDispatcher:
    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2

    def test_help(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 2
        assert main(["--help"]) == 0


class TestAblations:
    def test_classifier_ablation(self):
        from repro.experiments import ablations

        result = ablations.run_classifier_ablation(
            scale=SCALE, datasets=("ALL",), k=2, nl=3
        )
        grid = result.accuracy["ALL"]
        assert set(grid) == {"RCBT", "no standby", "first match", "nl=1",
                             "CBA"}
        assert all(0.0 <= acc <= 1.0 for acc in grid.values())

    def test_miner_ablation(self):
        from repro.experiments import ablations

        result = ablations.run_miner_ablation(scale=SCALE, datasets=("ALL",))
        counters = result.miner_nodes["ALL"]
        assert counters["no top-k pruning"] >= counters["all optimizations"]
        assert counters["pruning only"] >= counters["all optimizations"]

    def test_render(self):
        from repro.experiments import ablations

        result = ablations.run_classifier_ablation(
            scale=SCALE, datasets=("ALL",), k=2, nl=2
        )
        text = ablations.render(result)
        assert "RCBT ablation" in text

    def test_main_cli(self, capsys):
        from repro.experiments import ablations

        code = ablations.main([
            "--scale", str(SCALE), "--datasets", "ALL",
            "--k", "2", "--nl", "2", "--which", "miner",
        ])
        assert code == 0
        assert "MineTopkRGS ablation" in capsys.readouterr().out


class TestTopGenesSensitivity:
    def test_run_top_genes(self):
        result = table2.run_top_genes(
            scale=SCALE, dataset="ALL", gene_counts=(5, 10)
        )
        assert set(result) == {0, 5, 10}
        for cells in result.values():
            assert set(cells) == {"C4.5-single", "SVM"}
            assert all(0.0 <= acc <= 1.0 for acc in cells.values())

    def test_main_flag(self, capsys):
        code = table2.main([
            "--scale", str(SCALE), "--datasets", "ALL",
            "--classifiers", "CBA", "--k", "1", "--nl", "1", "--top-genes",
        ])
        assert code == 0
        assert "Top-N entropy-ranked genes" in capsys.readouterr().out


class TestReport:
    def test_report_runs_everything_tiny(self, tmp_path):
        from repro.experiments import report

        text = report.run(
            scale=SCALE, datasets=("ALL", "PC"), time_budget=3.0, k=2, nl=2
        )
        for heading in ("Table 1", "Table 2", "Figure 6", "Figure 7",
                        "Figure 8", "Ablations"):
            assert heading in text

    def test_report_main_writes_file(self, tmp_path, capsys):
        from repro.experiments import report

        out = tmp_path / "REPORT.md"
        code = report.main([
            "--scale", str(SCALE), "--datasets", "ALL", "PC",
            "--time-budget", "3", "--k", "2", "--nl", "2",
            "--output", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
