"""The bench baseline-comparison gate (``repro bench --compare``).

Pure-payload tests over :func:`repro.bench.compare_reports`: the gate
must fail only on real serial regressions (ratio *and* absolute delta),
skip workloads whose configuration changed, and never crash on a
baseline from a different host.
"""

from __future__ import annotations

from repro.bench import (
    REGRESSION_FACTOR,
    REGRESSION_MIN_DELTA_SECONDS,
    compare_reports,
)

_HOST = {"platform": "test", "cpu_count": 1}


def _report(*benchmarks, host=_HOST):
    return {"host": host, "config": {}, "benchmarks": list(benchmarks)}


def _entry(name="w", serial=1.0, **overrides):
    entry = {
        "name": name,
        "dataset": "ALL",
        "miner": "topk",
        "engine": "tree",
        "k": 100,
        "minsup": 25,
        "n_rows": 38,
        "serial_seconds": serial,
    }
    entry.update(overrides)
    return entry


class TestCompareReports:
    def test_identical_is_ok(self):
        lines, ok = compare_reports(_report(_entry()), _report(_entry()))
        assert ok
        assert "1 compared" in lines[0]
        assert "ok" in lines[0]

    def test_faster_is_ok(self):
        _lines, ok = compare_reports(
            _report(_entry(serial=0.5)), _report(_entry(serial=1.0))
        )
        assert ok

    def test_large_regression_fails(self):
        lines, ok = compare_reports(
            _report(_entry(serial=2.5)), _report(_entry(serial=1.0))
        )
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_ratio_alone_does_not_fail_tiny_workloads(self):
        """A sub-millisecond mine doubling is scheduler jitter, not an
        algorithmic regression: the absolute-delta floor must hold."""
        base = REGRESSION_MIN_DELTA_SECONDS / 10
        _lines, ok = compare_reports(
            _report(_entry(serial=base * 3)), _report(_entry(serial=base))
        )
        assert ok

    def test_delta_alone_does_not_fail(self):
        """Slower in absolute terms but within the ratio threshold."""
        _lines, ok = compare_reports(
            _report(_entry(serial=1.9)), _report(_entry(serial=1.0))
        )
        assert ok
        assert REGRESSION_FACTOR >= 1.9

    def test_missing_baseline_entry_fails(self):
        """A current workload with no baseline entry is a hole in the
        gate, not a skip: it must fail and say how to fix it."""
        lines, ok = compare_reports(
            _report(_entry(name="new-workload")), _report(_entry(name="old"))
        )
        assert not ok
        assert "0 compared" in lines[0]
        missing = [line for line in lines if "MISSING BASELINE" in line]
        assert len(missing) == 1
        assert "new-workload" in missing[0]
        assert "repro.bench --include-quick" in missing[0]

    def test_changed_workload_skipped(self):
        """A k change makes the wall-clock diff meaningless — even a huge
        slowdown must be skipped, not flagged."""
        lines, ok = compare_reports(
            _report(_entry(serial=100.0, k=100)),
            _report(_entry(serial=1.0, k=10)),
        )
        assert ok
        assert any("workload changed (k)" in line for line in lines)

    def test_host_mismatch_noted(self):
        lines, ok = compare_reports(
            _report(_entry()),
            _report(_entry(), host={"platform": "other", "cpu_count": 64}),
        )
        assert ok
        assert any("baseline host differs" in line for line in lines)


def _backends(**columns):
    """Build a ``backends`` dict: name -> seconds."""
    return {
        name: {
            "seconds": seconds,
            "speedup": 1.0,
            "identical_output": True,
            "nodes_visited": 10,
        }
        for name, seconds in columns.items()
    }


class TestBackendColumns:
    """Per-backend serial columns go through the same regression rule,
    and a current column with no baseline counterpart fails the gate."""

    def test_identical_backend_columns_ok(self):
        entry = _entry(backends=_backends(int=1.0, packed=0.8))
        lines, ok = compare_reports(_report(entry), _report(entry))
        assert ok
        assert any("w[packed]" in line for line in lines)

    def test_backend_regression_fails(self):
        lines, ok = compare_reports(
            _report(_entry(backends=_backends(int=1.0, packed=2.5))),
            _report(_entry(backends=_backends(int=1.0, packed=1.0))),
        )
        assert not ok
        assert any(
            "w[packed]" in line and "REGRESSION" in line for line in lines
        )

    def test_backend_ratio_alone_does_not_fail(self):
        """The absolute-delta jitter floor applies per backend column."""
        base = REGRESSION_MIN_DELTA_SECONDS / 10
        _lines, ok = compare_reports(
            _report(_entry(backends=_backends(packed=base * 3))),
            _report(_entry(backends=_backends(packed=base))),
        )
        assert ok

    def test_missing_baseline_backend_column_fails(self):
        """A freshly registered backend has no committed numbers yet —
        that must fail loudly, with the rebaseline command."""
        lines, ok = compare_reports(
            _report(_entry(backends=_backends(int=1.0, numpy=0.5))),
            _report(_entry(backends=_backends(int=1.0))),
        )
        assert not ok
        missing = [line for line in lines if "MISSING BASELINE" in line]
        assert len(missing) == 1
        assert "w[numpy]" in missing[0]
        assert "repro.bench --include-quick" in missing[0]

    def test_baseline_only_backend_is_a_note_not_a_failure(self):
        """The reverse direction: a baseline measured with an optional
        backend still gates a host where that backend is unavailable."""
        lines, ok = compare_reports(
            _report(_entry(backends=_backends(int=1.0))),
            _report(_entry(backends=_backends(int=1.0, numpy=0.5))),
        )
        assert ok
        assert any(
            "w[numpy]" in line and "unavailable on this host" in line
            for line in lines
        )

    def test_entries_without_backend_columns_still_compare(self):
        """Old-schema baselines (pre-backend) must not crash the gate."""
        _lines, ok = compare_reports(
            _report(_entry()), _report(_entry())
        )
        assert ok


def _auto(seconds=1.0, chose="numpy"):
    return {
        "seconds": seconds,
        "speedup": 1.0,
        "identical_output": True,
        "chose_backend": chose,
    }


class TestAutoBackendColumn:
    def test_same_choice_gates_regressions(self):
        lines, ok = compare_reports(
            _report(_entry(auto_backend=_auto(seconds=2.5))),
            _report(_entry(auto_backend=_auto(seconds=1.0))),
        )
        assert not ok
        assert any(
            "w[auto->numpy]" in line and "REGRESSION" in line
            for line in lines
        )

    def test_same_choice_within_threshold_is_ok(self):
        _lines, ok = compare_reports(
            _report(_entry(auto_backend=_auto(seconds=1.2))),
            _report(_entry(auto_backend=_auto(seconds=1.0))),
        )
        assert ok

    def test_different_choice_is_skipped_not_failed(self):
        """A numpy-free host legitimately resolves auto to int where the
        baseline picked numpy — different code, not a regression."""
        lines, ok = compare_reports(
            _report(_entry(auto_backend=_auto(seconds=9.0, chose="int"))),
            _report(_entry(auto_backend=_auto(seconds=1.0, chose="numpy"))),
        )
        assert ok
        assert any(
            "w[auto]" in line and "skipped" in line for line in lines
        )

    def test_missing_auto_column_is_tolerated(self):
        """Old-schema baselines without the auto column must not crash
        or fail the gate."""
        _lines, ok = compare_reports(
            _report(_entry(auto_backend=_auto())), _report(_entry())
        )
        assert ok
