"""Embeddable rule-mining & classification serving layer.

Turns the one-shot library into a long-running server: a named model
registry (:mod:`.registry`), a content-addressed mining cache
(:mod:`.cache`), a cancellable mining job queue (:mod:`.jobs`),
micro-batched classification (:mod:`.batching`), request telemetry
(:mod:`.telemetry`) and a stdlib JSON-over-HTTP front end
(:mod:`.server`, started by ``repro serve``).
"""

from .batching import MicroBatcher
from .cache import MiningCache, dataset_fingerprint, mining_key
from .jobs import Job, JobCancelled, JobQueue
from .registry import ModelRecord, ModelRegistry
from .server import (
    ReproServer,
    RuleService,
    ServiceError,
    topk_result_to_payload,
)
from .telemetry import LatencyHistogram, Telemetry

__all__ = [
    "Job",
    "JobCancelled",
    "JobQueue",
    "LatencyHistogram",
    "MicroBatcher",
    "MiningCache",
    "ModelRecord",
    "ModelRegistry",
    "ReproServer",
    "RuleService",
    "ServiceError",
    "Telemetry",
    "dataset_fingerprint",
    "mining_key",
    "topk_result_to_payload",
]
