"""Shared infrastructure for the experiment drivers.

Each table/figure of the paper's Section 6 has a module here exposing
``run(...) -> result`` and ``render(result) -> str``; this module holds
what they share — workload preparation, wall-clock measurement with
budgets, and plain-text table rendering that mirrors the paper's layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..data.loaders import Benchmark, load_benchmark

__all__ = [
    "DATASET_NAMES",
    "prepare",
    "prepare_all",
    "Timing",
    "timed",
    "render_table",
    "format_seconds",
]

DATASET_NAMES = ("ALL", "LC", "OC", "PC")


def prepare(name: str, scale: float = 1.0, use_cache: bool = True) -> Benchmark:
    """Generate and discretize one paper-shaped dataset."""
    return load_benchmark(name, scale=scale, use_cache=use_cache)


def _prepare_job(job: tuple[str, float, bool]) -> Benchmark:
    # Module-level so it pickles into parallel_map worker processes.
    name, scale, use_cache = job
    return prepare(name, scale, use_cache)


def prepare_all(
    scale: float = 1.0,
    datasets: Sequence[str] = DATASET_NAMES,
    use_cache: bool = True,
    n_jobs: int = 1,
) -> dict[str, Benchmark]:
    """Prepare several datasets keyed by their code.

    ``n_jobs`` != 1 generates/discretizes the datasets in worker
    processes (``None``/0 = all cores); generation is seeded per dataset,
    so the outputs are identical to the serial path.
    """
    if n_jobs != 1 and len(datasets) > 1:
        from ..parallel import parallel_map

        jobs = [(name, scale, use_cache) for name in datasets]
        prepared = parallel_map(_prepare_job, jobs, n_jobs=n_jobs)
        return dict(zip(datasets, prepared))
    return {name: prepare(name, scale, use_cache) for name in datasets}


@dataclass
class Timing:
    """One timed run; ``completed`` False means a budget cut it short."""

    seconds: float
    completed: bool = True
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        return format_seconds(self.seconds) + ("" if self.completed else "+")


def timed(fn: Callable[[], object]) -> tuple[Timing, object]:
    """Run ``fn`` and measure wall-clock time.

    The callee signals truncation by returning an object with a
    ``completed`` or ``stats.completed`` attribute; both are honoured.
    """
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    completed = True
    stats = getattr(result, "stats", None)
    if stats is not None and hasattr(stats, "completed"):
        completed = bool(stats.completed)
    elif hasattr(result, "completed"):
        completed = bool(result.completed)
    return Timing(seconds=elapsed, completed=completed), result


def format_seconds(seconds: float) -> str:
    """Human-scale duration: microseconds up to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Plain-text table with column alignment (first column left)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]

    def _line(row: Sequence[str]) -> str:
        parts = []
        for col, value in enumerate(row):
            if col == 0:
                parts.append(value.ljust(widths[col]))
            else:
                parts.append(value.rjust(widths[col]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(_line(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(_line(row) for row in cells)
    return "\n".join(lines)
