"""Tests for the experiment harness utilities and error types."""

import time

import pytest

from repro.errors import MiningBudgetExceeded, NotFittedError, ReproError
from repro.experiments.harness import (
    Timing,
    format_seconds,
    render_table,
    timed,
)


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5us"

    def test_milliseconds(self):
        assert format_seconds(0.0213) == "21.3ms"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.50s"

    def test_minutes(self):
        assert format_seconds(300) == "5.0min"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("----")
        assert lines[2].startswith("a ")
        # Numbers are right-aligned.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text


class TestTiming:
    def test_render_completed(self):
        assert Timing(seconds=0.5).render() == "500.0ms"

    def test_render_truncated_marks_plus(self):
        assert Timing(seconds=2.0, completed=False).render() == "2.00s+"

    def test_timed_measures(self):
        timing, value = timed(lambda: (time.sleep(0.01), 42)[1])
        assert value == 42
        assert timing.seconds >= 0.01
        assert timing.completed

    def test_timed_reads_stats_completed(self):
        class Result:
            class stats:
                completed = False

        timing, _ = timed(lambda: Result())
        assert not timing.completed

    def test_timed_reads_completed_attribute(self):
        class Result:
            completed = False

        timing, _ = timed(lambda: Result())
        assert not timing.completed


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(MiningBudgetExceeded, ReproError)
        assert issubclass(NotFittedError, ReproError)
        assert issubclass(ReproError, Exception)

    def test_budget_error_carries_stats(self):
        error = MiningBudgetExceeded("over", stats={"nodes": 5})
        assert error.stats == {"nodes": 5}
        assert "over" in str(error)

    def test_budget_error_default_stats(self):
        assert MiningBudgetExceeded("over").stats is None
