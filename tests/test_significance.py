"""Tests for rule/rule-group descriptive statistics."""

from repro.analysis.significance import (
    coverage_summary,
    gene_usage,
    summarize_groups,
)
from repro.core.bitset import from_indices
from repro.core.rules import Rule, RuleGroup
from repro.data.dataset import DiscretizedDataset, Item


def group(conf, sup, antecedent):
    return RuleGroup(frozenset(antecedent), 1, from_indices(range(sup)), sup, conf)


class TestSummarizeGroups:
    def test_empty(self):
        summary = summarize_groups([])
        assert summary.n_groups == 0
        assert summary.describe() == "no rule groups"

    def test_statistics(self):
        groups = [group(1.0, 3, (1, 2)), group(0.5, 5, (1, 2, 3, 4))]
        summary = summarize_groups(groups)
        assert summary.n_groups == 2
        assert summary.min_support == 3
        assert summary.max_support == 5
        assert summary.min_confidence == 0.5
        assert summary.max_confidence == 1.0
        assert summary.mean_antecedent_length == 3.0

    def test_describe(self):
        text = summarize_groups([group(1.0, 3, (1,))]).describe()
        assert "1 groups" in text


class TestCoverageSummary:
    def test_empty(self):
        assert coverage_summary({})["coverage"] == 0.0

    def test_partial_coverage(self):
        per_row = {0: [group(1.0, 2, (1,))], 1: [], 2: [group(0.5, 2, (2,))]}
        summary = coverage_summary(per_row)
        assert summary["rows"] == 3
        assert summary["covered"] == 2
        assert summary["coverage"] == 2 / 3


class TestGeneUsage:
    def test_counts_genes_once_per_rule(self):
        items = [
            Item(0, 0, "g0", float("-inf"), 0.0),
            Item(1, 0, "g0", 0.0, float("inf")),
            Item(2, 1, "g1", float("-inf"), float("inf")),
        ]
        ds = DiscretizedDataset([{0, 2}], [0], items, class_names=["a"])
        rules = [
            Rule(frozenset({0, 1}), 0, 1, 1.0),  # two items, one gene
            Rule(frozenset({2}), 0, 1, 1.0),
            Rule(frozenset({0, 2}), 0, 1, 1.0),
        ]
        usage = gene_usage(ds, rules)
        assert usage == {0: 2, 1: 2}
