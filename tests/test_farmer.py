"""Tests for the FARMER baseline."""

import pytest

from repro.baselines import mine_farmer, naive_farmer
from repro.data.synthetic import random_discretized_dataset


def keys(groups):
    return {
        (tuple(sorted(g.antecedent)), g.row_set, g.support,
         round(g.confidence, 9))
        for g in groups
    }


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("minsup", (1, 2, 3))
    def test_matches_oracle(self, seed, minsup):
        ds = random_discretized_dataset(9, 8, density=0.45, seed=seed)
        expected = keys(naive_farmer(ds, 1, minsup))
        actual = keys(mine_farmer(ds, 1, minsup).groups)
        assert actual == expected

    @pytest.mark.parametrize("minconf", (0.0, 0.5, 0.9))
    def test_minconf_filter(self, minconf, small_random):
        expected = keys(naive_farmer(small_random, 1, 1, minconf))
        actual = keys(mine_farmer(small_random, 1, 1, minconf=minconf).groups)
        assert actual == expected

    def test_other_consequent(self, small_random):
        expected = keys(naive_farmer(small_random, 0, 2))
        actual = keys(mine_farmer(small_random, 0, 2).groups)
        assert actual == expected


class TestFigure1:
    def test_known_groups_present(self, figure1):
        result = mine_farmer(figure1, 1, minsup=2)
        antecedents = {tuple(sorted(g.antecedent)) for g in result.groups}
        assert (0, 1, 2) in antecedents  # abc
        assert (2,) in antecedents  # c
        assert (2, 3, 4) in antecedents  # cde

    def test_group_count_exceeds_topk_output(self, figure1):
        from repro.core.topk_miner import mine_topk

        farmer = mine_farmer(figure1, 1, minsup=2)
        topk = mine_topk(figure1, 1, minsup=2, k=1)
        assert len(farmer.groups) >= len(topk.unique_groups())


class TestInterface:
    def test_sorted_by_significance(self, small_random):
        result = mine_farmer(small_random, 1, 1)
        ordered = result.sorted_by_significance()
        stats = [(g.confidence, g.support) for g in ordered]
        assert stats == sorted(stats, reverse=True)

    def test_invalid_minconf(self, small_random):
        with pytest.raises(ValueError, match="minconf"):
            mine_farmer(small_random, 1, 1, minconf=1.5)

    def test_result_metadata(self, small_random):
        result = mine_farmer(small_random, 1, 2, minconf=0.4)
        assert result.consequent == 1
        assert result.minsup == 2
        assert result.minconf == 0.4
        assert result.completed
