"""Figure 7: effect of the number of lower bound rules (nl) on accuracy.

Sweeps ``nl`` for RCBT on the ALL- and LC-shaped datasets (the two the
paper plots).  The published curves are flat for nl ≳ 15 — the committee
saturates — and that insensitivity is the claim this driver checks.

``--jobs`` additionally fits each point through the process-pool mining
backend and reports serial vs. parallel build wall-clock side by side
(the fitted models are identical, so accuracy is measured once).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..classifiers import RCBTClassifier
from .harness import DATASET_NAMES, format_seconds, prepare, render_table

__all__ = ["Fig7Result", "run", "render", "main"]

DEFAULT_NL_VALUES = (1, 5, 10, 15, 20, 25)


@dataclass
class Fig7Result:
    """Accuracy per dataset per nl value.

    ``timings`` holds per-point build wall-clock as ``(nl, serial
    seconds, parallel seconds or None)``; parallel entries are filled
    only when :func:`run` is given ``n_jobs`` != 1.
    """

    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    timings: dict[str, list[tuple[int, float, Optional[float]]]] = field(
        default_factory=dict
    )
    k: int = 10
    n_jobs: int = 1


def run(
    scale: float = 1.0,
    datasets: Sequence[str] = ("ALL", "LC"),
    nl_values: Sequence[int] = DEFAULT_NL_VALUES,
    k: int = 10,
    minsup_fraction: float = 0.7,
    n_jobs: int = 1,
) -> Fig7Result:
    """Fit RCBT at each nl and record test accuracy (and build times)."""
    result = Fig7Result(k=k, n_jobs=n_jobs)
    for name in datasets:
        benchmark = prepare(name, scale)
        curve = []
        timings = []
        for nl in nl_values:
            start = time.perf_counter()
            model = RCBTClassifier(
                k=k, nl=nl, minsup_fraction=minsup_fraction
            ).fit(benchmark.train_items)
            serial_seconds = time.perf_counter() - start
            parallel_seconds: Optional[float] = None
            if n_jobs != 1:
                start = time.perf_counter()
                RCBTClassifier(
                    k=k, nl=nl, minsup_fraction=minsup_fraction,
                    n_jobs=n_jobs,
                ).fit(benchmark.train_items)
                parallel_seconds = time.perf_counter() - start
            curve.append((nl, model.score(benchmark.test_items)))
            timings.append((nl, serial_seconds, parallel_seconds))
        result.curves[name] = curve
        result.timings[name] = timings
    return result


def render(result: Fig7Result) -> str:
    datasets = list(result.curves)
    nl_values = [nl for nl, _acc in next(iter(result.curves.values()))]
    headers = ["nl", *datasets]
    body = []
    for index, nl in enumerate(nl_values):
        body.append(
            [nl, *(f"{result.curves[d][index][1]:.2%}" for d in datasets)]
        )
    sections = [
        render_table(
            headers, body, title=f"Figure 7 — RCBT accuracy vs nl (k={result.k})"
        )
    ]
    if result.timings:
        jobs_label = f"{result.n_jobs}j" if result.n_jobs != 1 else None
        time_headers = ["nl"]
        for dataset in datasets:
            time_headers.append(f"{dataset} serial")
            if jobs_label:
                time_headers.append(f"{dataset} [{jobs_label}]")
        time_body = []
        for index, nl in enumerate(nl_values):
            row: list[object] = [nl]
            for dataset in datasets:
                _nl, serial_seconds, parallel_seconds = result.timings[dataset][index]
                row.append(format_seconds(serial_seconds))
                if jobs_label:
                    row.append(
                        format_seconds(parallel_seconds)
                        if parallel_seconds is not None
                        else "-"
                    )
            time_body.append(row)
        sections.append(
            render_table(
                time_headers, time_body,
                title="Figure 7 — RCBT build wall-clock",
            )
        )
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--datasets", nargs="+", default=["ALL", "LC"],
                        choices=DATASET_NAMES)
    parser.add_argument("--nl-values", nargs="+", type=int,
                        default=list(DEFAULT_NL_VALUES))
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=1,
                        help="also time the classifier build on this many "
                             "worker processes (0 = all cores)")
    args = parser.parse_args(argv)
    print(render(run(scale=args.scale, datasets=args.datasets,
                     nl_values=args.nl_values, k=args.k, n_jobs=args.jobs)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
