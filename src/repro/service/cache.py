"""Content-addressed cache of :func:`~repro.core.topk_miner.mine_topk` runs.

The paper's intended workflow is interactive: a biologist loads one
discretized dataset and re-mines it while sweeping ``minsup``/``k``.
Every such request is a pure function of ``(dataset contents, consequent,
minsup, k, engine)``, so the service keys a cache on a SHA-256
fingerprint of exactly those inputs and answers repeats in O(1).

The cache is an LRU bounded by an *estimated byte size* rather than an
entry count, because one ``TopkResult`` can range from a handful of rule
groups to tens of thousands; bounding bytes keeps the resident set
predictable regardless of workload shape.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from collections import OrderedDict
from typing import Optional

from ..core.topk_miner import TopkResult
from ..data.dataset import DiscretizedDataset

__all__ = ["dataset_fingerprint", "mining_key", "MiningCache"]


def dataset_fingerprint(dataset: DiscretizedDataset) -> str:
    """SHA-256 hex digest of a discretized dataset's full contents.

    Two datasets with identical rows, labels, item catalogs and class
    names fingerprint identically regardless of object identity, load
    path, or ``name`` (the display name does not affect mining output).
    """
    blob = json.dumps(
        {
            "rows": [sorted(row) for row in dataset.rows],
            "labels": dataset.labels,
            "items": [
                (item.item_id, item.gene_index, item.gene_name,
                 repr(item.low), repr(item.high))
                for item in dataset.items
            ],
            "class_names": dataset.class_names,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def mining_key(
    fingerprint: str,
    consequent: int,
    minsup: int,
    k: int,
    engine: str,
    strategy: str = "direct",
) -> str:
    """Cache key of one mining request over a fingerprinted dataset.

    ``strategy`` is appended only when it differs from ``direct`` so
    every key minted before strategies existed stays valid (durable
    stores survive upgrades).  Hybrid results are bit-identical to
    direct ones, but the stats differ, so the honest move is separate
    entries.
    """
    key = f"{fingerprint}:c{consequent}:s{minsup}:k{k}:{engine}"
    if strategy != "direct":
        key = f"{key}:{strategy}"
    return key


def _estimate_result_bytes(result: TopkResult) -> int:
    """Rough resident size of a cached result.

    Exact deep sizes are not worth the traversal cost; rule groups
    dominate, so charge each distinct group its measured container sizes
    and each per-row list slot a pointer.  The estimate only needs to be
    proportional enough for the byte bound to behave sensibly.
    """
    seen: set[int] = set()
    total = sys.getsizeof(result.per_row)
    for groups in result.per_row.values():
        total += sys.getsizeof(groups) + 8 * len(groups)
        for group in groups:
            if id(group) in seen:
                continue
            seen.add(id(group))
            total += 128  # dataclass + scalar fields
            total += sys.getsizeof(group.antecedent)
            total += sys.getsizeof(group.row_set)
    return total


class MiningCache:
    """Byte-bounded LRU cache of finished mining results.

    Args:
        max_bytes: bound on the summed size estimates of cached results.
            Oldest (least recently used) entries are evicted to fit; a
            single result larger than the bound is simply not cached.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[TopkResult, int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[TopkResult]:
        """Cached result for ``key``, refreshing its recency; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, result: TopkResult) -> None:
        """Insert (or refresh) a finished mining result.

        A result larger than the whole cache bound is simply not cached
        — and leaves any previously cached entry for the key in place,
        rather than dropping a good entry on the way to bailing out.
        """
        size = _estimate_result_bytes(result)
        with self._lock:
            if size > self.max_bytes:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            while self._bytes + size > self.max_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
            self._entries[key] = (result, size)
            self._bytes += size

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-safe counters for ``/metrics``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
