"""repro: reproduction of "Mining Top-k Covering Rule Groups for Gene
Expression Data" (Cong, Tan, Tung, Xu -- SIGMOD 2005).

Public surface:

* :mod:`repro.core` -- MineTopkRGS, rule groups, FindLB, row enumeration;
* :mod:`repro.data` -- datasets, entropy-MDL discretization, synthetic
  paper-shaped workloads;
* :mod:`repro.baselines` -- FARMER, CHARM, CLOSET+ and brute-force
  oracles;
* :mod:`repro.classifiers` -- RCBT, CBA, IRG, C4.5 family, SVM;
* :mod:`repro.analysis` -- gene rankings and evaluation metrics;
* :mod:`repro.experiments` -- drivers regenerating every table and figure
  of the paper's evaluation section;
* :mod:`repro.service` -- embeddable serving layer (model registry,
  mining cache, job queue, micro-batching, HTTP API; ``repro serve``);
* :mod:`repro.parallel` -- process-pool mining backend (first-level
  subtree sharding; ``n_jobs=`` on the miners, ``repro bench``).
"""

from .core import (
    Rule,
    RuleGroup,
    TopkResult,
    mine_topk,
    relative_minsup,
)
from .parallel import (
    mine_farmer_parallel,
    mine_topk_parallel,
    mine_topk_sharded,
    parallel_map,
    results_equal,
)
from .core.lower_bounds import find_lower_bounds, find_lower_bounds_batch
from .data import (
    DiscretizedDataset,
    EntropyDiscretizer,
    GeneExpressionDataset,
    generate_paper_dataset,
    load_benchmark,
    make_figure1_example,
)
from .errors import MiningBudgetExceeded, NotFittedError, ReproError
from .service import (
    JobQueue,
    MiningCache,
    ModelRegistry,
    ReproServer,
    RuleService,
    dataset_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    "DiscretizedDataset",
    "EntropyDiscretizer",
    "GeneExpressionDataset",
    "JobQueue",
    "MiningBudgetExceeded",
    "MiningCache",
    "ModelRegistry",
    "NotFittedError",
    "ReproError",
    "ReproServer",
    "Rule",
    "RuleGroup",
    "RuleService",
    "TopkResult",
    "__version__",
    "dataset_fingerprint",
    "find_lower_bounds",
    "find_lower_bounds_batch",
    "generate_paper_dataset",
    "load_benchmark",
    "make_figure1_example",
    "mine_farmer_parallel",
    "mine_topk",
    "mine_topk_parallel",
    "mine_topk_sharded",
    "parallel_map",
    "relative_minsup",
    "results_equal",
]
