"""CLI dispatcher: ``python -m repro.experiments <experiment> [options]``."""

from __future__ import annotations

import sys

from . import ablations, fig6, fig7, fig8, report, table1, table2

_EXPERIMENTS = {
    "ablations": ablations.main,
    "report": report.main,
    "table1": table1.main,
    "table2": table2.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
}


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(sorted(_EXPERIMENTS))
        print(f"usage: python -m repro.experiments <experiment> [options]")
        print(f"experiments: {names}")
        return 0 if argv else 2
    name, *rest = argv
    runner = _EXPERIMENTS.get(name)
    if runner is None:
        names = ", ".join(sorted(_EXPERIMENTS))
        print(f"unknown experiment {name!r}; expected one of: {names}",
              file=sys.stderr)
        return 2
    return runner(rest)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
