"""Guard the checked-in reproduction artifacts against going stale."""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

ARTIFACTS = {
    "results_table2.txt": ("Table 2 (measured)", "RCBT"),
    "results_fig6.txt": ("Figure 6", "TopkRGS k=1"),
    "results_fig7.txt": ("Figure 7", "nl"),
    "results_fig8.txt": ("Figure 8", "Chi-square rank"),
    "results_ablations.txt": ("RCBT ablation", "no top-k pruning"),
    "REPORT.md": ("# Reproduction report", "Figure 8"),
}


@pytest.mark.parametrize("name,markers", sorted(ARTIFACTS.items()))
def test_artifact_present_and_well_formed(name, markers):
    path = ROOT / name
    assert path.exists(), f"{name} missing — regenerate per EXPERIMENTS.md"
    text = path.read_text(encoding="utf-8")
    for marker in markers:
        assert marker in text, f"{name} lacks {marker!r}"


def test_experiments_md_references_artifacts():
    text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in ARTIFACTS:
        if name.startswith("results_"):
            assert name in text


def test_design_md_paper_confirmation_present():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    assert "matches the claimed paper" in text
