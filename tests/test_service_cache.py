"""Tests for the content-addressed mining cache."""

import pytest

from repro.core.topk_miner import mine_topk
from repro.data import make_figure1_example
from repro.data.loaders import discretized_from_payload, discretized_to_payload
from repro.service.cache import MiningCache, dataset_fingerprint, mining_key


class TestFingerprint:
    def test_stable_across_calls(self, figure1):
        assert dataset_fingerprint(figure1) == dataset_fingerprint(figure1)

    def test_payload_round_trip_preserves_fingerprint(self, figure1):
        clone = discretized_from_payload(discretized_to_payload(figure1))
        assert dataset_fingerprint(clone) == dataset_fingerprint(figure1)

    def test_display_name_is_ignored(self, figure1):
        clone = discretized_from_payload(discretized_to_payload(figure1))
        clone.name = "renamed"
        assert dataset_fingerprint(clone) == dataset_fingerprint(figure1)

    def test_row_change_changes_fingerprint(self, figure1):
        payload = discretized_to_payload(figure1)
        payload["rows"][0] = payload["rows"][0][:-1]
        changed = discretized_from_payload(payload)
        assert dataset_fingerprint(changed) != dataset_fingerprint(figure1)

    def test_label_change_changes_fingerprint(self, figure1):
        payload = discretized_to_payload(figure1)
        payload["labels"][0] = 1 - payload["labels"][0]
        changed = discretized_from_payload(payload)
        assert dataset_fingerprint(changed) != dataset_fingerprint(figure1)

    def test_key_varies_with_every_parameter(self, figure1):
        fp = dataset_fingerprint(figure1)
        keys = {
            mining_key(fp, 1, 2, 1, "bitset"),
            mining_key(fp, 0, 2, 1, "bitset"),
            mining_key(fp, 1, 3, 1, "bitset"),
            mining_key(fp, 1, 2, 2, "bitset"),
            mining_key(fp, 1, 2, 1, "table"),
        }
        assert len(keys) == 5


class TestMiningCache:
    def _result(self, figure1, k=1):
        return mine_topk(figure1, 1, 2, k=k)

    def test_get_miss_then_hit(self, figure1):
        cache = MiningCache(max_bytes=1 << 20)
        key = mining_key(dataset_fingerprint(figure1), 1, 2, 1, "bitset")
        assert cache.get(key) is None
        result = self._result(figure1)
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_byte_bound_evicts_lru(self, figure1):
        result = self._result(figure1)
        cache = MiningCache(max_bytes=1 << 20)
        cache.put("probe", result)
        size = cache.stats()["bytes"]
        assert size > 0
        # Room for exactly two entries: inserting a third evicts the
        # least recently used one.
        cache = MiningCache(max_bytes=int(size * 2.5))
        cache.put("a", result)
        cache.put("b", result)
        assert cache.get("a") is result  # refresh "a"; "b" is now LRU
        cache.put("c", result)
        assert cache.get("b") is None
        assert cache.get("a") is result
        assert cache.get("c") is result
        assert cache.stats()["evictions"] == 1

    def test_oversized_result_is_not_cached(self, figure1):
        cache = MiningCache(max_bytes=16)
        cache.put("key", self._result(figure1))
        assert len(cache) == 0
        assert cache.get("key") is None

    def test_clear(self, figure1):
        cache = MiningCache(max_bytes=1 << 20)
        cache.put("key", self._result(figure1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["bytes"] == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            MiningCache(max_bytes=0)
