"""Prefix-tree representation of (projected) transposed tables.

Section 4.2 of the paper represents the transposed table as a prefix tree
(Figure 4): each tuple of the transposed table — the ascending list of row
ids containing one item — is inserted as a path, so tuples sharing a
prefix share trie nodes.  Each node records the row id and the number of
items whose tuple passes through it, and a header table links all nodes
carrying the same row id.  Frequency counting (Figure 3 step 10) then
touches each shared path once instead of once per item, which is where
"FARMER+prefix" gets its order-of-magnitude over plain projected tables.

Projection onto a row ``r`` (building ``TT|_{X ∪ {r}}`` from ``TT|_X``)
follows the header links of ``r``: every item whose path passes through an
``r``-labelled node survives, keeping only the part of its path below that
node.  Items whose path *ends* at an ``r`` node have no rows left; they
remain members of ``I(X ∪ {r})`` (the tree keeps them in ``exhausted``)
but cannot extend further.

Projections are built **lazily**.  ``project(r)`` returns a tree that
knows its source ``r``-nodes but has not walked their subtrees yet:
``n_items`` comes straight from the nodes' pass-through counts (an item's
path crosses ``r`` exactly once, so the counts sum to ``|I(X ∪ {r})|``)
and ``all_items()`` is a light items-only walk.  The header table and row
frequencies — the expensive part, and for merged projections the only
part that allocates nodes — materialize on first access.  The tree
enumeration kernel backward-prunes well over half its projections after
looking only at the item list, so those projections never pay for
header/frequency construction at all.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

__all__ = ["PrefixTreeNode", "PrefixTree"]


class PrefixTreeNode:
    """One trie node: a row id, pass-through count, and terminal items.

    ``items_below`` lazily caches the subtree's full item list (computed
    by :func:`_node_items_below`).  Aliased projections share trie nodes,
    so one subtree's item list serves every projection that contains it —
    compute it after the tree is fully built; ``insert`` does not
    invalidate it.
    """

    __slots__ = ("row", "count", "children", "items", "items_below")

    def __init__(self, row: int) -> None:
        self.row = row
        self.count = 0
        self.children: dict[int, "PrefixTreeNode"] = {}
        self.items: list[int] = []
        self.items_below: Optional[list[int]] = None

    def __repr__(self) -> str:
        return f"PrefixTreeNode(row={self.row}, count={self.count})"


def _node_items_below(node: PrefixTreeNode) -> list[int]:
    """The subtree's items — the node's own, then each child subtree in
    *reverse* child order (the historical stack-walk order, which the
    projection item lists must reproduce exactly).  Cached per node."""
    cached = node.items_below
    if cached is not None:
        return cached
    stack = [node]
    while stack:
        current = stack[-1]
        if current.items_below is not None:
            stack.pop()
            continue
        pending = [
            child for child in current.children.values()
            if child.items_below is None
        ]
        if pending:
            stack.extend(pending)
            continue
        result = list(current.items)
        for child in reversed(list(current.children.values())):
            result.extend(child.items_below)
        current.items_below = result
        stack.pop()
    return node.items_below


class PrefixTree:
    """A prefix tree over transposed-table tuples.

    Attributes:
        root: virtual root node (row id -1).
        header: row id -> list of nodes labelled with that row
            (materializes a lazy projection on access).
        exhausted: item ids that are in ``I(X)`` but have no remaining
            rows in this projection.
        n_items: total items represented, including exhausted ones —
            this is ``|I(X)|`` for the node owning this projection.
    """

    def __init__(self) -> None:
        self.root = PrefixTreeNode(-1)
        self._header: dict[int, list[PrefixTreeNode]] = {}
        self.exhausted: list[int] = []
        self.n_items = 0
        self._items_cache: Optional[list[int]] = None
        # Row frequencies accumulated while the tree is built (insert or
        # merge), so the step-10 scan is a dict read instead of a header
        # walk.  Keys appear in the same first-touch order as `header`.
        self._row_freq: dict[int, int] = {}
        # Source r-nodes of an unmaterialized projection; None once the
        # header/frequency tables are built (or for trees built by
        # ``insert``, which maintains them incrementally).
        self._pending: Optional[Sequence[PrefixTreeNode]] = None
        # Memoized child projections, keyed by row.  A projection is a
        # pure function of an immutable tree, and kernels only read
        # projected trees, so the whole projection DAG can be shared
        # across runs — the tree-engine analogue of the SupportIndex
        # fold memo the bitset engine warms up on repeat mines.
        self._projections: dict[int, "PrefixTree"] = {}

    @classmethod
    def from_items(cls, tuples: Iterable[tuple[int, Sequence[int]]]) -> "PrefixTree":
        """Build a tree from (item id, ascending row list) tuples."""
        tree = cls()
        for item, rows in tuples:
            tree.insert(item, rows)
        return tree

    def insert(self, item: int, rows: Sequence[int]) -> None:
        """Insert one tuple; an empty row list records an exhausted item."""
        self.n_items += 1
        self._items_cache = None
        if self._projections:
            self._projections = {}
        if not rows:
            self.exhausted.append(item)
            return
        node = self.root
        row_freq = self._row_freq
        for row in rows:
            child = node.children.get(row)
            if child is None:
                child = PrefixTreeNode(row)
                node.children[row] = child
                self._header.setdefault(row, []).append(child)
            child.count += 1
            row_freq[row] = row_freq.get(row, 0) + 1
            node = child
        node.items.append(item)

    @property
    def header(self) -> dict[int, list[PrefixTreeNode]]:
        if self._pending is not None:
            self._materialize()
        return self._header

    def rows_present(self) -> list[int]:
        """Sorted row ids appearing in at least one tuple."""
        return sorted(self.header)

    def row_freq(self) -> dict[int, int]:
        """Row id -> item count, materialized, without the copy of
        :meth:`row_frequencies` — the kernels' read-only fast path."""
        if self._pending is not None:
            self._materialize()
        return self._row_freq

    def row_frequencies(self) -> dict[int, int]:
        """Row id -> number of items whose tuple contains the row.

        This is the step-10 frequency scan; thanks to prefix sharing each
        trie node is visited once regardless of how many items pass
        through it.  The counts are maintained incrementally as the tree
        is built, so this is a dict copy, not a header walk.
        """
        return dict(self.row_freq())

    def all_items(self) -> list[int]:
        """Every item represented in this projection (``I(X)``)."""
        if self._items_cache is not None:
            return self._items_cache
        if self._pending is not None:
            items = self._collect_pending_items()
        else:
            items = list(self.exhausted)
            stack = [self.root]
            while stack:
                node = stack.pop()
                items.extend(node.items)
                stack.extend(node.children.values())
        self._items_cache = items
        return items

    def project(self, r: int) -> "PrefixTree":
        """Build the projection onto row ``r`` (rows after ``r`` only).

        Follows the header links of ``r``: each ``r``-labelled node's
        subtree belongs to the projection, and items terminating at the
        ``r`` node itself become exhausted.  This is the prefix-tree
        payoff — work is proportional to the number of *trie nodes*
        below ``r``, not to items × path length.  The returned tree is
        lazy: ``n_items``/``exhausted`` are ready (pass-through counts),
        the header and frequency tables build on first access.

        Projections are memoized per tree.  A repeat mine over a cached
        view therefore reuses the entire projection DAG from the
        previous run instead of rebuilding it node by node — memory
        stays bounded by the enumeration tree the kernel walks anyway.
        """
        projected = self._projections.get(r)
        if projected is not None:
            return projected
        if self._pending is not None:
            self._materialize()
        nodes = self._header.get(r)
        projected = PrefixTree()
        if nodes:
            n_items = 0
            exhausted = projected.exhausted
            for node in nodes:
                n_items += node.count
                if node.items:
                    exhausted.extend(node.items)
            projected.n_items = n_items
            projected._pending = nodes
        self._projections[r] = projected
        return projected

    def _collect_pending_items(self) -> list[int]:
        """The pending projection's item list, in the exact order
        materialization would first touch the items.  Built from the
        per-node subtree caches: the single-source (alias) walk visits
        children LIFO — reverse order, i.e. ``items_below`` itself — and
        the merge walk visits children in order, each subtree LIFO."""
        sources = self._pending
        if len(sources) == 1:
            return _node_items_below(sources[0])
        collected: list[int] = []
        for node in sources:
            collected.extend(node.items)
            for child in node.children.values():
                collected.extend(_node_items_below(child))
        return collected

    def _materialize(self) -> None:
        """Build the header/frequency tables (and tree structure, when
        sources must merge) deferred by :meth:`project`.

        Everything is built into local structures and published with
        plain attribute assignments, ``_pending`` cleared last: lazy
        projections are shared across runs (and potentially threads),
        and a concurrent second materialization must at worst redo the
        work, never observe or corrupt a half-built table.
        """
        sources = self._pending
        if self._items_cache is None:
            self._items_cache = self._collect_pending_items()
        if len(sources) == 1:
            self._alias_subtree(sources[0])
        else:
            root = PrefixTreeNode(-1)
            header: dict[int, list[PrefixTreeNode]] = {}
            row_freq: dict[int, int] = {}
            for node in sources:
                for child in node.children.values():
                    self._merge_subtree(root, child, header, row_freq)
            self.root.children = root.children
            self._header = header
            self._row_freq = row_freq
        self._pending = None

    def _alias_subtree(self, node: PrefixTreeNode) -> None:
        """Materialize a single-source projection by sharing subtrees.

        With one source node, every subtree below it lands on a distinct
        branch of the projection (sibling rows are distinct in a trie),
        so no paths ever merge and every count is unchanged.  The
        projected tree therefore *shares* the source subtrees and only
        builds its own header/frequency tables by walking them — no node
        is copied.  Safe because projections are read-only once built:
        merging only ever mutates the destination tree's fresh nodes,
        and an aliased tree is never a merge destination.
        """
        header: dict[int, list[PrefixTreeNode]] = {}
        row_freq: dict[int, int] = {}
        stack = list(node.children.values())
        root_children = {child.row: child for child in stack}
        pop = stack.pop
        push = stack.extend
        while stack:
            current = pop()
            row = current.row
            links = header.get(row)
            if links is None:
                header[row] = [current]
            else:
                links.append(current)
            row_freq[row] = row_freq.get(row, 0) + current.count
            push(current.children.values())
        self.root.children = root_children
        self._header = header
        self._row_freq = row_freq

    def _merge_subtree(
        self,
        destination: PrefixTreeNode,
        source: PrefixTreeNode,
        header: dict[int, list[PrefixTreeNode]],
        row_freq: dict[int, int],
    ) -> None:
        """Merge ``source`` (and its subtree) under ``destination``,
        recording new nodes in the caller's local tables."""
        stack = [(destination, source)]
        pop = stack.pop
        push = stack.append
        while stack:
            dst_parent, src = pop()
            row = src.row
            siblings = dst_parent.children
            dst = siblings.get(row)
            if dst is None:
                dst = PrefixTreeNode(row)
                siblings[row] = dst
                links = header.get(row)
                if links is None:
                    header[row] = [dst]
                else:
                    links.append(dst)
            count = src.count
            dst.count += count
            row_freq[row] = row_freq.get(row, 0) + count
            items = src.items
            if items:
                dst.items.extend(items)
            for child in src.children.values():
                push((dst, child))

    def __repr__(self) -> str:
        return (
            f"PrefixTree(items={self.n_items}, "
            f"rows={len(self.header)}, exhausted={len(self.exhausted)})"
        )


def _iter_terminal_paths(
    node: PrefixTreeNode,
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield (item, row path below ``node``) for all items under ``node``."""
    stack: list[tuple[PrefixTreeNode, tuple[int, ...]]] = [
        (child, (child.row,)) for child in node.children.values()
    ]
    while stack:
        current, path = stack.pop()
        for item in current.items:
            yield item, path
        for child in current.children.values():
            stack.append((child, path + (child.row,)))
