"""Row enumeration engines and the shared depth-first driver.

All miners in this package (MineTopkRGS and the FARMER baselines) are a
depth-first walk of the row enumeration tree of Figure 2.  What differs is

* the *policy* — which subtrees are pruned and which discovered rule
  groups are kept (top-k dynamic thresholds vs. FARMER's static ones), and
* the *engine* — the data structure used to project transposed tables and
  count row frequencies at each node.

Three engines are provided:

``bitset``
    Item support sets are integer bitsets over row positions; closures are
    intersections and frequency tests are bit probes.  The fastest engine
    and the default for classifier construction and tests.

``table``
    Faithful to the original FARMER implementation: the projected
    transposed table at each node is an explicit list of tuples (item,
    ascending row list) and frequencies are counted by scanning it.  This
    is the paper's "FARMER" cost profile.

``tree``
    The prefix-tree representation of Section 4.2 (see
    :mod:`repro.core.prefix_tree`), the paper's "FARMER+prefix" /
    MineTopkRGS structure: identical tuple prefixes share trie paths so a
    frequency scan touches each shared path once.

All engines visit exactly the same closed nodes in the same order and call
the same policy hooks, so outputs are identical; only the constant factors
differ.  That property is what lets the Figure 6 benchmarks attribute
speedups to the prefix tree versus the top-k pruning, and it is verified
by the cross-engine tests.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..errors import MiningBudgetExceeded
from .bitset import iter_indices, mask_below
from .view import MiningView

__all__ = [
    "SearchPolicy",
    "MinerStats",
    "run_enumeration",
    "ENGINES",
    "POLL_STRIDE",
]

ENGINES = ("bitset", "table", "tree")

# Deadline/cancellation poll stride of the node budget, in enumeration
# nodes.  Shared with the parallel workers of :mod:`repro.parallel` so a
# cooperative stop lands within the same bounded number of nodes whether
# a mine runs serially or sharded across processes.
POLL_STRIDE = 64


class _CancelToken(Protocol):
    """Cooperative-cancellation token (``threading.Event`` qualifies)."""

    def is_set(self) -> bool: ...


class SearchPolicy(Protocol):
    """Miner-specific pruning and collection logic.

    ``threshold_bits`` passed to the pruning hooks is the position bitset
    of consequent-class rows whose top-k lists the subtree could still
    improve (``X_p ∪ R_p`` of Lemma 3.2); static-threshold policies may
    ignore it.  A policy that never reads it can declare
    ``uses_threshold_bits = False`` (default ``True``) and the engines
    pass ``0`` instead of assembling the row sets — an O(n_rows) bitset
    op per candidate that matters on tall datasets.  Pruning decisions,
    node order and :class:`MinerStats` are unaffected.
    """

    uses_threshold_bits: bool = True

    @property
    def minsup(self) -> int:
        """Current absolute minimum support (may grow dynamically)."""
        ...

    def loose_prunable(
        self, x_p: int, x_n: int, r_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 9: prune using bounds available before scanning the table."""
        ...

    def tight_prunable(
        self, x_p: int, x_n: int, m_p: int, r_n: int, threshold_bits: int
    ) -> bool:
        """Step 11: prune using the scanned ``m_p`` bound."""
        ...

    def emit(
        self, items: Sequence[int], position_bits: int, x_p: int, x_n: int
    ) -> None:
        """Step 13: offer the closed rule group found at this node."""
        ...


@dataclass
class MinerStats:
    """Counters describing one enumeration run."""

    nodes_visited: int = 0
    groups_emitted: int = 0
    loose_pruned: int = 0
    tight_pruned: int = 0
    backward_pruned: int = 0
    elapsed_seconds: float = 0.0
    engine: str = "bitset"
    completed: bool = True
    # True when a parallel mine lost workers and fell back to serial
    # in-process execution for some shards (repro.parallel); the result
    # itself is still bit-identical to a healthy run.
    degraded: bool = False

    def as_dict(self) -> dict:
        return {
            "nodes_visited": self.nodes_visited,
            "groups_emitted": self.groups_emitted,
            "loose_pruned": self.loose_pruned,
            "tight_pruned": self.tight_pruned,
            "backward_pruned": self.backward_pruned,
            "elapsed_seconds": self.elapsed_seconds,
            "engine": self.engine,
            "completed": self.completed,
            "degraded": self.degraded,
        }


class _Budget:
    """Node-count, wall-clock and cancellation limits shared by all engines.

    ``cancel`` is any object with an ``is_set()`` method (typically a
    :class:`threading.Event`); it is polled on the same
    :data:`POLL_STRIDE`-node stride as the deadline so a long-running
    mine can be stopped cooperatively from another thread (the service
    job queue and the process-pool backend rely on this).
    """

    def __init__(
        self,
        stats: MinerStats,
        node_budget: Optional[int],
        time_budget: Optional[float],
        cancel: Optional["_CancelToken"] = None,
    ) -> None:
        self.stats = stats
        self.node_budget = node_budget
        self.deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        self.cancel = cancel

    def charge_node(self) -> None:
        self.stats.nodes_visited += 1
        if (
            self.node_budget is not None
            and self.stats.nodes_visited > self.node_budget
        ):
            self.stats.completed = False
            raise MiningBudgetExceeded(
                f"node budget {self.node_budget} exceeded", self.stats
            )
        if self.stats.nodes_visited % POLL_STRIDE == 0:
            if self.deadline is not None and time.monotonic() > self.deadline:
                self.stats.completed = False
                raise MiningBudgetExceeded("time budget exceeded", self.stats)
            if self.cancel is not None and self.cancel.is_set():
                self.stats.completed = False
                raise MiningBudgetExceeded("mining cancelled", self.stats)


def run_enumeration(
    view: MiningView,
    policy: SearchPolicy,
    engine: str = "bitset",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel: Optional["_CancelToken"] = None,
    first_rows: Optional[int] = None,
) -> MinerStats:
    """Depth-first walk of the row enumeration tree under ``policy``.

    Args:
        view: prepared dataset view (ordering, frequent items).
        policy: pruning/collection logic (top-k or FARMER style).
        engine: one of :data:`ENGINES`.
        node_budget: abort with :class:`MiningBudgetExceeded` after this
            many enumeration nodes.
        time_budget: abort after this many wall-clock seconds.
        cancel: optional cancellation token (anything with ``is_set()``,
            e.g. a :class:`threading.Event`); when set mid-run the walk
            aborts like an exhausted budget.
        first_rows: optional position bitset restricting which
            *first-level* subtrees are expanded (``None`` expands all).
            Skipped roots are not charged to the node budget.  Deeper
            levels are never filtered, so mining every first row exactly
            once across several calls partitions the full tree — the
            sharding contract of :mod:`repro.parallel`.

    Returns:
        The :class:`MinerStats` of the completed run.  On budget overrun
        the exception carries the partial stats instead.
    """
    stats = MinerStats(engine=engine)
    budget = _Budget(stats, node_budget, time_budget, cancel)
    start = time.monotonic()
    try:
        if engine == "bitset":
            _walk_bitset(view, policy, stats, budget, first_rows)
        elif engine == "table":
            _walk_table(view, policy, stats, budget, first_rows)
        elif engine == "tree":
            _walk_tree(view, policy, stats, budget, first_rows)
        else:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    except MiningBudgetExceeded as overrun:
        # Policies may raise their own budget errors (e.g. a group cap);
        # make sure the run's stats travel with the exception either way.
        stats.completed = False
        if overrun.stats is None:
            overrun.stats = stats
        raise
    finally:
        stats.elapsed_seconds = time.monotonic() - start
    return stats


# ---------------------------------------------------------------------------
# bitset engine
# ---------------------------------------------------------------------------
#
# All three engines are iterative explicit-stack kernels: a frame per
# enumeration-tree node holds the not-yet-expanded candidates plus the
# decrementally maintained rest counters, and descending into a subtree
# is "save the loop state into the frame, push a child frame, break".
# The DFS order, the policy-hook call sequence and the budget charges are
# exactly those of the recursive formulation (the pre-rewrite walkers
# survive as the reference implementations in tests/test_kernels.py);
# pruning counters are kept in locals and flushed in a ``finally`` so the
# stats travelling with a budget overrun stay accurate.  First-level
# node data comes from the view's :class:`~repro.core.view.SupportIndex`
# memo where a pure recomputation would otherwise dominate the walk
# (bitset and tree engines only — the table engine keeps FARMER's cost
# profile).


def _walk_bitset(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    support = view.support_index()
    item_rows = support.item_rows
    item_counts = support.item_counts
    item_pos_counts = support.item_pos_counts
    row_items = view.row_items
    positive_mask = view.positive_mask
    # Hot-path bindings: these are resolved once instead of per node.
    bit_count = int.bit_count
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit
    bitset_root = support.bitset_root
    # One fused backend call per node: the closure/union fold over the
    # node's surviving items *and* the positive/total closure counts come
    # out of a single walk-private kernel call (the positive mask stays
    # in the backend's native encoding for the whole walk), plus one
    # masked-count call for the derived candidate set.
    kernel = support.node_kernel()
    fold_counts = kernel.intersect_union_counts
    masked_counts = kernel.masked_counts
    # Static-threshold policies (FARMER) never read the threshold row
    # sets, and assembling them is an O(n_rows/64) bitset op per
    # candidate — on tall cohorts that is real money for nothing.
    needs_thresholds = getattr(policy, "uses_threshold_bits", True)

    all_rows = mask_below(view.n_rows)
    root_rem_p = bit_count(all_rows & positive_mask)
    root_rem_n = bit_count(all_rows) - root_rem_p
    # Frame: [todo, rem_p, rem_n, x_bits, x_p, x_n, items, allowed].
    # ``todo`` doubles as the candidate iterator (lowest set bit = next
    # row, ascending) and as the "remaining candidates after r" mask of
    # the Lemma 3.2 bounds.
    stack: list[list] = [
        [all_rows, root_rem_p, root_rem_n, 0, 0, 0, None, first_rows]
    ]
    loose = tight = backward = emitted = 0
    try:
        while stack:
            frame = stack[-1]
            todo, rem_p, rem_n, x_bits, x_p, x_n, items, allowed = frame
            pushed = False
            while todo:
                r_bit = todo & -todo
                todo ^= r_bit
                if r_bit & positive_mask:
                    rem_p -= 1
                    seed_p = x_p + 1
                    seed_n = x_n
                else:
                    rem_n -= 1
                    seed_p = x_p
                    seed_n = x_n + 1
                if allowed is not None and not allowed & r_bit:
                    continue
                charge_node()
                if needs_thresholds:
                    threshold_bits = (x_bits | r_bit | todo) & positive_mask
                else:
                    threshold_bits = 0
                if loose_prunable(seed_p, seed_n, rem_p, rem_n, threshold_bits):
                    loose += 1
                    continue
                if x_bits:
                    present = row_items[r_bit.bit_length() - 1]
                    new_items = [i for i in items if i in present]
                    if not new_items:
                        continue
                    if len(new_items) == 1:
                        item = new_items[0]
                        closure = union = item_rows[item]
                        new_x_p = item_pos_counts[item]
                        x_all = item_counts[item]
                    else:
                        closure, union, new_x_p, x_all = fold_counts(new_items)
                    # Backward pruning (step 7): a row before r outside X
                    # containing I(X ∪ {r}) means this group was found in
                    # an earlier subtree.
                    if closure & (r_bit - 1) & ~x_bits:
                        backward += 1
                        continue
                    new_cand = todo & union & ~closure
                    if new_cand:
                        m_p, cand_all = masked_counts(new_cand)
                    else:
                        m_p = cand_all = 0
                    new_x_n = x_all - new_x_p
                    new_r_n = cand_all - m_p
                    if needs_thresholds:
                        new_threshold = (closure | new_cand) & positive_mask
                    else:
                        new_threshold = 0
                else:
                    # Root frame: every value below is a pure function of
                    # the view, memoized on the SupportIndex.
                    entry = bitset_root(r_bit.bit_length() - 1)
                    tag = entry[0]
                    if tag == "empty":
                        continue
                    if tag == "backward":
                        backward += 1
                        continue
                    (_, new_items, closure, new_cand, new_x_p, new_x_n,
                     m_p, new_r_n, new_threshold) = entry
                if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                    tight += 1
                    continue
                emitted += 1
                emit(new_items, closure, new_x_p, new_x_n)
                if new_cand:
                    frame[0] = todo
                    frame[1] = rem_p
                    frame[2] = rem_n
                    stack.append(
                        [new_cand, m_p, new_r_n, closure,
                         new_x_p, new_x_n, new_items, None]
                    )
                    pushed = True
                    break
            if not pushed:
                stack.pop()
    finally:
        stats.loose_pruned += loose
        stats.tight_pruned += tight
        stats.backward_pruned += backward
        stats.groups_emitted += emitted


# ---------------------------------------------------------------------------
# table engine (FARMER-style projected transposed tables)
# ---------------------------------------------------------------------------


def _walk_table(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    bit_count = int.bit_count
    bisect = bisect_left
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit

    # The root transposed table: one tuple per frequent item, carrying the
    # item's full ascending row list.  Projection passes tuple references
    # down unchanged; the scan position is implied by r.  Rebuilt per run
    # on purpose: this engine exists to preserve FARMER's per-node cost
    # profile, so it takes no SupportIndex memo.
    needs_thresholds = getattr(policy, "uses_threshold_bits", True)
    root_tuples = [
        (item, sorted(iter_indices(view.item_rows[item])))
        for item in view.frequent_items
    ]
    root_cand = list(range(view.n_rows))
    root_rest_p = 0
    root_pos_bits = 0
    for row in root_cand:
        if row < n_positive:
            root_rest_p += 1
            root_pos_bits |= 1 << row
    root_rest_n = len(root_cand) - root_rest_p
    # Frame: [cand, index, rest_p, rest_pos_bits, rest_n,
    #         x_bits, x_p, x_n, tuples, allowed].  The rest counters of a
    # child frame are seeded from the parent's scan (m_p etc.) instead of
    # being recomputed at frame entry.
    stack: list[list] = [
        [root_cand, 0, root_rest_p, root_pos_bits, root_rest_n,
         0, 0, 0, root_tuples, first_rows]
    ]
    loose = tight = backward = emitted = 0
    try:
        while stack:
            frame = stack[-1]
            (cand, index, rest_p, rest_pos_bits, rest_n,
             x_bits, x_p, x_n, tuples, allowed) = frame
            size = len(cand)
            pushed = False
            while index < size:
                r = cand[index]
                index += 1
                r_bit = 1 << r
                if r < n_positive:
                    rest_p -= 1
                    rest_pos_bits &= ~r_bit
                    seed_p = x_p + 1
                    seed_n = x_n
                else:
                    rest_n -= 1
                    seed_p = x_p
                    seed_n = x_n + 1
                if allowed is not None and not allowed & r_bit:
                    continue
                charge_node()
                if needs_thresholds:
                    threshold_bits = (
                        ((x_bits | r_bit) & positive_mask) | rest_pos_bits
                    )
                else:
                    threshold_bits = 0
                if loose_prunable(seed_p, seed_n, rest_p, rest_n, threshold_bits):
                    loose += 1
                    continue
                # Project: keep tuples whose row list contains r (bisect
                # scan, the authentic per-node cost of pointer FARMER).
                kept = []
                for entry in tuples:
                    rows = entry[1]
                    position = bisect(rows, r)
                    if position < len(rows) and rows[position] == r:
                        kept.append(entry)
                if not kept:
                    continue
                # Count frequencies over the kept tuples' full row lists
                # (Counter.update walks each list at C speed; key order is
                # first encounter, same as the explicit nested loop).
                freq = Counter()
                freq_update = freq.update
                for entry in kept:
                    freq_update(entry[1])
                n_tuples = len(kept)
                closure = 0
                backward_hit = False
                for row, count in freq.items():
                    if count == n_tuples:
                        if row < r and not x_bits >> row & 1:
                            backward_hit = True
                            break
                        closure |= 1 << row
                if backward_hit:
                    backward += 1
                    continue
                new_cand = sorted(
                    row
                    for row, count in freq.items()
                    if row > r and count < n_tuples
                )
                new_x_p = bit_count(closure & positive_mask)
                new_x_n = bit_count(closure) - new_x_p
                m_p = 0
                new_cand_pos_bits = 0
                for row in new_cand:
                    if row < n_positive:
                        m_p += 1
                        new_cand_pos_bits |= 1 << row
                new_r_n = len(new_cand) - m_p
                if needs_thresholds:
                    new_threshold = (closure & positive_mask) | new_cand_pos_bits
                else:
                    new_threshold = 0
                if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                    tight += 1
                    continue
                emitted += 1
                emit([item for item, _rows in kept], closure, new_x_p, new_x_n)
                if new_cand:
                    frame[1] = index
                    frame[2] = rest_p
                    frame[3] = rest_pos_bits
                    frame[4] = rest_n
                    stack.append(
                        [new_cand, 0, m_p, new_cand_pos_bits, new_r_n,
                         closure, new_x_p, new_x_n, kept, None]
                    )
                    pushed = True
                    break
            if not pushed:
                stack.pop()
    finally:
        stats.loose_pruned += loose
        stats.tight_pruned += tight
        stats.backward_pruned += backward
        stats.groups_emitted += emitted


# ---------------------------------------------------------------------------
# tree engine (prefix-tree projected transposed tables, Section 4.2)
# ---------------------------------------------------------------------------


def _walk_tree(
    view: MiningView,
    policy: SearchPolicy,
    stats: MinerStats,
    budget: _Budget,
    first_rows: Optional[int] = None,
) -> None:
    support = view.support_index()
    positive_mask = view.positive_mask
    n_positive = view.n_positive
    item_rows = support.item_rows
    item_counts = support.item_counts
    item_pos_counts = support.item_pos_counts
    charge_node = budget.charge_node
    loose_prunable = policy.loose_prunable
    tight_prunable = policy.tight_prunable
    emit = policy.emit
    tree_root = support.tree_root
    # One fused backend call per node for the closure fold and the two
    # support counts (the candidate counters come from the projected
    # tree's row scan, which stays a list walk).
    kernel = support.node_kernel()
    intersect_counts = kernel.intersect_counts
    needs_thresholds = getattr(policy, "uses_threshold_bits", True)

    # The root tree and its per-row projections are pure functions of the
    # view; both come from the SupportIndex (kernels only read projected
    # trees, so sharing them across runs is safe).
    root_tree = support.root_tree()
    root_cand = root_tree.rows_present()
    root_rest_p = 0
    root_pos_bits = 0
    for row in root_cand:
        if row < n_positive:
            root_rest_p += 1
            root_pos_bits |= 1 << row
    root_rest_n = len(root_cand) - root_rest_p
    # Frame: [cand, index, rest_p, rest_pos_bits, rest_n,
    #         x_bits, x_p, x_n, tree, allowed].  A child's candidate list
    # is the parent's frequency-scan survivors sorted ascending — the
    # same rows the recursive version re-derived from rows_present() at
    # frame entry (rows absorbed into X by a closure step remain in the
    # projected tree's paths; they are not extension candidates).
    stack: list[list] = [
        [root_cand, 0, root_rest_p, root_pos_bits, root_rest_n,
         0, 0, 0, root_tree, first_rows]
    ]
    loose = tight = backward = emitted = 0
    try:
        while stack:
            frame = stack[-1]
            (cand, index, rest_p, rest_pos_bits, rest_n,
             x_bits, x_p, x_n, tree, allowed) = frame
            size = len(cand)
            pushed = False
            while index < size:
                r = cand[index]
                index += 1
                r_bit = 1 << r
                if r < n_positive:
                    rest_p -= 1
                    rest_pos_bits &= ~r_bit
                    seed_p = x_p + 1
                    seed_n = x_n
                else:
                    rest_n -= 1
                    seed_p = x_p
                    seed_n = x_n + 1
                if allowed is not None and not allowed & r_bit:
                    continue
                charge_node()
                if needs_thresholds:
                    threshold_bits = (
                        ((x_bits | r_bit) & positive_mask) | rest_pos_bits
                    )
                else:
                    threshold_bits = 0
                if loose_prunable(seed_p, seed_n, rest_p, rest_n, threshold_bits):
                    loose += 1
                    continue
                if x_bits:
                    projected = tree.project(r)
                    if projected.n_items == 0:
                        continue
                    new_items = projected.all_items()
                    # Closure and backward check use the full item support
                    # sets; the projected tree only keeps rows after r
                    # (Section 3's projected transposed table), so earlier
                    # rows must be probed against the original supports.
                    if len(new_items) == 1:
                        item = new_items[0]
                        closure = item_rows[item]
                        new_x_p = item_pos_counts[item]
                        x_all = item_counts[item]
                    else:
                        closure, new_x_p, x_all = intersect_counts(new_items)
                    if closure & (r_bit - 1) & ~x_bits:
                        backward += 1
                        continue
                    new_cand_rows = [
                        row for row in projected.row_freq()
                        if not closure >> row & 1
                    ]
                    new_x_n = x_all - new_x_p
                    m_p = 0
                    new_cand_pos_bits = 0
                    for row in new_cand_rows:
                        if row < n_positive:
                            m_p += 1
                            new_cand_pos_bits |= 1 << row
                    new_r_n = len(new_cand_rows) - m_p
                    if needs_thresholds:
                        new_threshold = (
                            (closure & positive_mask) | new_cand_pos_bits
                        )
                    else:
                        new_threshold = 0
                    child_cand = new_cand_rows
                else:
                    # Root frame: first-level data memoized on the view.
                    entry = tree_root(r)
                    tag = entry[0]
                    if tag == "empty":
                        continue
                    if tag == "backward":
                        backward += 1
                        continue
                    (_, projected, new_items, closure, new_x_p, new_x_n,
                     child_cand, m_p, new_cand_pos_bits, new_r_n,
                     new_threshold) = entry
                if tight_prunable(new_x_p, new_x_n, m_p, new_r_n, new_threshold):
                    tight += 1
                    continue
                emitted += 1
                emit(new_items, closure, new_x_p, new_x_n)
                if child_cand:
                    frame[1] = index
                    frame[2] = rest_p
                    frame[3] = rest_pos_bits
                    frame[4] = rest_n
                    if x_bits:
                        child_cand = sorted(child_cand)
                    stack.append(
                        [child_cand, 0, m_p, new_cand_pos_bits, new_r_n,
                         closure, new_x_p, new_x_n, projected, None]
                    )
                    pushed = True
                    break
            if not pushed:
                stack.pop()
    finally:
        stats.loose_pruned += loose
        stats.tight_pruned += tight
        stats.backward_pruned += backward
        stats.groups_emitted += emitted
