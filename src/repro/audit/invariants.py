"""Invariant checks over mining results and classifiers.

Each check raises :class:`InvariantViolation` with a human-readable
description of the first violated property.  The checks are pure
functions over public objects, so they are usable from three places:

* the differential audit harness (``repro audit``);
* the test suite (deliberate-corruption tests);
* the miners themselves — :func:`repro.core.topk_miner.mine_topk` and
  :func:`repro.parallel.mine_topk_sharded` run
  :func:`check_topk_result` on every result when the ``REPRO_CHECK``
  environment variable is set to a non-empty value other than ``0``,
  turning any workload into a self-auditing run.

Invariant catalog (references are to the paper):

``check_topk_result``
    * **coverage** — ``per_row`` has exactly one entry per
      consequent-class row, and (for completed runs) the entry is
      non-empty whenever the row contains at least one frequent item;
    * **admissibility** — each list holds at most ``k`` distinct rule
      groups, sorted by the Definition 2.2 significance order
      (confidence desc, then support desc), each covering its row;
    * **closure soundness** — every antecedent equals the closure
      ``I(R(antecedent))`` restricted to the frequent items, and
      ``row_set`` equals ``R(antecedent)``;
    * **support/confidence consistency** — ``support`` is the count of
      consequent-class rows in ``row_set``, ``confidence`` is
      ``support / |row_set|``, and ``support >= minsup``.

``check_rcbt_coverage``
    * every class's mined result passes ``check_topk_result``;
    * ``predict_batch`` agrees with per-row prediction on every
      training row, and every prediction is a valid class id.

``check_cba_order``
    * the CBA precedence key of Section 2.2 is a strict total order on
      the given rules: keys are unique and pairwise comparisons are
      antisymmetric.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from ..core.bitset import popcount
from ..core.rules import Rule, cba_sort_key
from ..core.view import MiningView
from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - imports for annotations only
    from ..classifiers.rcbt import RCBTClassifier
    from ..core.topk_miner import TopkResult
    from ..data.dataset import DiscretizedDataset

__all__ = [
    "InvariantViolation",
    "checks_enabled",
    "check_topk_result",
    "check_rcbt_coverage",
    "check_cba_order",
]


class InvariantViolation(ReproError):
    """A mined result or classifier violates a paper invariant."""


def checks_enabled() -> bool:
    """True when the ``REPRO_CHECK`` env flag requests inline auditing."""
    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


def _fail(message: str, context: str = "") -> None:
    raise InvariantViolation(f"{message}{f' ({context})' if context else ''}")


def check_topk_result(
    dataset: "DiscretizedDataset",
    result: "TopkResult",
    strict_coverage: bool = True,
) -> None:
    """Assert every catalog invariant of one :class:`TopkResult`.

    Args:
        dataset: the dataset the result was mined from.
        result: the result to audit.
        strict_coverage: also require non-empty per-row lists wherever a
            frequent item covers the row.  Disable for partial results
            (budget overruns / cancellations), where lists may be
            legitimately incomplete; structural invariants still hold.
    """
    view = MiningView(dataset, result.consequent, result.minsup)
    frequent = frozenset(view.frequent_items)
    class_mask = dataset.class_mask(result.consequent)
    positive_rows = set(dataset.rows_of_class(result.consequent))

    if set(result.per_row) != positive_rows:
        _fail(
            "per_row keys must be exactly the consequent-class rows",
            f"got {sorted(result.per_row)}, expected {sorted(positive_rows)}",
        )

    checked_groups: set[tuple[int, int]] = set()
    for row, groups in result.per_row.items():
        context = f"row {row}"
        if len(groups) > result.k:
            _fail(f"more than k={result.k} groups", context)
        if strict_coverage and not groups and dataset.rows[row] & frequent:
            _fail(
                "empty top-k list for a row containing a frequent item",
                context,
            )
        seen_row_sets: set[tuple[int, int]] = set()
        previous = None
        for rank, group in enumerate(groups, start=1):
            group_context = f"{context} rank {rank}: {group.describe()}"
            if not group.row_set >> row & 1:
                _fail("group does not cover its row", group_context)
            key = (group.row_set, group.consequent)
            if key in seen_row_sets:
                _fail("duplicate rule group in one top-k list", group_context)
            seen_row_sets.add(key)
            if previous is not None and (
                (group.confidence, group.support)
                > (previous.confidence, previous.support)
            ):
                _fail(
                    "list not sorted by the Definition 2.2 significance "
                    "order",
                    group_context,
                )
            previous = group
            if key not in checked_groups:
                checked_groups.add(key)
                _check_group(dataset, view, frequent, class_mask,
                             result.minsup, group, group_context)


def _check_group(
    dataset: "DiscretizedDataset",
    view: MiningView,
    frequent: frozenset[int],
    class_mask: int,
    minsup: int,
    group,
    context: str,
) -> None:
    if not group.antecedent:
        _fail("empty antecedent", context)
    if not group.antecedent <= frequent:
        _fail("antecedent contains a non-frequent item", context)
    support_set = dataset.support_set(sorted(group.antecedent))
    if support_set != group.row_set:
        _fail("row_set is not R(antecedent)", context)
    closure = dataset.common_items(group.row_set) & frequent
    if group.antecedent != closure:
        _fail(
            "antecedent is not the closure of its row_set over the "
            "frequent items",
            f"{context}; closure={sorted(closure)}",
        )
    support = popcount(group.row_set & class_mask)
    if group.support != support:
        _fail(
            "support disagrees with the consequent-class rows of row_set",
            f"{context}; recounted {support}",
        )
    total = popcount(group.row_set)
    if total == 0 or group.confidence != support / total:
        _fail(
            "confidence disagrees with support / |row_set|",
            f"{context}; recounted {support}/{total}",
        )
    if group.support < minsup:
        _fail(f"support below minsup {minsup}", context)


def check_rcbt_coverage(
    model: "RCBTClassifier", train: "DiscretizedDataset"
) -> None:
    """Assert RCBT's training-set coverage and batch/serial agreement."""
    model._check_fitted()
    for class_id, result in model.topk_results_.items():
        if result.consequent != class_id:
            _fail(
                "mined result stored under the wrong class",
                f"class {class_id} holds consequent {result.consequent}",
            )
        check_topk_result(train, result,
                          strict_coverage=result.stats.completed)
    batch = model.predict_batch(train.rows)
    for row_index, (row, batched) in enumerate(zip(train.rows, batch)):
        single = model.predict_row(row)
        if single != batched:
            _fail(
                "predict_batch disagrees with predict_row",
                f"row {row_index}: batch {batched}, single {single}",
            )
        label, source = batched
        if not 0 <= label < train.n_classes:
            _fail(f"prediction {label} out of range", f"row {row_index}")
        if source not in ("main", "standby", "default"):
            _fail(f"unknown prediction source {source!r}", f"row {row_index}")


def check_cba_order(rules: Sequence[Rule]) -> None:
    """Assert the CBA precedence is a strict total order on ``rules``."""
    keys = [cba_sort_key(rule, index) for index, rule in enumerate(rules)]
    if len(set(keys)) != len(keys):
        _fail("CBA sort keys are not unique across distinct rules")
    for i, left in enumerate(keys):
        for right in keys[i + 1:]:
            if (left < right) == (right < left):
                _fail(
                    "CBA precedence violates antisymmetry",
                    f"{left} vs {right}",
                )
