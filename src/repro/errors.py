"""Package-wide exception types."""

from __future__ import annotations

__all__ = ["ReproError", "MiningBudgetExceeded", "NotFittedError"]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MiningBudgetExceeded(ReproError):
    """A miner exceeded its node or wall-clock budget.

    Carries whatever partial statistics were gathered so experiments can
    report "did not finish within budget" rows the way the paper reports
    CHARM/CLOSET+/FARMER timeouts.
    """

    def __init__(self, message: str, stats=None) -> None:
        super().__init__(message)
        self.stats = stats


class NotFittedError(ReproError):
    """A model was used before being trained."""
