"""Analysis utilities: gene rankings, metrics, rule statistics."""

from .gene_ranking import (
    gene_chi_square_scores,
    gene_entropy_scores,
    item_scores,
    rank_genes,
)
from .metrics import ClassificationReport, accuracy, confusion_matrix, evaluate
from .significance import (
    GroupSummary,
    coverage_summary,
    gene_usage,
    rule_chi_square,
    summarize_groups,
)

__all__ = [
    "ClassificationReport",
    "GroupSummary",
    "accuracy",
    "confusion_matrix",
    "coverage_summary",
    "evaluate",
    "gene_chi_square_scores",
    "gene_entropy_scores",
    "gene_usage",
    "item_scores",
    "rank_genes",
    "rule_chi_square",
    "summarize_groups",
]
