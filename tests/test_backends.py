"""Cross-backend property suite for :mod:`repro.core.backends`.

Every backend must be observationally identical to the plain-int
implementation: same scalar helper results and edge semantics, same
batch-fold results over encoded support tables, and — end to end — the
same mining output *and* the same ``MinerStats``, counter for counter.
The mining cases come from the audit generator so the sweep covers the
degenerate shapes (duplicates, empty rows, single class, tie-heavy
lists) the differential audit exercises.
"""

from __future__ import annotations

from functools import reduce
from operator import and_, or_

import pytest

from repro.audit.generator import generate_cases
from repro.baselines.farmer import mine_farmer
from repro.core import bitset as B
from repro.core.backends import (
    AUTO_TALL_ROWS,
    DEFAULT_BACKEND,
    ENV_VAR,
    BitsetBackend,
    ThresholdStore,
    auto_backend_stats,
    available_backends,
    get_backend,
    plan_auto_backend,
    resolve_backend,
)
from repro.core.backends.packed_backend import PackedBackend, popcount_table
from repro.core.enumeration import ENGINES
from repro.core.topk_miner import mine_topk
from repro.core.view import MiningView
from repro.parallel import results_equal

BACKENDS = available_backends()
ALTERNATES = tuple(name for name in BACKENDS if name != DEFAULT_BACKEND)

CASES = generate_cases(seed=11, n_cases=6)

COUNTERS = (
    "nodes_visited",
    "groups_emitted",
    "loose_pruned",
    "tight_pruned",
    "backward_pruned",
)


def _counters(stats) -> dict:
    return {name: getattr(stats, name) for name in COUNTERS}


# ---------------------------------------------------------------------------
# Registry and selection precedence
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_stdlib_backends_always_available(self):
        assert "int" in BACKENDS
        assert "packed" in BACKENDS

    def test_default_listed_first(self):
        assert BACKENDS[0] == DEFAULT_BACKEND == "int"

    def test_get_backend_singleton(self):
        assert get_backend("packed") is get_backend("packed")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown bitset backend"):
            get_backend("simd512")

    def test_known_but_unavailable_distinguished(self):
        if "numpy" in BACKENDS:
            pytest.skip("numpy backend available in this environment")
        with pytest.raises(ValueError, match="not available"):
            get_backend("numpy")

    def test_error_messages_list_registered_backends(self):
        """Both rejection branches name what *can* be asked for."""
        registered = ", ".join(BACKENDS)
        with pytest.raises(ValueError) as unknown:
            get_backend("simd512")
        assert f"registered backends: {registered}" in str(unknown.value)
        if "numpy" not in BACKENDS:
            with pytest.raises(ValueError) as unavailable:
                get_backend("numpy")
            assert f"registered backends: {registered}" in str(
                unavailable.value
            )

    def test_packed_popcount_table_is_a_shared_singleton(self):
        """The 64Ki-entry table is built once per process, not per
        instance — two fresh backends and the registry singleton all
        hold the same object."""
        assert PackedBackend().table is PackedBackend().table
        assert get_backend("packed").table is popcount_table()


class TestAutoBackend:
    def test_paper_scale_stays_on_int(self):
        for n_rows in (4, 38, 102, AUTO_TALL_ROWS - 1):
            assert plan_auto_backend(n_rows) == "int"

    def test_tall_topk_picks_vectorized_when_available(self):
        chosen = plan_auto_backend(AUTO_TALL_ROWS)
        if "numpy" in BACKENDS:
            assert chosen == "numpy"
        else:
            # packed never beats int, so a numpy-free host keeps the
            # default rather than auto-selecting a slower backend.
            assert chosen == "int"
        assert plan_auto_backend(16384) == chosen

    def test_farmer_task_stays_on_int_at_every_size(self):
        for n_rows in (38, AUTO_TALL_ROWS, 16384):
            assert plan_auto_backend(n_rows, task="farmer") == "int"

    def test_resolve_auto_needs_a_row_count(self):
        with pytest.raises(ValueError, match="row count"):
            resolve_backend("auto")

    def test_resolve_auto_follows_the_plan_and_counts_choices(self):
        before = auto_backend_stats()
        resolved = resolve_backend("auto", n_rows=AUTO_TALL_ROWS)
        assert resolved.name == plan_auto_backend(AUTO_TALL_ROWS)
        after = auto_backend_stats()
        assert after[resolved.name] == before[resolved.name] + 1

    def test_auto_via_environment_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "auto")
        assert resolve_backend(n_rows=38).name == "int"
        with pytest.raises(ValueError, match="row count"):
            resolve_backend()


# ---------------------------------------------------------------------------
# Threshold stores: every backend's min-fold == the reference loop
# ---------------------------------------------------------------------------


def _reference_fold(confs, sups, bits):
    best = (float("inf"), 0)
    while bits:
        low = bits & -bits
        bits ^= low
        position = low.bit_length() - 1
        pair = (confs[position], sups[position])
        if pair < best:
            best = pair
    return best


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestThresholdStore:
    def test_fold_matches_reference(self, backend_name):
        import random

        rng = random.Random(2024)
        n_positive = 213  # multiple words plus a ragged tail
        store = get_backend(backend_name).make_threshold_store(n_positive)
        assert isinstance(store, ThresholdStore)
        confs = [0.0] * n_positive
        sups = [0] * n_positive
        for _ in range(400):
            position = rng.randrange(n_positive)
            conf = rng.choice((0.0, 0.25, 0.5, rng.random(), 1.0))
            sup = rng.randrange(0, 40)
            store.update(position, conf, sup)
            confs[position] = conf
            sups[position] = sup
            bits = B.from_indices(
                rng.sample(range(n_positive), rng.randint(1, n_positive))
            )
            assert store.fold(bits) == _reference_fold(confs, sups, bits)

    def test_initial_pairs_are_underfull_thresholds(self, backend_name):
        store = get_backend(backend_name).make_threshold_store(70)
        assert store.fold(B.from_indices([0, 64, 69])) == (0.0, 0)

    def test_single_position_fold(self, backend_name):
        store = get_backend(backend_name).make_threshold_store(130)
        store.update(129, 0.75, 9)
        assert store.fold(B.bit(129)) == (0.75, 9)


class TestResolvePrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend().name == DEFAULT_BACKEND

    def test_environment_variable_respected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "packed")
        assert resolve_backend().name == "packed"

    def test_blank_environment_value_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert resolve_backend().name == DEFAULT_BACKEND

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "packed")
        assert resolve_backend("int").name == "int"

    def test_instance_passes_through(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "int")
        backend = get_backend("packed")
        assert resolve_backend(backend) is backend

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "simd512")
        with pytest.raises(ValueError, match="unknown bitset backend"):
            resolve_backend()

    def test_view_cache_keyed_by_backend(self, monkeypatch):
        # Pin the default to int so the identity assertion holds under
        # every REPRO_BITSET_BACKEND matrix value, not just the unset one.
        monkeypatch.delenv(ENV_VAR, raising=False)
        case = CASES[0]
        default = MiningView.cached(case.dataset, case.consequent, case.minsup)
        again = MiningView.cached(
            case.dataset, case.consequent, case.minsup, backend="int"
        )
        packed = MiningView.cached(
            case.dataset, case.consequent, case.minsup, backend="packed"
        )
        assert default is again
        assert packed is not default
        assert packed.backend.name == "packed"


# ---------------------------------------------------------------------------
# Scalar helpers: every backend == repro.core.bitset, edge cases included
# ---------------------------------------------------------------------------

_SAMPLE_INDEX_SETS = (
    [],
    [0],
    [5],
    [0, 1, 2],
    [7, 3, 63],
    [64],
    [0, 63, 64, 127, 200],
)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestScalarHelpers:
    def test_matches_bitset_module(self, backend_name):
        backend = get_backend(backend_name)
        assert isinstance(backend, BitsetBackend)
        for indices in _SAMPLE_INDEX_SETS:
            bits = backend.from_indices(indices)
            assert bits == B.from_indices(indices)
            assert backend.to_indices(bits) == B.to_indices(bits)
            assert list(backend.iter_indices(bits)) == B.to_indices(bits)
            assert backend.popcount(bits) == B.popcount(bits) == len(indices)
            for index in indices:
                assert backend.bit(index) == B.bit(index)
                assert backend.contains(bits, index)
            if indices:
                assert backend.lowest_bit_index(bits) == min(indices)
        for index in (0, 1, 17, 64, 130):
            assert backend.mask_below(index) == B.mask_below(index)
            assert backend.mask_upto(index) == B.mask_upto(index)
        assert backend.is_subset(0b0101, 0b1101)
        assert not backend.is_subset(0b0111, 0b1101)

    @pytest.mark.parametrize("index", (-1, -7))
    def test_negative_index_edges_agree(self, backend_name, index):
        """All backends share the validated edge semantics: a negative
        index raises the same clear ValueError everywhere."""
        backend = get_backend(backend_name)
        with pytest.raises(ValueError, match="non-negative"):
            backend.bit(index)
        with pytest.raises(ValueError, match="non-negative"):
            backend.from_indices([0, index])
        with pytest.raises(ValueError, match=f"mask_below.*got {index}"):
            backend.mask_below(index)
        with pytest.raises(ValueError, match=f"mask_upto.*got {index}"):
            backend.mask_upto(index)

    def test_empty_bitset_lowest_raises(self, backend_name):
        with pytest.raises(ValueError):
            get_backend(backend_name).lowest_bit_index(0)


# ---------------------------------------------------------------------------
# Batch contract: encoded folds == naive int folds
# ---------------------------------------------------------------------------


def _id_selections(n: int) -> list[list[int]]:
    """Deterministic id subsets exercising singletons, pairs, strides and
    the full table."""
    if n == 0:
        return []
    picks = [[0], [n - 1], list(range(n)), list(range(0, n, 2))]
    if n > 1:
        picks.append([0, n - 1])
        picks.append([n - 1, 0])  # order must not matter
    if n > 3:
        picks.append([1, 3, 2])
    return picks


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBatchContract:
    def test_folds_match_reference_on_audit_cases(self, backend_name):
        backend = get_backend(backend_name)
        for case in CASES:
            view = MiningView(case.dataset, case.consequent, case.minsup)
            table = view.item_rows
            handle = backend.encode_supports(table, view.n_rows)
            for ids in _id_selections(len(table)):
                expected_and = reduce(and_, (table[i] for i in ids))
                expected_or = reduce(or_, (table[i] for i in ids), 0)
                label = f"case {case.index}, backend {backend_name}, ids {ids}"
                assert backend.intersect_many(handle, ids) == expected_and, label
                assert backend.union_many(handle, ids) == expected_or, label
                assert backend.intersect_union_many(handle, ids) == (
                    expected_and, expected_or,
                ), label

    def test_multiword_folds(self, backend_name):
        """Bitsets spanning many 64-bit words — the audit datasets fit in
        one word, so the word-boundary logic needs its own drive."""
        backend = get_backend(backend_name)
        n_bits = 523  # deliberately not a multiple of 64
        table = [
            B.from_indices(range(start, n_bits, stride))
            for start, stride in ((0, 1), (1, 2), (3, 7), (64, 64), (522, 523))
        ]
        handle = backend.encode_supports(table, n_bits)
        for ids in _id_selections(len(table)):
            expected_and = reduce(and_, (table[i] for i in ids))
            expected_or = reduce(or_, (table[i] for i in ids), 0)
            assert backend.intersect_many(handle, ids) == expected_and
            assert backend.union_many(handle, ids) == expected_or
            assert backend.intersect_union_many(handle, ids) == (
                expected_and, expected_or,
            )

    def test_union_many_empty_ids_is_empty_set(self, backend_name):
        backend = get_backend(backend_name)
        handle = backend.encode_supports([0b101, 0b110], 3)
        assert backend.union_many(handle, []) == 0

    def test_encode_empty_table(self, backend_name):
        """A view with no frequent items encodes an empty table without
        blowing up (the numpy backend once failed the (0, n) reshape)."""
        backend = get_backend(backend_name)
        handle = backend.encode_supports([], 5)
        assert backend.union_many(handle, []) == 0

    def test_popcount_many_matches_scalar(self, backend_name):
        backend = get_backend(backend_name)
        bitsets = [
            0,
            1,
            0b1011,
            B.mask_below(64),
            B.mask_below(200),
            B.from_indices([0, 63, 64, 127, 511]),
        ]
        assert backend.popcount_many(bitsets) == [
            B.popcount(bits) for bits in bitsets
        ]
        assert backend.popcount_many([]) == []


# ---------------------------------------------------------------------------
# End to end: identical mining results AND identical MinerStats
# ---------------------------------------------------------------------------


class TestEndToEndIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_topk_results_and_stats(self, engine):
        assert ALTERNATES, "packed backend must always be registered"
        for case in CASES:
            baseline = mine_topk(
                case.dataset, case.consequent, case.minsup, k=case.k,
                engine=engine, backend="int",
            )
            for backend_name in ALTERNATES:
                other = mine_topk(
                    case.dataset, case.consequent, case.minsup, k=case.k,
                    engine=engine, backend=backend_name,
                )
                label = (
                    f"case {case.index} ({case.shape}), engine {engine}, "
                    f"backend {backend_name}"
                )
                assert results_equal(baseline, other), label
                assert _counters(other.stats) == _counters(baseline.stats), label

    @pytest.mark.parametrize("engine", ENGINES)
    def test_farmer_results_and_stats(self, engine):
        key = lambda g: (
            g.antecedent, g.consequent, g.row_set, g.support, g.confidence
        )
        for case in CASES:
            baseline = mine_farmer(
                case.dataset, case.consequent, case.minsup, minconf=0.5,
                engine=engine, backend="int",
            )
            for backend_name in ALTERNATES:
                other = mine_farmer(
                    case.dataset, case.consequent, case.minsup, minconf=0.5,
                    engine=engine, backend=backend_name,
                )
                label = (
                    f"case {case.index} ({case.shape}), engine {engine}, "
                    f"backend {backend_name}"
                )
                assert list(map(key, other.groups)) == list(
                    map(key, baseline.groups)
                ), label
                assert _counters(other.stats) == _counters(baseline.stats), label

    def test_environment_selection_end_to_end(self, monkeypatch):
        """REPRO_BITSET_BACKEND steers an unannotated mine_topk call and
        the result stays bit-identical to the default."""
        case = CASES[0]
        baseline = mine_topk(
            case.dataset, case.consequent, case.minsup, k=case.k,
        )
        monkeypatch.setenv(ENV_VAR, "packed")
        steered = mine_topk(
            case.dataset, case.consequent, case.minsup, k=case.k,
        )
        assert results_equal(baseline, steered)
        assert _counters(steered.stats) == _counters(baseline.stats)
