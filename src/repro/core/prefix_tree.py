"""Prefix-tree representation of (projected) transposed tables.

Section 4.2 of the paper represents the transposed table as a prefix tree
(Figure 4): each tuple of the transposed table — the ascending list of row
ids containing one item — is inserted as a path, so tuples sharing a
prefix share trie nodes.  Each node records the row id and the number of
items whose tuple passes through it, and a header table links all nodes
carrying the same row id.  Frequency counting (Figure 3 step 10) then
touches each shared path once instead of once per item, which is where
"FARMER+prefix" gets its order-of-magnitude over plain projected tables.

Projection onto a row ``r`` (building ``TT|_{X ∪ {r}}`` from ``TT|_X``)
follows the header links of ``r``: every item whose path passes through an
``r``-labelled node survives, keeping only the part of its path below that
node.  Items whose path *ends* at an ``r`` node have no rows left; they
remain members of ``I(X ∪ {r})`` (the tree keeps them in ``exhausted``)
but cannot extend further.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

__all__ = ["PrefixTreeNode", "PrefixTree"]


class PrefixTreeNode:
    """One trie node: a row id, pass-through count, and terminal items."""

    __slots__ = ("row", "count", "children", "items")

    def __init__(self, row: int) -> None:
        self.row = row
        self.count = 0
        self.children: dict[int, "PrefixTreeNode"] = {}
        self.items: list[int] = []

    def __repr__(self) -> str:
        return f"PrefixTreeNode(row={self.row}, count={self.count})"


class PrefixTree:
    """A prefix tree over transposed-table tuples.

    Attributes:
        root: virtual root node (row id -1).
        header: row id -> list of nodes labelled with that row.
        exhausted: item ids that are in ``I(X)`` but have no remaining
            rows in this projection.
        n_items: total items represented, including exhausted ones —
            this is ``|I(X)|`` for the node owning this projection.
    """

    def __init__(self) -> None:
        self.root = PrefixTreeNode(-1)
        self.header: dict[int, list[PrefixTreeNode]] = {}
        self.exhausted: list[int] = []
        self.n_items = 0
        self._items_cache: Optional[list[int]] = None
        # Row frequencies accumulated while the tree is built (insert or
        # merge), so the step-10 scan is a dict read instead of a header
        # walk.  Keys appear in the same first-touch order as `header`.
        self._row_freq: dict[int, int] = {}

    @classmethod
    def from_items(cls, tuples: Iterable[tuple[int, Sequence[int]]]) -> "PrefixTree":
        """Build a tree from (item id, ascending row list) tuples."""
        tree = cls()
        for item, rows in tuples:
            tree.insert(item, rows)
        return tree

    def insert(self, item: int, rows: Sequence[int]) -> None:
        """Insert one tuple; an empty row list records an exhausted item."""
        self.n_items += 1
        self._items_cache = None
        if not rows:
            self.exhausted.append(item)
            return
        node = self.root
        row_freq = self._row_freq
        for row in rows:
            child = node.children.get(row)
            if child is None:
                child = PrefixTreeNode(row)
                node.children[row] = child
                self.header.setdefault(row, []).append(child)
            child.count += 1
            row_freq[row] = row_freq.get(row, 0) + 1
            node = child
        node.items.append(item)

    def rows_present(self) -> list[int]:
        """Sorted row ids appearing in at least one tuple."""
        return sorted(self.header)

    def row_frequencies(self) -> dict[int, int]:
        """Row id -> number of items whose tuple contains the row.

        This is the step-10 frequency scan; thanks to prefix sharing each
        trie node is visited once regardless of how many items pass
        through it.  The counts are maintained incrementally as the tree
        is built, so this is a dict copy, not a header walk.
        """
        return dict(self._row_freq)

    def all_items(self) -> list[int]:
        """Every item represented in this projection (``I(X)``)."""
        if self._items_cache is not None:
            return self._items_cache
        items = list(self.exhausted)
        stack = [self.root]
        while stack:
            node = stack.pop()
            items.extend(node.items)
            stack.extend(node.children.values())
        self._items_cache = items
        return items

    def project(self, r: int) -> "PrefixTree":
        """Build the projection onto row ``r`` (rows after ``r`` only).

        Follows the header links of ``r``: each ``r``-labelled node's
        subtree is merged structurally into the new tree (shared paths
        merge node-by-node, counts adding up), and items terminating at
        the ``r`` node itself become exhausted.  This is the prefix-tree
        payoff — work is proportional to the number of *trie nodes*
        below ``r``, not to items × path length.
        """
        nodes = self.header.get(r, ())
        if len(nodes) == 1:
            return self._alias_projection(nodes[0])
        projected = PrefixTree()
        collected: list[int] = []
        for node in nodes:
            if node.items:
                projected.exhausted.extend(node.items)
                projected.n_items += len(node.items)
                collected.extend(node.items)
            for child in node.children.values():
                projected._merge_subtree(projected.root, child, collected)
        projected._items_cache = collected
        return projected

    def _alias_projection(self, node: PrefixTreeNode) -> "PrefixTree":
        """Projection onto a row with a single header node.

        With one source node, every subtree below it lands on a distinct
        branch of the projection (sibling rows are distinct in a trie),
        so no paths ever merge and every count is unchanged.  The
        projected tree can therefore *share* the source subtrees and only
        build its own header/frequency tables by walking them — no node
        is copied.  Safe because projections are read-only once built:
        merging only ever mutates the destination tree's fresh nodes,
        and an aliased tree is never a merge destination.
        """
        projected = PrefixTree()
        if node.items:
            projected.exhausted.extend(node.items)
            projected.n_items = len(node.items)
        collected = list(node.items)
        header = projected.header
        row_freq = projected._row_freq
        root_children = projected.root.children
        added_items = 0
        stack = list(node.children.values())
        for child in stack:
            root_children[child.row] = child
        pop = stack.pop
        push = stack.extend
        while stack:
            current = pop()
            row = current.row
            links = header.get(row)
            if links is None:
                header[row] = [current]
            else:
                links.append(current)
            row_freq[row] = row_freq.get(row, 0) + current.count
            items = current.items
            if items:
                added_items += len(items)
                collected.extend(items)
            push(current.children.values())
        projected.n_items += added_items
        projected._items_cache = collected
        return projected

    def _merge_subtree(
        self,
        destination: PrefixTreeNode,
        source: PrefixTreeNode,
        collected: list[int],
    ) -> None:
        """Merge ``source`` (and its subtree) under ``destination``."""
        header = self.header
        row_freq = self._row_freq
        stack = [(destination, source)]
        pop = stack.pop
        push = stack.append
        added_items = 0
        while stack:
            dst_parent, src = pop()
            row = src.row
            siblings = dst_parent.children
            dst = siblings.get(row)
            if dst is None:
                dst = PrefixTreeNode(row)
                siblings[row] = dst
                links = header.get(row)
                if links is None:
                    header[row] = [dst]
                else:
                    links.append(dst)
            count = src.count
            dst.count += count
            row_freq[row] = row_freq.get(row, 0) + count
            items = src.items
            if items:
                dst.items.extend(items)
                added_items += len(items)
                collected.extend(items)
            for child in src.children.values():
                push((dst, child))
        self.n_items += added_items

    def __repr__(self) -> str:
        return (
            f"PrefixTree(items={self.n_items}, "
            f"rows={len(self.header)}, exhausted={len(self.exhausted)})"
        )


def _iter_terminal_paths(
    node: PrefixTreeNode,
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield (item, row path below ``node``) for all items under ``node``."""
    stack: list[tuple[PrefixTreeNode, tuple[int, ...]]] = [
        (child, (child.row,)) for child in node.children.values()
    ]
    while stack:
        current, path = stack.pop()
        for item in current.items:
            yield item, path
        for child in current.children.values():
            stack.append((child, path + (child.row,)))
