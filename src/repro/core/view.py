"""The mining view: a dataset prepared for row enumeration.

``MineTopkRGS`` (Figure 3, steps 1-3) starts by removing infrequent items,
splitting rows into the consequent class ``D_p`` and the rest ``D_n``, and
imposing the *class dominant order* (Definition 3.1): all class-``C`` rows
before all others, each class sorted by ascending number of frequent items
(Section 4.1.2's ordering refinement).  :class:`MiningView` performs that
preparation once and exposes the result in *position space* — rows are
renumbered 0..n-1 in enumeration order so that row bitsets, class masks and
"rows after r" checks are all cheap integer operations.

Every enumeration engine (bitset, projected-table, prefix-tree) and every
policy (top-k, FARMER) works against this one view.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Optional, Sequence, Union

from .backends import BitsetBackend, resolve_backend
from .bitset import mask_below, popcount

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["MiningView", "SupportIndex"]


# Views keyed by (consequent, minsup, backend) per live dataset object;
# entries die with the dataset.  Guarded by a lock because the service
# mines from several job threads at once.
_VIEW_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_VIEW_CACHE_LOCK = threading.Lock()


class MiningView:
    """Row-enumeration view of a dataset for one consequent class.

    Attributes:
        dataset: the underlying discretized dataset.
        consequent: class id the mined rule groups conclude.
        minsup: absolute minimum support (rows of the consequent class).
        n_rows: number of rows (same as the dataset).
        n_positive: number of consequent-class rows; they occupy positions
            ``0..n_positive-1`` in the class dominant order.
        order: position -> original row index.
        position_of: original row index -> position.
        frequent_items: item ids whose consequent-class support reaches
            ``minsup``, in ascending id order.
        item_rows: item id -> bitset of positions containing the item
            (restricted to frequent items; infrequent items map to 0).
        row_items: position -> frozenset of frequent item ids.
        positive_mask: bitset of consequent-class positions.
        backend: the resolved :class:`~repro.core.backends.BitsetBackend`
            executing the batch bitset operations of the support index.
    """

    @classmethod
    def cached(
        cls,
        dataset: "DiscretizedDataset",
        consequent: int,
        minsup: int,
        backend: Optional[Union[str, BitsetBackend]] = None,
    ) -> "MiningView":
        """Return a shared view for (dataset, consequent, minsup, backend).

        Views (and the :class:`SupportIndex` each one lazily grows) are
        pure functions of their arguments, so every miner entry point —
        serial, sharded, merge, pool worker — can share one instance per
        live dataset object.  The cache is weak-keyed on the dataset:
        entries disappear when the dataset is garbage collected.  The
        resolved backend name is part of the key because the support
        index binds backend-encoded support tables.
        """
        resolved = resolve_backend(backend, n_rows=dataset.n_rows)
        with _VIEW_CACHE_LOCK:
            per_dataset = _VIEW_CACHE.get(dataset)
            if per_dataset is None:
                per_dataset = _VIEW_CACHE[dataset] = {}
            key = (consequent, minsup, resolved.name)
            view = per_dataset.get(key)
            if view is None:
                view = per_dataset[key] = cls(
                    dataset, consequent, minsup, backend=resolved
                )
            return view

    def __init__(
        self,
        dataset: "DiscretizedDataset",
        consequent: int,
        minsup: int,
        backend: Optional[Union[str, BitsetBackend]] = None,
    ) -> None:
        if minsup < 1:
            raise ValueError(f"minsup must be >= 1, got {minsup}")
        if not 0 <= consequent < max(dataset.n_classes, 1):
            raise ValueError(
                f"consequent {consequent} out of range for "
                f"{dataset.n_classes} classes"
            )
        self.dataset = dataset
        self.consequent = consequent
        self.minsup = minsup
        # "auto" resolves here because the row count is known: int at
        # paper scale, the vectorized backend on tall cohorts.
        self.backend: BitsetBackend = resolve_backend(
            backend, n_rows=dataset.n_rows
        )

        # Step 1: frequent items.  A rule group's support counts only
        # consequent-class rows, so items appearing in fewer than minsup
        # such rows cannot occur in any antecedent with enough support.
        class_rows = [
            row for row, label in zip(dataset.rows, dataset.labels)
            if label == consequent
        ]
        counts: dict[int, int] = {}
        for row in class_rows:
            for item in row:
                counts[item] = counts.get(item, 0) + 1
        self.frequent_items: list[int] = sorted(
            item for item, count in counts.items() if count >= minsup
        )
        frequent = frozenset(self.frequent_items)

        # Class dominant order with ascending row length within each class.
        def _length(row_index: int) -> int:
            return len(dataset.rows[row_index] & frequent)

        positive = sorted(dataset.rows_of_class(consequent), key=_length)
        negative = sorted(
            (
                row
                for row in range(dataset.n_rows)
                if dataset.labels[row] != consequent
            ),
            key=_length,
        )
        self.order: list[int] = positive + negative
        self.position_of: dict[int, int] = {
            row: pos for pos, row in enumerate(self.order)
        }
        self.n_rows = dataset.n_rows
        self.n_positive = len(positive)
        self.positive_mask = mask_below(self.n_positive)

        self.row_items: list[frozenset[int]] = [
            dataset.rows[row] & frequent for row in self.order
        ]
        max_item = (max(frequent) + 1) if frequent else 0
        self.item_rows: list[int] = [0] * max_item
        for position, items in enumerate(self.row_items):
            mark = 1 << position
            for item in items:
                self.item_rows[item] |= mark
        self._support_index: Optional["SupportIndex"] = None

    def support_index(self) -> "SupportIndex":
        """The lazily built :class:`SupportIndex` of this view.

        Concurrent first calls may build the index twice; both builds are
        identical and the assignment is atomic, so the race is benign.
        """
        index = self._support_index
        if index is None:
            index = self._support_index = SupportIndex(self)
        return index

    def positions_to_rows(self, position_bits: int) -> int:
        """Translate a position-space bitset to an original-row bitset."""
        result = 0
        bits = position_bits
        while bits:
            low = bits & -bits
            position = low.bit_length() - 1
            bits ^= low
            result |= 1 << self.order[position]
        return result

    def closure_rows(self, items: Sequence[int]) -> Optional[int]:
        """``R(itemset)`` in position space (None for the empty itemset)."""
        result: Optional[int] = None
        for item in items:
            rows = self.item_rows[item]
            result = rows if result is None else result & rows
        return result

    def closed_items(self, position_bits: int) -> frozenset[int]:
        """``I(position set)`` over the frequent items."""
        common: Optional[frozenset[int]] = None
        bits = position_bits
        while bits:
            low = bits & -bits
            position = low.bit_length() - 1
            bits ^= low
            items = self.row_items[position]
            common = items if common is None else common & items
            if not common:
                return frozenset()
        return common if common is not None else frozenset()

    def positive_count(self, position_bits: int) -> int:
        """Number of consequent-class rows in a position bitset."""
        return popcount(position_bits & self.positive_mask)

    def single_item_groups(self) -> dict[int, list[int]]:
        """Distinct single-item support sets, for the initialization step.

        Returns a mapping from position-space row bitset to the list of
        frequent items having exactly that support set.  Items sharing a
        support set belong to the same rule group — the paper's caveat
        that two single items initializing one row's list must not be
        lower bounds of the same upper bound is honoured by keying on the
        support set.
        """
        groups: dict[int, list[int]] = {}
        for item in self.frequent_items:
            groups.setdefault(self.item_rows[item], []).append(item)
        return groups


class SupportIndex:
    """Interned supports and first-level memos for one :class:`MiningView`.

    The enumeration kernels spend most of their nodes on the first level
    of the row enumeration tree (one subtree per row), and everything
    computed there — item lists, closures, candidate sets, the projected
    prefix tree — is a pure function of the view.  This index

    * interns the item support bitsets (equal supports share one ``int``
      object, so repeated intersections reuse cached small-int paths and
      the pair memo below can key on identity-cheap tuples),
    * encodes the interned supports once through the view's backend and
      exposes the batch folds (:meth:`intersect_many`,
      :meth:`intersect_union_many`, :meth:`popcount_many`) the kernels
      call once per node instead of once per item,
    * precomputes per-item popcounts (also the planner's work estimate),
    * memoizes pairwise support intersections on demand, and
    * memoizes the complete first-level node data per engine family.

    Memoized values are *data only*: pruning decisions and budget charges
    still happen per run against the live policy, so
    :class:`~repro.core.enumeration.MinerStats` and results are
    bit-identical with or without a warm index.  The ``table`` engine
    deliberately takes no first-level memo — it exists to preserve
    FARMER's per-node scan cost profile for the Figure 6 comparisons.

    Instances attach to a view (see :meth:`MiningView.support_index`) and
    share its lifetime; writes from concurrent miners race benignly
    because every writer computes the same value.
    """

    EMPTY = ("empty",)
    BACKWARD = ("backward",)

    def __init__(self, view: MiningView) -> None:
        self.view = view
        self.backend = view.backend
        interned: dict[int, int] = {}
        self.item_rows: list[int] = [
            interned.setdefault(rows, rows) for rows in view.item_rows
        ]
        self._handle = self.backend.encode_supports(self.item_rows, view.n_rows)
        # The positive-class mask in the backend's native representation:
        # encoded once per index, consumed by every fused counting fold —
        # array backends never re-pack it per node.
        self.mask_handle = self.backend.encode_mask(
            view.positive_mask, view.n_rows
        )
        self.item_counts: list[int] = self.backend.popcount_many(self.item_rows)
        # Per-item positive supports, so the single-item fast path of the
        # kernels reads both counts instead of re-counting the closure.
        positive_mask = view.positive_mask
        self.item_pos_counts: list[int] = self.backend.popcount_many(
            [rows & positive_mask for rows in self.item_rows]
        )
        self.support_mass: int = sum(
            self.item_counts[item] for item in view.frequent_items
        )
        self._pairs: dict[tuple[int, int], int] = {}
        self._bitset_roots: dict[int, tuple] = {}
        self._tree_roots: dict[int, tuple] = {}
        self._root_tree = None

    # -- batch operations over the encoded support table -------------------

    def intersect_many(self, items: Sequence[int]) -> int:
        """``R(itemset)``: one backend fold over the items' supports."""
        return self.backend.intersect_many(self._handle, items)

    def intersect_union_many(self, items: Sequence[int]) -> tuple[int, int]:
        """Closure and union of the items' supports in one backend call."""
        return self.backend.intersect_union_many(self._handle, items)

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        """Population counts of freshly derived masks, batched."""
        return self.backend.popcount_many(bitsets)

    def node_kernel(self):
        """Fused per-walk kernel over the encoded supports and mask.

        Returns a fresh :class:`~repro.core.backends.base.NodeKernel`
        bound to this index's handle and positive-mask encoding.  One
        kernel per enumeration run: backends cache walk-private scratch
        buffers inside it, so kernels must not be shared across threads.
        """
        return self.backend.node_kernel(self._handle, self.mask_handle)

    def pair_rows(self, first: int, second: int) -> int:
        """Memoized ``R({first}) ∩ R({second})`` for two item ids."""
        key = (first, second) if first <= second else (second, first)
        rows = self._pairs.get(key)
        if rows is None:
            rows = self._pairs[key] = self.item_rows[first] & self.item_rows[second]
        return rows

    def bitset_root(self, r: int) -> tuple:
        """First-level node data of the bitset engine for root row ``r``.

        Returns :data:`EMPTY`, :data:`BACKWARD`, or ``("node", new_items,
        closure, new_cand, new_x_p, new_x_n, m_p, new_r_n,
        new_threshold)`` — exactly the values the kernel would compute at
        the root frame, where the candidate set is always "rows after r".
        """
        entry = self._bitset_roots.get(r)
        if entry is None:
            entry = self._bitset_roots[r] = self._compute_bitset_root(r)
        return entry

    def _compute_bitset_root(self, r: int) -> tuple:
        view = self.view
        new_items = sorted(view.row_items[r])
        if not new_items:
            return self.EMPTY
        if len(new_items) == 1:
            item = new_items[0]
            closure = union = self.item_rows[item]
            x_pos = self.item_pos_counts[item]
            x_all = self.item_counts[item]
        else:
            closure, union, x_pos, x_all = self.backend.intersect_union_counts(
                self._handle, new_items, self.mask_handle
            )
        r_bit = 1 << r
        if closure & (r_bit - 1):
            return self.BACKWARD
        positive_mask = view.positive_mask
        above = mask_below(view.n_rows) & ~(r_bit | (r_bit - 1))
        new_cand = above & union & ~closure
        if new_cand:
            cand_pos, cand_all = self.backend.masked_counts(
                new_cand, self.mask_handle
            )
        else:
            cand_pos = cand_all = 0
        new_x_p = x_pos
        new_x_n = x_all - x_pos
        m_p = cand_pos
        new_r_n = cand_all - cand_pos
        new_threshold = (closure | new_cand) & positive_mask
        return (
            "node", new_items, closure, new_cand,
            new_x_p, new_x_n, m_p, new_r_n, new_threshold,
        )

    def root_tree(self):
        """The root prefix tree of the tree engine, built once per view."""
        tree = self._root_tree
        if tree is None:
            from .prefix_tree import PrefixTree
            from .bitset import iter_indices

            view = self.view
            tree = self._root_tree = PrefixTree.from_items(
                (item, sorted(iter_indices(view.item_rows[item])))
                for item in view.frequent_items
            )
        return tree

    def tree_root(self, r: int) -> tuple:
        """First-level node data of the tree engine for root row ``r``.

        Returns :data:`EMPTY`, :data:`BACKWARD`, or ``("node", projected,
        new_items, closure, new_x_p, new_x_n, child_cand, m_p,
        cand_pos_bits, new_r_n, new_threshold)``.  The projected subtree
        is shared across runs; kernels only read projected trees.
        """
        entry = self._tree_roots.get(r)
        if entry is None:
            entry = self._tree_roots[r] = self._compute_tree_root(r)
        return entry

    def _compute_tree_root(self, r: int) -> tuple:
        view = self.view
        projected = self.root_tree().project(r)
        if projected.n_items == 0:
            return self.EMPTY
        new_items = projected.all_items()
        closure, x_pos, x_all = self.backend.intersect_counts(
            self._handle, new_items, self.mask_handle
        )
        r_bit = 1 << r
        if closure & (r_bit - 1):
            return self.BACKWARD
        positive_mask = view.positive_mask
        n_positive = view.n_positive
        new_cand_rows = [
            row for row in projected.row_frequencies() if not closure >> row & 1
        ]
        new_x_p = x_pos
        new_x_n = x_all - x_pos
        m_p = 0
        cand_pos_bits = 0
        for row in new_cand_rows:
            if row < n_positive:
                m_p += 1
                cand_pos_bits |= 1 << row
        new_r_n = len(new_cand_rows) - m_p
        new_threshold = (closure & positive_mask) | cand_pos_bits
        child_cand = sorted(new_cand_rows)
        return (
            "node", projected, new_items, closure,
            new_x_p, new_x_n, child_cand, m_p, cand_pos_bits,
            new_r_n, new_threshold,
        )
