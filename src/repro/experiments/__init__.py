"""Experiment drivers: one module per table/figure of the paper.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments table2 --details
    python -m repro.experiments fig6 --scale 0.1
    python -m repro.experiments fig7
    python -m repro.experiments fig8
    python -m repro.experiments ablations --scale 0.25
    python -m repro.experiments report --scale 0.1 --output REPORT.md
"""

from . import ablations, fig6, fig7, fig8, report, table1, table2
from .harness import DATASET_NAMES, prepare, prepare_all, render_table

__all__ = [
    "DATASET_NAMES",
    "ablations",
    "fig6",
    "fig7",
    "fig8",
    "prepare",
    "prepare_all",
    "render_table",
    "report",
    "table1",
    "table2",
]
