"""Tests for the RCBT classifier."""

import pytest

from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.data.synthetic import random_discretized_dataset
from repro.errors import NotFittedError


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RCBTClassifier(k=0)
        with pytest.raises(ValueError):
            RCBTClassifier(nl=0)

    def test_builds_levels(self, small_benchmark):
        model = RCBTClassifier(k=3, nl=4).fit(small_benchmark.train_items)
        assert 1 <= model.n_levels_ <= 3

    def test_each_level_has_nl_bounded_rules(self, small_benchmark):
        nl = 3
        model = RCBTClassifier(k=2, nl=nl).fit(small_benchmark.train_items)
        for level in model.levels_:
            # Each selected group contributes at most nl lower bounds.
            by_stats = {}
            for rule in level.rules:
                key = (rule.consequent, rule.support, rule.confidence)
                by_stats[key] = by_stats.get(key, 0) + 1
            assert all(count <= nl * 4 for count in by_stats.values())

    def test_score_norms_cover_classes(self, small_benchmark):
        model = RCBTClassifier(k=2, nl=4).fit(small_benchmark.train_items)
        level = model.levels_[0]
        assert len(level.score_norms) == small_benchmark.train_items.n_classes
        assert sum(level.score_norms) > 0

    def test_rule_scores_in_unit_interval(self, small_benchmark):
        model = RCBTClassifier(k=2, nl=4).fit(small_benchmark.train_items)
        for scores in model._level_scores:
            assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestPrediction:
    def test_not_fitted(self, figure1):
        with pytest.raises(NotFittedError):
            RCBTClassifier().predict_with_sources(figure1)

    def test_accuracy_on_benchmark(self, small_benchmark):
        model = RCBTClassifier(k=5, nl=5).fit(small_benchmark.train_items)
        assert model.score(small_benchmark.test_items) >= 0.8

    def test_sources_vocabulary(self, small_benchmark):
        model = RCBTClassifier(k=5, nl=5).fit(small_benchmark.train_items)
        _preds, sources = model.predict_with_sources(
            small_benchmark.test_items
        )
        assert set(sources) <= {"main", "standby", "default"}

    def test_empty_row_uses_default(self, small_benchmark):
        model = RCBTClassifier(k=2, nl=2).fit(small_benchmark.train_items)
        label, source = model.predict_row(frozenset())
        assert source == "default"
        assert label == model.default_class_

    def test_deterministic(self, small_benchmark):
        a = RCBTClassifier(k=3, nl=3).fit(small_benchmark.train_items)
        b = RCBTClassifier(k=3, nl=3).fit(small_benchmark.train_items)
        assert a.predict(small_benchmark.test_items) == b.predict(
            small_benchmark.test_items
        )

    def test_first_match_mode(self, small_benchmark):
        voting = RCBTClassifier(k=3, nl=3, use_voting=True).fit(
            small_benchmark.train_items
        )
        first = RCBTClassifier(k=3, nl=3, use_voting=False).fit(
            small_benchmark.train_items
        )
        # Both modes must be sane classifiers.
        assert first.score(small_benchmark.train_items) >= 0.8
        assert voting.score(small_benchmark.train_items) >= 0.8


class TestAgainstCBA:
    def test_fewer_defaults_than_cba(self, small_benchmark):
        """The Section 6.2 claim: RCBT rarely falls back to the default."""
        train, test = small_benchmark.train_items, small_benchmark.test_items
        rcbt = RCBTClassifier(k=5, nl=10).fit(train)
        cba = CBAClassifier().fit(train)
        _p, rcbt_sources = rcbt.predict_with_sources(test)
        _p, cba_sources = cba.predict_with_sources(test)
        assert rcbt_sources.count("default") <= cba_sources.count("default")

    def test_matches_or_beats_cba_on_shifted_data(self, pc_benchmark):
        train, test = pc_benchmark.train_items, pc_benchmark.test_items
        rcbt = RCBTClassifier(k=5, nl=10).fit(train)
        cba = CBAClassifier().fit(train)
        assert rcbt.score(test) >= cba.score(test)


class TestStandby:
    def test_standby_levels_consulted_in_order(self, small_benchmark):
        model = RCBTClassifier(k=3, nl=3).fit(small_benchmark.train_items)
        if model.n_levels_ >= 2:
            # A row matching only level-2 rules must be labelled standby.
            level2_rule = model.levels_[1].rules[0]
            level1 = model.levels_[0]
            row = frozenset(level2_rule.antecedent)
            if not any(r.antecedent <= row for r in level1.rules):
                label, source = model.predict_row(row)
                assert source == "standby"

    def test_k1_has_single_level(self, small_benchmark):
        model = RCBTClassifier(k=1, nl=3).fit(small_benchmark.train_items)
        assert model.n_levels_ == 1
        _preds, sources = model.predict_with_sources(
            small_benchmark.test_items
        )
        assert "standby" not in sources
