"""Audit orchestration: generate cases, run the oracle, report.

``repro audit`` is a thin CLI wrapper over :func:`run_audit`; embed the
function directly to audit in-process (the tests do).  The contract that
makes failures actionable: every reported failure carries the exact
``repro audit --seed S --only-case I`` command that regenerates the
failing dataset and parameters, so any regression is a one-line repro.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .generator import AuditCase, generate_case, generate_cases
from .oracle import AuditFailure, audit_case

__all__ = ["AuditReport", "run_audit"]


@dataclass
class AuditReport:
    """Outcome of one audit run."""

    seed: int
    cases: list[AuditCase]
    failures: list[AuditFailure] = field(default_factory=list)
    checks_run: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list[str]:
        lines = [
            f"audit seed={self.seed}: {len(self.cases)} cases, "
            f"{self.checks_run} checks, {len(self.failures)} failures "
            f"({self.elapsed_seconds:.1f}s)"
        ]
        for failure in self.failures:
            lines.append(failure.render())
        return lines


def run_audit(
    seed: int = 0,
    cases: int = 25,
    quick: bool = False,
    only_case: Optional[int] = None,
    parallel_jobs: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> AuditReport:
    """Fuzz ``cases`` seeded datasets through the differential oracle.

    Args:
        seed: master seed; together with a case index it fully
            determines a case.
        cases: number of cases (ignored when ``only_case`` is given).
        quick: bounded CI profile — smaller flag matrix, no classifier
            round-trips, parallel check on a few cases only.
        only_case: audit exactly this case index (the repro path).
        parallel_jobs: worker processes for the serial-vs-parallel
            check; < 2 disables it.
        progress: optional callable receiving one line per case.

    Returns:
        An :class:`AuditReport`; ``report.ok`` is the pass/fail verdict.
    """
    if only_case is not None:
        case_list = [generate_case(seed, only_case)]
    else:
        case_list = generate_cases(seed, cases)
    report = AuditReport(seed=seed, cases=case_list)
    start = time.monotonic()
    for position, case in enumerate(case_list):
        # In quick mode, pay the process-pool spin-up only three times —
        # enough to cover the three engines via the oracle's rotation.
        case_parallel = parallel_jobs
        if quick and only_case is None and position >= 3:
            case_parallel = 1
        failures, checks = audit_case(
            case, parallel_jobs=case_parallel, quick=quick
        )
        report.failures.extend(failures)
        report.checks_run += checks
        if progress is not None:
            verdict = "ok" if not failures else f"{len(failures)} FAILURES"
            progress(f"{case.describe()} -> {verdict}")
    report.elapsed_seconds = time.monotonic() - start
    return report
