"""Tests for the CBA classifier built from top-1 covering rule groups."""

import pytest

from repro.classifiers import CBAClassifier
from repro.core.topk_miner import mine_topk, relative_minsup
from repro.data.synthetic import random_discretized_dataset
from repro.errors import NotFittedError


class TestTraining:
    def test_fits_and_scores_separable_data(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        assert model.score(small_benchmark.train_items) >= 0.9

    def test_generalizes(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        assert model.score(small_benchmark.test_items) >= 0.7

    def test_rules_are_lower_bounds_of_top1_groups(self, small_benchmark):
        """Lemma 2.2: selected rules come from top-1 covering rule groups.

        Every selected rule's (support set, stats) must match a top-1
        covering rule group of some training row of its class.
        """
        train = small_benchmark.train_items
        model = CBAClassifier().fit(train)
        top1 = {}
        for class_id in range(train.n_classes):
            minsup = relative_minsup(train, class_id, 0.7)
            result = mine_topk(train, class_id, minsup, k=1)
            for groups in result.per_row.values():
                for group in groups:
                    top1[(group.row_set, group.consequent)] = group
        for rule in model.rules_:
            row_set = train.support_set(rule.antecedent)
            group = top1.get((row_set, rule.consequent))
            assert group is not None
            assert rule.support == group.support
            assert rule.confidence == group.confidence

    def test_rules_short(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        assert all(len(rule.antecedent) <= 6 for rule in model.rules_)

    def test_minconf_filters_candidates(self):
        ds = random_discretized_dataset(12, 10, density=0.5, seed=4)
        unfiltered = CBAClassifier(minsup_fraction=0.3).fit(ds)
        filtered = CBAClassifier(minsup_fraction=0.3, minconf=0.95).fit(ds)
        assert all(r.confidence >= 0.95 for r in filtered.candidate_rules_)
        assert len(filtered.candidate_rules_) <= len(
            unfiltered.candidate_rules_
        )


class TestPrediction:
    def test_predict_before_fit_raises(self, figure1):
        with pytest.raises(NotFittedError):
            CBAClassifier().predict_with_sources(figure1)

    def test_sources_are_main_or_default(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        _preds, sources = model.predict_with_sources(
            small_benchmark.test_items
        )
        assert set(sources) <= {"main", "default"}

    def test_default_class_used_without_match(self):
        ds = random_discretized_dataset(10, 8, density=0.5, seed=6)
        model = CBAClassifier(minsup_fraction=0.4).fit(ds)
        label, source = model.predict_row(frozenset())
        assert source == "default"
        assert label == model.default_class_

    def test_first_match_decides(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        if model.rules_:
            rule = model.rules_[0]
            label, source = model.predict_row(rule.antecedent)
            assert label == rule.consequent
            assert source == "main"

    def test_deterministic(self, small_benchmark):
        a = CBAClassifier().fit(small_benchmark.train_items)
        b = CBAClassifier().fit(small_benchmark.train_items)
        assert a.predict(small_benchmark.test_items) == b.predict(
            small_benchmark.test_items
        )
