"""Optional numpy backend: support table as a ``uint64`` word matrix.

``encode_supports`` packs the table into one contiguous
``(n_supports, n_words)`` ``uint64`` array; ``intersect_many`` /
``union_many`` are single ``np.bitwise_and.reduce`` /
``np.bitwise_or.reduce`` calls over a row slice, and popcounts go
through ``np.bitwise_count``.  Results cross back to plain ``int``
bitsets at the call boundary, so outputs are bit-identical to the
default backend by construction.

The fused counting folds are where the backend earns its keep on tall
datasets: the positive-mask popcount is computed from the reduce output
words directly (one ``bitwise_count`` pass, no intermediate int
bitsets), and :meth:`NumpyBackend.node_kernel` preallocates the reduce
output buffers once per walk so the per-node calls do no setup work.

This module is import-guarded by the package ``__init__``: importing it
raises ``ImportError`` when numpy is absent and the backend simply does
not register — nothing else in the package imports numpy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import BitsetBackend, NodeKernel, ThresholdStore

__all__ = ["NumpyBackend"]

if not hasattr(np, "bitwise_count"):  # numpy < 2.0
    raise ImportError("numpy backend needs numpy >= 2.0 (np.bitwise_count)")


def _to_int(words: "np.ndarray") -> int:
    return int.from_bytes(words.tobytes(), "little")


class _NumpyThresholdStore(ThresholdStore):
    """Array-backed dynamic-threshold store (contract in the base class).

    ``fold`` unpacks the row bitset into a boolean mask with one
    ``np.unpackbits`` call and takes two masked minima, so a pruning
    check costs a few C passes over ``n_positive`` elements instead of
    one Python iteration per set bit — and each of those Python
    iterations shaves the lowest bit off a multi-word int, which is
    itself O(words).  On tall cohorts with thousands of consequent-class
    rows this fold is the dominant per-node cost of the top-k policy,
    and is where the numpy backend beats ``int``.

    The arrays are padded to whole bytes so the unpacked mask always
    matches their length; padding positions keep the ``(0.0, 0)``
    initial pair and are never set in ``bits`` (the positive mask only
    covers real positions).
    """

    __slots__ = ("_n_bytes", "_confs", "_sups")

    def __init__(self, n_positive: int) -> None:
        self._n_bytes = max(1, (n_positive + 7) // 8)
        padded = self._n_bytes * 8
        self._confs = np.zeros(padded, dtype=np.float64)
        self._sups = np.zeros(padded, dtype=np.int64)

    def update(self, position: int, conf: float, sup: int) -> None:
        self._confs[position] = conf
        self._sups[position] = sup

    def fold(self, bits: int) -> tuple[float, int]:
        mask = np.unpackbits(
            np.frombuffer(
                bits.to_bytes(self._n_bytes, "little"), dtype=np.uint8
            ),
            bitorder="little",
        ).view(np.bool_)
        confs = self._confs[mask]
        min_conf = confs.min()
        min_sup = self._sups[mask][confs == min_conf].min()
        return float(min_conf), int(min_sup)


class NumpyBackend(BitsetBackend):
    name = "numpy"

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        n_words = max(1, (n_bits + 63) // 64)
        buffer = bytearray()
        for bits in bitsets:
            buffer += bits.to_bytes(n_words * 8, "little")
        matrix = np.frombuffer(bytes(buffer), dtype="<u8")
        return matrix.reshape(len(bitsets), n_words), n_words

    def encode_mask(self, bits: int, n_bits: int) -> "np.ndarray":
        n_words = max(1, (n_bits + 63) // 64)
        return np.frombuffer(bits.to_bytes(n_words * 8, "little"), dtype="<u8")

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        if not len(ids):
            raise ValueError("intersect_many needs at least one id")
        matrix, _n_words = handle
        return _to_int(np.bitwise_and.reduce(matrix[list(ids)], axis=0))

    def union_many(self, handle, ids: Sequence[int]) -> int:
        matrix, n_words = handle
        if not len(ids):
            return 0
        return _to_int(np.bitwise_or.reduce(matrix[list(ids)], axis=0))

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        if not len(ids):
            raise ValueError("intersect_union_many needs at least one id")
        matrix, _n_words = handle
        selected = matrix[list(ids)]
        return (
            _to_int(np.bitwise_and.reduce(selected, axis=0)),
            _to_int(np.bitwise_or.reduce(selected, axis=0)),
        )

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        if not bitsets:
            return []
        n_bits = max(bits.bit_length() for bits in bitsets)
        n_words = max(1, (n_bits + 63) // 64)
        buffer = bytearray()
        for bits in bitsets:
            buffer += bits.to_bytes(n_words * 8, "little")
        matrix = np.frombuffer(bytes(buffer), dtype="<u8").reshape(
            len(bitsets), n_words
        )
        counts = np.bitwise_count(matrix).sum(axis=1)
        return [int(count) for count in counts]

    def intersect_union_counts(
        self, handle, ids: Sequence[int], mask: "np.ndarray"
    ) -> tuple[int, int, int, int]:
        if not len(ids):
            raise ValueError("intersect_union_counts needs at least one id")
        matrix, _n_words = handle
        selected = matrix[list(ids)]
        inter = np.bitwise_and.reduce(selected, axis=0)
        union = np.bitwise_or.reduce(selected, axis=0)
        x_p = int(np.bitwise_count(inter & mask).sum())
        x_all = int(np.bitwise_count(inter).sum())
        return _to_int(inter), _to_int(union), x_p, x_all

    def intersect_counts(
        self, handle, ids: Sequence[int], mask: "np.ndarray"
    ) -> tuple[int, int, int]:
        if not len(ids):
            raise ValueError("intersect_counts needs at least one id")
        matrix, _n_words = handle
        inter = np.bitwise_and.reduce(matrix[list(ids)], axis=0)
        x_p = int(np.bitwise_count(inter & mask).sum())
        x_all = int(np.bitwise_count(inter).sum())
        return _to_int(inter), x_p, x_all

    def masked_counts(self, bits: int, mask: "np.ndarray") -> tuple[int, int]:
        words = np.frombuffer(
            bits.to_bytes(len(mask) * 8, "little"), dtype="<u8"
        )
        return (
            int(np.bitwise_count(words & mask).sum()),
            int(np.bitwise_count(words).sum()),
        )

    def make_threshold_store(self, n_positive: int) -> ThresholdStore:
        return _NumpyThresholdStore(n_positive)

    def node_kernel(self, handle, mask: "np.ndarray") -> NodeKernel:
        matrix, n_words = handle
        # Walk-private reduce outputs, reused across nodes; kernels are
        # never shared between threads.  The reduces are where numpy
        # earns its keep (one C pass folds the whole item selection);
        # the popcounts go through the ``int`` results that the walk
        # needs anyway — ``int.bit_count`` beats a ``bitwise_count`` +
        # reduction round-trip (two more ufunc dispatches plus a temp
        # array) at every cohort size this package mines.
        inter = np.empty(n_words, dtype="<u8")
        union = np.empty(n_words, dtype="<u8")
        and_reduce = np.bitwise_and.reduce
        or_reduce = np.bitwise_or.reduce
        from_bytes = int.from_bytes
        mask_int = from_bytes(mask.tobytes(), "little")

        def intersect_union_counts(ids):
            selected = matrix[ids]
            and_reduce(selected, axis=0, out=inter)
            or_reduce(selected, axis=0, out=union)
            closure = from_bytes(inter.tobytes(), "little")
            return (
                closure,
                from_bytes(union.tobytes(), "little"),
                (closure & mask_int).bit_count(),
                closure.bit_count(),
            )

        def intersect_counts(ids):
            and_reduce(matrix[ids], axis=0, out=inter)
            closure = from_bytes(inter.tobytes(), "little")
            return (
                closure,
                (closure & mask_int).bit_count(),
                closure.bit_count(),
            )

        def masked_counts(bits):
            return (bits & mask_int).bit_count(), bits.bit_count()

        return NodeKernel(intersect_union_counts, intersect_counts, masked_counts)
