"""Durable job store: unit behavior and restart recovery semantics."""

import time

import pytest

from repro.data import random_discretized_dataset
from repro.data.loaders import discretized_to_payload
from repro.service import JobStore, RuleService
from repro.service.jobs import JobCancelled


def _mine_body(dataset, **overrides):
    body = {
        "items": discretized_to_payload(dataset),
        "consequent": 1,
        "k": 2,
    }
    body.update(overrides)
    return body


def _mined_content(result):
    """A result payload minus its wall-clock field — everything that
    must be bit-identical across re-mines (rules, supports, stats)."""
    content = dict(result)
    content["stats"] = {
        key: value
        for key, value in result["stats"].items()
        if key != "elapsed_seconds"
    }
    return content


def _wait_done(service, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = service.job_status(job_id)
        if payload["status"] in ("done", "failed", "cancelled"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


@pytest.fixture
def dataset():
    return random_discretized_dataset(n_rows=30, n_items=14, seed=11)


class TestJobStoreUnit:
    def test_round_trip_and_result_addressing(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        store.record_submitted("job-1", "key-a", {"k": 2}, submitted_at=5.0)
        assert store.get_job("job-1")["status"] == "queued"
        store.apply_snapshot({"job_id": "job-1", "status": "running",
                              "started_at": 6.0})
        store.apply_snapshot({"job_id": "job-1", "status": "done",
                              "finished_at": 7.0,
                              "result": {"rules": [1, 2]}})
        job = store.get_job("job-1")
        assert job["status"] == "done"
        assert job["result"] == {"rules": [1, 2]}
        # The result is content-addressed by mining key, not job id.
        assert store.get_result("key-a") == {"rules": [1, 2]}
        store.close()

    def test_terminal_rows_never_regress(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        store.record_submitted("job-1", "key-a", {})
        store.apply_snapshot({"job_id": "job-1", "status": "done",
                              "result": {"n": 1}})
        # A late out-of-order 'running' notification must not resurrect
        # the job (queue observers fire outside the queue lock).
        store.apply_snapshot({"job_id": "job-1", "status": "running"})
        assert store.get_job("job-1")["status"] == "done"
        store.close()

    def test_unknown_and_non_durable_jobs_ignored(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        store.apply_snapshot({"job_id": "job-9", "status": "running"})
        assert store.get_job("job-9") is None
        store.close()

    def test_pending_jobs_and_id_seeding(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        store.record_submitted("job-3", "key-a", {"k": 1}, submitted_at=2.0)
        store.record_submitted("job-7", "key-b", {"k": 2}, submitted_at=1.0)
        store.apply_snapshot({"job_id": "job-3", "status": "running"})
        pending = store.pending_jobs()
        # Oldest first, both queued and running count as pending.
        assert [entry["job_id"] for entry in pending] == ["job-7", "job-3"]
        assert pending[0]["request"] == {"k": 2}
        assert store.max_job_number() == 7
        store.close()

    def test_requeue_rearms_a_row(self, tmp_path):
        store = JobStore(tmp_path / "jobs.db")
        store.record_submitted("job-1", "key-a", {})
        store.apply_snapshot({"job_id": "job-1", "status": "cancelled",
                              "error": "queue shut down"})
        store.requeue("job-1")
        job = store.get_job("job-1")
        assert job["status"] == "queued" and job["error"] is None
        assert [e["job_id"] for e in store.pending_jobs()] == ["job-1"]
        store.close()

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        store.record_submitted("job-1", "key-a", {"k": 3})
        store.checkpoint()
        store.close()
        reopened = JobStore(path)
        assert reopened.get_job("job-1")["status"] == "queued"
        assert reopened.stats()["jobs"] == 1
        reopened.close()


class TestDurableService:
    def test_mine_persists_and_store_answers_rerun(self, tmp_path, dataset):
        path = str(tmp_path / "jobs.db")
        service = RuleService(store_path=path)
        submitted = service.submit_mine(_mine_body(dataset))
        finished = _wait_done(service, submitted["job_id"])
        service.shutdown()

        # A new process re-mining the identical request is answered from
        # the durable result store without a job.
        fresh = RuleService(store_path=path)
        try:
            answered = fresh.submit_mine(_mine_body(dataset))
            assert answered["cached"] is True
            assert answered["result"] == finished["result"]
            assert fresh.telemetry.counter("mine_store_hits") == 1
        finally:
            fresh.shutdown()

    def test_restart_resumes_queued_job_bit_identically(
        self, tmp_path, dataset
    ):
        path = str(tmp_path / "jobs.db")
        # Reference result from a plain in-memory service.
        reference_service = RuleService()
        reference = _wait_done(
            reference_service,
            reference_service.submit_mine(_mine_body(dataset))["job_id"],
        )
        reference_service.shutdown()

        # Stall the single worker so the submitted mine is still queued
        # when the service dies; the stall job exits on shutdown's
        # cancel event, the mine never starts.
        service = RuleService(store_path=path, mining_workers=1)
        service.jobs.submit(lambda job: job.cancel_event.wait(10.0))
        submitted = service.submit_mine(_mine_body(dataset))
        job_id = submitted["job_id"]
        service.shutdown()

        # Boot a new service on the same store: the job must come back
        # under its original id and complete with the identical result.
        revived = RuleService(store_path=path)
        try:
            assert revived.telemetry.counter("mine_jobs_recovered") >= 1
            resumed = _wait_done(revived, job_id)
            assert resumed["status"] == "done"
            assert _mined_content(resumed["result"]) == _mined_content(
                reference["result"]
            )
        finally:
            revived.shutdown()

    def test_graceful_shutdown_requeues_interrupted_mine(
        self, tmp_path
    ):
        # Dense enough to run for many seconds — shutdown interrupts it.
        heavy = random_discretized_dataset(
            n_rows=56, n_items=200, density=0.95, seed=3
        )
        path = str(tmp_path / "jobs.db")
        service = RuleService(store_path=path)
        submitted = service.submit_mine(
            _mine_body(heavy, minsup=1, k=100)
        )
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.job_status(job_id)["status"] == "running":
                break
            time.sleep(0.01)
        service.shutdown()

        store = JobStore(path)
        try:
            # The interrupted (not user-cancelled) mine is re-armed for
            # the next boot, not recorded as cancelled.
            assert store.get_job(job_id)["status"] == "queued"
            assert [e["job_id"] for e in store.pending_jobs()] == [job_id]
        finally:
            store.close()

    def test_user_cancelled_job_stays_cancelled_across_restart(
        self, tmp_path
    ):
        heavy = random_discretized_dataset(
            n_rows=56, n_items=200, density=0.95, seed=3
        )
        path = str(tmp_path / "jobs.db")
        service = RuleService(store_path=path)
        job_id = service.submit_mine(
            _mine_body(heavy, minsup=1, k=100)
        )["job_id"]
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.job_status(job_id)["status"] == "running":
                break
            time.sleep(0.01)
        service.cancel_job(job_id)
        _wait_done(service, job_id)
        service.shutdown()

        revived = RuleService(store_path=path)
        try:
            assert revived.telemetry.counter("mine_jobs_recovered") == 0
            assert revived.job_status(job_id)["status"] == "cancelled"
        finally:
            revived.shutdown()

    def test_replayed_duplicate_requests_share_one_mine(
        self, tmp_path, dataset
    ):
        # Leave one queued mine behind, then plant an identical second
        # row (as if a crash interleaved two submissions): on boot the
        # second replay must deduplicate onto the first as a proxy, and
        # both ids must resolve to the same result.
        path = str(tmp_path / "jobs.db")
        service = RuleService(store_path=path, mining_workers=1)
        service.jobs.submit(lambda job: job.cancel_event.wait(10.0))
        first = service.submit_mine(_mine_body(dataset))["job_id"]
        service.shutdown()

        store = JobStore(path)
        entry = store.pending_jobs()[0]
        store.record_submitted("job-99", entry["mining_key"],
                               entry["request"])
        store.close()

        revived = RuleService(store_path=path)
        try:
            assert revived.telemetry.counter("mine_jobs_recovered") == 2
            done_first = _wait_done(revived, first)
            done_second = _wait_done(revived, "job-99")
            assert done_first["status"] == "done"
            # Depending on how fast the first replay mines, the second
            # proxies onto it, adopts its cached/stored result, or
            # re-mines deterministically — every path must resolve both
            # ids to the same mined content.
            assert _mined_content(done_second["result"]) == _mined_content(
                done_first["result"]
            )
        finally:
            revived.shutdown()

    def test_proxy_rows_forward_to_their_target(self, tmp_path, dataset):
        # A proxy row (a replay that merged into another job) stays
        # pollable under its own id: status reads forward to the target
        # and come back stamped with the original id.
        path = str(tmp_path / "jobs.db")
        store = JobStore(path)
        store.record_submitted("job-1", "key-a", {"k": 2})
        store.apply_snapshot({"job_id": "job-1", "status": "done",
                              "result": {"n_unique_groups": 4}})
        store.record_submitted("job-99", "key-a", {"k": 2})
        store.mark_proxy("job-99", "job-1")
        store.close()

        service = RuleService(store_path=path)
        try:
            payload = service.job_status("job-99")
            assert payload["job_id"] == "job-99"
            assert payload["deduplicated_into"] == "job-1"
            assert payload["status"] == "done"
            assert payload["result"] == {"n_unique_groups": 4}
            # Cancelling the proxy handle is a no-op on a finished
            # target but must still resolve, not 404.
            cancelled = service.cancel_job("job-99")
            assert cancelled["status"] == "done"
        finally:
            service.shutdown()

    def test_health_and_metrics_report_store(self, tmp_path, dataset):
        path = str(tmp_path / "jobs.db")
        service = RuleService(store_path=path)
        try:
            _wait_done(
                service, service.submit_mine(_mine_body(dataset))["job_id"]
            )
            health = service.health()
            assert health["durable"] is True
            assert health["store"]["jobs"] == 1
            metrics = service.metrics()
            assert metrics["store"]["by_status"] == {"done": 1}
            assert metrics["store"]["results"] == 1
        finally:
            service.shutdown()
