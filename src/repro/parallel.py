"""Process-pool mining backend: first-level sharding of the enumeration tree.

The row enumeration tree of Figure 2 is embarrassingly partitionable at
its first level: every node lies in exactly one first-row subtree, and
backward pruning guarantees each closed group is emitted only in the
subtree of its smallest row.  This module exploits that invariant:

* :func:`plan_shards` splits the first enumeration level into position
  bitsets (singleton shards for the large early subtrees, contiguous
  chunks for the long tail) that together cover every root exactly once;
* each shard is mined in a worker process by a full
  :class:`~repro.core.topk_miner.TopkPolicy` (or
  :class:`~repro.baselines.farmer.FarmerPolicy`) restricted with
  ``run_enumeration(..., first_rows=shard)``;
* the per-shard results are merged in ascending shard order, which
  reproduces the serial result *exactly* (bit-identical rule groups,
  per-row lists and ordering) — the correctness argument is spelled out
  in DESIGN.md §7.

Why per-shard mining is conservative: a shard's :class:`TopkPolicy` is
seeded from the same single-item ``TopKList`` initialization as the
serial run, and its dynamic thresholds afterwards reflect only emissions
from its own subtrees — a *subset* of what the serial run has seen by
the corresponding node.  Offers only ever tighten thresholds, so every
shard prunes at most what the serial run prunes and emits a superset of
the serial emissions from its subtrees.  The final merge (offering each
shard's list entries in ascending shard order into fresh seeded lists)
then discards exactly the extras.

Deviation: ``node_budget`` is applied per shard rather than globally (a
shared atomic counter would serialize the workers); ``time_budget`` and
``cancel`` are global, bridged into the workers through a shared event
polled on the same :data:`~repro.core.enumeration.POLL_STRIDE` node
stride as the serial budget checks.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .baselines.farmer import FarmerPolicy, FarmerResult
from .core.enumeration import POLL_STRIDE, MinerStats, run_enumeration
from .core.topk_miner import TopkPolicy, TopkResult, maybe_check_result
from .core.view import MiningView
from .errors import MiningBudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from .data.dataset import DiscretizedDataset

__all__ = [
    "MineRequest",
    "FarmerRequest",
    "resolve_n_jobs",
    "plan_shards",
    "merge_stats",
    "mine_topk_sharded",
    "mine_topk_parallel",
    "mine_farmer_parallel",
    "parallel_map",
    "results_equal",
]

# How often (seconds) a worker re-reads the shared cancellation event.
# The event lives in a multiprocessing semaphore, so probing it on every
# POLL_STRIDE-node check would dominate small shards; the throttle bounds
# the probe rate while keeping stop latency well under a second.
_CANCEL_POLL_SECONDS = 0.05

# How often (seconds) the parent watcher thread checks the user's cancel
# token and the global deadline.
_WATCH_INTERVAL_SECONDS = 0.02


@dataclass(frozen=True)
class MineRequest:
    """One MineTopkRGS mining job, shardable across workers."""

    consequent: int
    minsup: int
    k: int = 1
    engine: str = "bitset"
    initialize_single_items: bool = True
    dynamic_minsup: bool = True
    use_topk_pruning: bool = True
    node_budget: Optional[int] = None


@dataclass(frozen=True)
class FarmerRequest:
    """One FARMER mining job, shardable across workers."""

    consequent: int
    minsup: int
    minconf: float = 0.0
    engine: str = "table"
    node_budget: Optional[int] = None
    max_groups: Optional[int] = None
    min_chi_square: float = 0.0


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Translate a user ``n_jobs`` into a concrete worker count.

    ``None`` or ``0`` mean "all cores"; negative values count back from
    the core count (``-1`` = all cores, ``-2`` = all but one, the joblib
    convention); positive values are used as given.
    """
    cores = os.cpu_count() or 1
    if n_jobs is None or n_jobs == 0:
        return cores
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs


def plan_shards(n_rows: int, n_jobs: int) -> list[int]:
    """Partition the first enumeration level into shard bitsets.

    First-level subtrees shrink steeply with the root position (row ``r``
    can only extend into rows after ``r``), so equal-width chunks would
    leave one worker holding almost the whole tree.  Instead the first
    ``2 * n_jobs`` roots become singleton shards (the big subtrees, each
    individually schedulable) and the remaining roots are split into at
    most ``2 * n_jobs`` contiguous chunks; the executor then balances the
    shards dynamically.

    Returns masks in ascending first-root order; their union is exactly
    ``mask_below(n_rows)`` and they are pairwise disjoint — the invariant
    the merge step relies on.
    """
    if n_rows <= 0:
        return []
    if n_jobs <= 1:
        return [(1 << n_rows) - 1]
    singles = min(n_rows, 2 * n_jobs)
    masks = [1 << position for position in range(singles)]
    rest = n_rows - singles
    if rest > 0:
        n_chunks = min(rest, 2 * n_jobs)
        base, extra = divmod(rest, n_chunks)
        start = singles
        for index in range(n_chunks):
            size = base + (1 if index < extra else 0)
            masks.append(((1 << size) - 1) << start)
            start += size
    return masks


def merge_stats(shard_stats: Sequence[MinerStats], engine: str) -> MinerStats:
    """Combine per-shard counters into one :class:`MinerStats`.

    Node/prune/emit counters sum; ``elapsed_seconds`` is the maximum
    (shards overlap in wall-clock time); ``completed`` is the conjunction.
    Note the summed ``nodes_visited`` of a dynamic-threshold top-k run is
    >= the serial count: each shard starts from the seeded thresholds and
    never benefits from groups found in other shards (DESIGN.md §7).
    """
    total = MinerStats(engine=engine)
    for stats in shard_stats:
        total.nodes_visited += stats.nodes_visited
        total.groups_emitted += stats.groups_emitted
        total.loose_pruned += stats.loose_pruned
        total.tight_pruned += stats.tight_pruned
        total.backward_pruned += stats.backward_pruned
        total.elapsed_seconds = max(total.elapsed_seconds, stats.elapsed_seconds)
        total.completed = total.completed and stats.completed
    return total


class _ThrottledEvent:
    """Rate-limited ``is_set()`` view of a multiprocessing event.

    The enumeration budget polls its cancel token every
    :data:`POLL_STRIDE` nodes; going through to the OS semaphore each
    time would be slower than the node expansion itself.  Once set, the
    answer is latched.
    """

    __slots__ = ("_event", "_interval", "_next_check", "_set")

    def __init__(self, event, interval: float = _CANCEL_POLL_SECONDS) -> None:
        self._event = event
        self._interval = interval
        self._next_check = 0.0
        self._set = False

    def is_set(self) -> bool:
        if self._set:
            return True
        now = time.monotonic()
        if now < self._next_check:
            return False
        self._next_check = now + self._interval
        self._set = self._event.is_set()
        return self._set


# -- worker side -------------------------------------------------------------

# Populated by _init_worker in each pool process.  The dataset and the
# shared cancel event travel once through the initializer instead of with
# every task; views are memoized because every shard of one request needs
# the same (deterministically constructed) view.
_WORKER: dict = {}


def _init_worker(dataset: "DiscretizedDataset", cancel_event) -> None:
    _WORKER["dataset"] = dataset
    _WORKER["cancel"] = (
        _ThrottledEvent(cancel_event) if cancel_event is not None else None
    )
    _WORKER["views"] = {}


def _worker_view(consequent: int, minsup: int) -> MiningView:
    key = (consequent, minsup)
    view = _WORKER["views"].get(key)
    if view is None:
        view = MiningView(_WORKER["dataset"], consequent, minsup)
        _WORKER["views"][key] = view
    return view


def _run_shard(kind: str, request, shard_mask: int):
    """Mine one shard; returns (payload, stats) in position space.

    ``payload`` is a list of per-position group lists for top-k requests
    and a flat group list for FARMER requests.  Groups stay in position
    space — the parent translates to row ids once, after merging.
    """
    view = _worker_view(request.consequent, request.minsup)
    cancel = _WORKER["cancel"]
    if kind == "topk":
        policy = TopkPolicy(
            view,
            request.k,
            initialize_single_items=request.initialize_single_items,
            dynamic_minsup=request.dynamic_minsup,
            use_topk_pruning=request.use_topk_pruning,
        )
    else:
        policy = FarmerPolicy(
            view,
            minconf=request.minconf,
            max_groups=request.max_groups,
            min_chi_square=request.min_chi_square,
        )
    try:
        stats = run_enumeration(
            view,
            policy,
            engine=request.engine,
            node_budget=request.node_budget,
            cancel=cancel,
            first_rows=shard_mask,
        )
    except MiningBudgetExceeded as overrun:
        stats = overrun.stats
    if kind == "topk":
        return [list(topk.groups) for topk in policy.lists], stats
    return list(policy.groups), stats


# -- parent side -------------------------------------------------------------


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _execute(
    dataset: "DiscretizedDataset",
    jobs: Sequence[tuple[str, object, int]],
    n_jobs: int,
    time_budget: Optional[float] = None,
    cancel=None,
) -> list[tuple[object, MinerStats]]:
    """Run ``(kind, request, shard_mask)`` jobs on a process pool.

    Results come back in submission order.  ``time_budget`` / ``cancel``
    are bridged to the workers through a shared event set by a watcher
    thread in this process; workers poll it cooperatively and return
    their partial results with ``stats.completed`` False.
    """
    if not jobs:
        return []
    ctx = _mp_context()
    event = ctx.Event() if (time_budget is not None or cancel is not None) else None
    watcher: Optional[threading.Thread] = None
    stop_watching = threading.Event()
    if event is not None:
        deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        if cancel is not None and cancel.is_set():
            event.set()

        def _watch() -> None:
            while not stop_watching.wait(_WATCH_INTERVAL_SECONDS):
                if cancel is not None and cancel.is_set():
                    event.set()
                    return
                if deadline is not None and time.monotonic() > deadline:
                    event.set()
                    return

        watcher = threading.Thread(
            target=_watch, name="repro-parallel-watch", daemon=True
        )
        watcher.start()
    try:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(jobs)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(dataset, event),
        ) as pool:
            futures = [
                pool.submit(_run_shard, kind, request, shard_mask)
                for kind, request, shard_mask in jobs
            ]
            return [future.result() for future in futures]
    finally:
        stop_watching.set()
        if watcher is not None:
            watcher.join()


def _merge_topk(
    dataset: "DiscretizedDataset",
    request: MineRequest,
    shard_outputs: Sequence[tuple[list, MinerStats]],
) -> TopkResult:
    """Fold per-shard top-k lists into the exact serial result.

    Offers must happen in ascending shard order: serial DFS visits the
    shards' subtrees in exactly that order, and ``TopKList`` breaks
    confidence/support ties by insertion order, so any other merge order
    could flip a tie against the serial result.
    """
    view = MiningView(dataset, request.consequent, request.minsup)
    policy = TopkPolicy(
        view,
        request.k,
        initialize_single_items=request.initialize_single_items,
        dynamic_minsup=False,
        use_topk_pruning=request.use_topk_pruning,
    )
    for lists, _stats in shard_outputs:
        for position, groups in enumerate(lists):
            target = policy.lists[position]
            for group in groups:
                target.offer(group)
    stats = merge_stats([stats for _lists, stats in shard_outputs], request.engine)
    return TopkResult(
        per_row=policy.finalize(),
        consequent=request.consequent,
        minsup=request.minsup,
        k=request.k,
        stats=stats,
    )


def mine_topk_sharded(
    dataset: "DiscretizedDataset",
    requests: Sequence[MineRequest],
    n_jobs: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
) -> list[TopkResult]:
    """Mine several top-k requests at once, pooling their shards.

    This is the engine behind per-class classifier parallelism: RCBT
    needs one mine per class, and pooling all classes' shards into a
    single executor keeps every worker busy even when one class's tree
    is much larger than another's.

    Returns one :class:`TopkResult` per request, in request order; each
    is bit-identical to the corresponding serial :func:`mine_topk` call.
    """
    n_workers = resolve_n_jobs(n_jobs)
    if n_workers <= 1:
        from .core.topk_miner import mine_topk

        return [
            mine_topk(
                dataset,
                request.consequent,
                request.minsup,
                k=request.k,
                engine=request.engine,
                initialize_single_items=request.initialize_single_items,
                dynamic_minsup=request.dynamic_minsup,
                use_topk_pruning=request.use_topk_pruning,
                node_budget=request.node_budget,
                time_budget=time_budget,
                cancel=cancel,
            )
            for request in requests
        ]
    jobs: list[tuple[str, object, int]] = []
    spans: list[tuple[int, int]] = []
    for request in requests:
        view = MiningView(dataset, request.consequent, request.minsup)
        shards = plan_shards(view.n_rows, n_workers)
        spans.append((len(jobs), len(jobs) + len(shards)))
        jobs.extend(("topk", request, mask) for mask in shards)
    outputs = _execute(dataset, jobs, n_workers, time_budget, cancel)
    results = [
        _merge_topk(dataset, request, outputs[start:stop])
        for request, (start, stop) in zip(requests, spans)
    ]
    # Under REPRO_CHECK=1 the merged results are audited exactly like
    # serial ones (no-op otherwise); this is the parallel counterpart of
    # the hook at the end of mine_topk.
    for result in results:
        maybe_check_result(dataset, result)
    return results


def mine_topk_parallel(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    k: int = 1,
    engine: str = "bitset",
    initialize_single_items: bool = True,
    dynamic_minsup: bool = True,
    use_topk_pruning: bool = True,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    cancel=None,
    n_jobs: Optional[int] = None,
) -> TopkResult:
    """Parallel :func:`~repro.core.topk_miner.mine_topk` — same signature
    plus ``n_jobs``, bit-identical output."""
    request = MineRequest(
        consequent=consequent,
        minsup=minsup,
        k=k,
        engine=engine,
        initialize_single_items=initialize_single_items,
        dynamic_minsup=dynamic_minsup,
        use_topk_pruning=use_topk_pruning,
        node_budget=node_budget,
    )
    return mine_topk_sharded(
        dataset, [request], n_jobs=n_jobs, time_budget=time_budget, cancel=cancel
    )[0]


def mine_farmer_parallel(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    minconf: float = 0.0,
    engine: str = "table",
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    max_groups: Optional[int] = None,
    min_chi_square: float = 0.0,
    n_jobs: Optional[int] = None,
    cancel=None,
) -> FarmerResult:
    """Parallel :func:`~repro.baselines.farmer.mine_farmer`.

    FARMER's thresholds are static, so shards are independent and the
    merge is a concatenation in ascending shard order — exactly the
    serial emission (DFS) order.  ``max_groups`` caps each shard, and the
    merged list is truncated to the serial stopping point.
    """
    n_workers = resolve_n_jobs(n_jobs)
    if n_workers <= 1:
        from .baselines.farmer import mine_farmer

        return mine_farmer(
            dataset,
            consequent,
            minsup,
            minconf=minconf,
            engine=engine,
            node_budget=node_budget,
            time_budget=time_budget,
            max_groups=max_groups,
            min_chi_square=min_chi_square,
        )
    request = FarmerRequest(
        consequent=consequent,
        minsup=minsup,
        minconf=minconf,
        engine=engine,
        node_budget=node_budget,
        max_groups=max_groups,
        min_chi_square=min_chi_square,
    )
    view = MiningView(dataset, consequent, minsup)
    shards = plan_shards(view.n_rows, n_workers)
    jobs = [("farmer", request, mask) for mask in shards]
    outputs = _execute(dataset, jobs, n_workers, time_budget, cancel)
    merged: list = []
    for groups, _stats in outputs:
        merged.extend(groups)
    stats = merge_stats([stats for _groups, stats in outputs], engine)
    if max_groups is not None and len(merged) > max_groups:
        # Serial FARMER raises after emitting one group past the cap; keep
        # the identical prefix of the DFS emission order.
        merged = merged[: max_groups + 1]
        stats.completed = False
    policy = FarmerPolicy(
        view, minconf=minconf, max_groups=None, min_chi_square=min_chi_square
    )
    policy.groups = merged
    return FarmerResult(
        groups=policy.finalize(),
        consequent=consequent,
        minsup=minsup,
        minconf=minconf,
        stats=stats,
    )


def parallel_map(
    fn: Callable,
    items: Iterable,
    n_jobs: Optional[int] = None,
) -> list:
    """Order-preserving process map for coarse-grained work (e.g. CV folds).

    ``fn`` must be picklable (a module-level function).  With one worker
    (or one item) the map runs inline, so callers can pass user-facing
    ``n_jobs`` straight through.
    """
    work = list(items)
    n_workers = min(resolve_n_jobs(n_jobs), max(1, len(work)))
    if n_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=_mp_context()) as pool:
        return list(pool.map(fn, work))


def results_equal(a: TopkResult, b: TopkResult) -> bool:
    """True iff two mining results are bit-identical.

    Compares the full per-row structure — row ids, list order, and every
    group's antecedent, consequent, row set, support and confidence.
    Used by the bench harness and tests to assert the parallel backend
    reproduces the serial result exactly.
    """
    if a.per_row.keys() != b.per_row.keys():
        return False
    for row, groups in a.per_row.items():
        other = b.per_row[row]
        if len(groups) != len(other):
            return False
        for left, right in zip(groups, other):
            if (
                left.antecedent != right.antecedent
                or left.consequent != right.consequent
                or left.row_set != right.row_set
                or left.support != right.support
                or left.confidence != right.confidence
            ):
                return False
    return True
