"""Regression tests for the service-layer bugs found by the audit work.

Each test here fails on the pre-fix code:

* the ``/mine`` in-flight dedup check, submit, and registration were not
  atomic, so two concurrent identical requests both mined, and a
  fast-finishing job's cleanup could run before registration, leaving a
  stale in-flight entry;
* non-numeric ``node_budget``/``time_budget`` reached ``mine_topk`` on
  the worker thread and surfaced as a FAILED job instead of a 400;
* a malformed ``Content-Length`` header raised an uncaught-by-design
  ``ValueError`` that the generic handler turned into a 500 instead of
  a client-addressable 400;
* ``MiningCache.put`` with an oversize result dropped the existing good
  entry for that key before bailing;
* ``job_status`` read ``status`` and ``result`` without the queue lock,
  so a poller could observe a torn pair (status "running" with a result
  attached);
* a job function raising a ``BaseException`` such as ``SystemExit``
  slipped past the ``except Exception`` guard in ``JobQueue._worker``,
  killing the worker thread: the job stayed RUNNING forever (its
  ``wait()`` hung) and every queued job behind it was orphaned.
"""

import http.client
import json
import threading

import pytest

import repro.service.server as server_module
from repro.core.topk_miner import mine_topk
from repro.data import random_discretized_dataset
from repro.data.loaders import discretized_to_payload
from repro.service import MiningCache, ReproServer, RuleService, ServiceError
from repro.service.jobs import Job, JobQueue


@pytest.fixture
def dataset_payload():
    dataset = random_discretized_dataset(
        n_rows=10, n_items=9, density=0.45, seed=11
    )
    return discretized_to_payload(dataset)


def _mine_body(payload, **extra):
    body = {"items": payload, "consequent": 1, "k": 1, "minsup": 1}
    body.update(extra)
    return body


class TestMineDedupRace:
    def test_concurrent_identical_mines_deduplicate(
        self, dataset_payload, monkeypatch
    ):
        """Two racing identical /mine submissions must share one job.

        A barrier inside ``JobQueue.submit`` holds a submission at the
        exact point the pre-fix code had already passed the in-flight
        check but not yet registered the job.  Pre-fix, both threads
        pass the check, meet at the barrier, and both mine.  With the
        atomic check-submit-register, the second thread blocks on the
        service lock instead of reaching submit, the barrier times out
        harmlessly, and the second request deduplicates onto the first
        job (the job itself is gated so it cannot finish early and
        invalidate the dedup window).
        """
        service = RuleService(mining_workers=1)
        barrier = threading.Barrier(2)
        gate = threading.Event()
        original_submit = JobQueue.submit
        original_mine = server_module.mine_topk

        def stalling_submit(queue, fn):
            try:
                barrier.wait(timeout=0.5)
            except threading.BrokenBarrierError:
                pass
            return original_submit(queue, fn)

        def gated_mine(*args, **kwargs):
            gate.wait(timeout=10)
            return original_mine(*args, **kwargs)

        monkeypatch.setattr(JobQueue, "submit", stalling_submit)
        monkeypatch.setattr(server_module, "mine_topk", gated_mine)
        responses = [None, None]

        def submit(slot):
            responses[slot] = service.submit_mine(_mine_body(dataset_payload))

        threads = [
            threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            gate.set()
        finally:
            gate.set()
            service.shutdown()
        assert all(response is not None for response in responses)
        job_ids = {response["job_id"] for response in responses}
        assert len(job_ids) == 1, f"both requests mined: {responses}"
        assert any(r.get("deduplicated") for r in responses)
        assert service.telemetry.snapshot()["counters"].get(
            "mine_jobs_submitted"
        ) == 1

    def test_fast_finish_leaves_no_stale_inflight_entry(
        self, dataset_payload, monkeypatch
    ):
        """A job finishing before registration must still be cleaned up.

        ``JobQueue.submit`` is patched to wait for the submitted job to
        finish before returning, recreating the pre-fix interleaving
        where the job's cleanup ran before ``submit_mine`` registered
        it, permanently leaking the in-flight entry.  Post-fix the job
        cannot finish inside submit (its cleanup needs the service lock
        the caller holds), the wait times out, and cleanup follows
        registration.
        """
        service = RuleService(mining_workers=1)
        original_submit = JobQueue.submit

        def submit_then_wait(queue, fn):
            job = original_submit(queue, fn)
            job.wait(timeout=1.0)
            return job

        monkeypatch.setattr(JobQueue, "submit", submit_then_wait)
        try:
            response = service.submit_mine(_mine_body(dataset_payload))
            job = service.jobs.get(response["job_id"])
            assert job.wait(timeout=30)
            # The cleanup runs inside the job function, so it has
            # completed by the time the job is observable as finished.
            assert not service._inflight, "stale in-flight entry leaked"
        finally:
            service.shutdown()


class TestBudgetValidation:
    @pytest.mark.parametrize("field", ["node_budget", "time_budget"])
    @pytest.mark.parametrize(
        "bad", ["soon", [1], {"n": 1}, True, 0, -5], ids=repr
    )
    def test_bad_budgets_are_rejected_up_front(
        self, dataset_payload, field, bad
    ):
        service = RuleService(mining_workers=1)
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.submit_mine(_mine_body(dataset_payload, **{field: bad}))
            assert excinfo.value.status == 400
            assert field in str(excinfo.value)
        finally:
            service.shutdown()

    def test_float_node_budget_is_rejected(self, dataset_payload):
        service = RuleService(mining_workers=1)
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.submit_mine(
                    _mine_body(dataset_payload, node_budget=1.5)
                )
            assert excinfo.value.status == 400
        finally:
            service.shutdown()

    def test_null_budget_disables_it_and_good_budgets_pass(
        self, dataset_payload
    ):
        service = RuleService(mining_workers=1)
        try:
            response = service.submit_mine(_mine_body(
                dataset_payload, node_budget=None, time_budget=2.5
            ))
            job = service.jobs.get(response["job_id"])
            assert job.wait(timeout=30)
            assert job.status == "done"
        finally:
            service.shutdown()


class TestMalformedContentLength:
    def test_bad_content_length_returns_400(self):
        server = ReproServer(port=0).start()
        try:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                connection.putrequest("POST", "/mine")
                connection.putheader("Content-Type", "application/json")
                connection.putheader("Content-Length", "not-a-number")
                connection.endheaders()
                response = connection.getresponse()
                body = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 400
            assert "Content-Length" in body["error"]
        finally:
            server.stop()


class TestOversizePutRetention:
    def test_oversize_put_keeps_existing_entry(self):
        from repro.service.cache import _estimate_result_bytes

        dataset = random_discretized_dataset(
            n_rows=6, n_items=5, density=0.5, seed=3
        )
        small = mine_topk(dataset, 1, 1, k=1)
        big = mine_topk(dataset, 1, 1, k=10)
        small_size = _estimate_result_bytes(small)
        big_size = _estimate_result_bytes(big)
        assert small_size < big_size
        cache = MiningCache(max_bytes=(small_size + big_size) // 2)
        cache.put("key", small)
        assert cache.get("key") is small
        cache.put("key", big)  # oversize: must be a no-op, not a drop
        assert cache.get("key") is small, (
            "oversize put dropped the existing good entry"
        )
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == small_size


class TestWorkerSurvivesBaseException:
    def test_system_exit_fails_job_and_keeps_worker_alive(self):
        """A job raising SystemExit must fail cleanly, not kill the
        worker thread.  Pre-fix, ``except Exception`` missed it: the
        worker died, the job stayed RUNNING with ``wait()`` hanging, and
        the follow-up job below was never picked up."""
        queue = JobQueue(workers=1)

        def exiting_job(job):
            raise SystemExit(3)

        try:
            doomed = queue.submit(exiting_job)
            assert doomed.wait(timeout=30), (
                "job never reached a terminal state (worker thread died)"
            )
            assert doomed.status == "failed"
            assert "SystemExit" in doomed.error
            # The same worker must still be alive to run the next job.
            follow_up = queue.submit(lambda job: "still here")
            assert follow_up.wait(timeout=30)
            assert follow_up.status == "done"
            assert follow_up.result == "still here"
        finally:
            queue.shutdown()

    def test_keyboard_interrupt_in_job_does_not_orphan_queue(self):
        queue = JobQueue(workers=1)

        def interrupted_job(job):
            raise KeyboardInterrupt

        try:
            doomed = queue.submit(interrupted_job)
            assert doomed.wait(timeout=30)
            assert doomed.status == "failed"
            follow_up = queue.submit(lambda job: 7)
            assert follow_up.wait(timeout=30)
            assert follow_up.result == 7
        finally:
            queue.shutdown()


class TestJobStatusSnapshot:
    def test_job_status_never_sees_torn_status_result_pair(self, monkeypatch):
        """A poller must never see a non-terminal status with a result.

        ``Job.describe`` is patched so that, the first time the poller
        reads the running job, it releases the job function and then
        waits for the job to reach its terminal state before returning
        the (stale, pre-completion) description.  Pre-fix that is
        exactly the torn window: ``job_status`` then consulted
        ``job.result`` — already set — and returned status "running"
        with a result attached.  Post-fix the snapshot holds the queue
        lock across both reads, the worker cannot finish inside the
        window (finishing needs the same lock), the wait times out, and
        the returned payload is consistent.
        """
        service = RuleService(mining_workers=1)
        release = threading.Event()
        started = threading.Event()
        paused_once = threading.Event()
        original_describe = Job.describe

        def job_fn(job):
            started.set()
            release.wait(timeout=10)
            return {"answer": 42}

        def pausing_describe(job):
            payload = original_describe(job)
            if payload["status"] == "running" and not paused_once.is_set():
                paused_once.set()
                release.set()
                job._done.wait(timeout=1.0)
            return payload

        try:
            job = service.jobs.submit(job_fn)
            assert started.wait(timeout=30)
            monkeypatch.setattr(Job, "describe", pausing_describe)
            payload = service.job_status(job.job_id)
            monkeypatch.setattr(Job, "describe", original_describe)
            assert paused_once.is_set()
            if payload["status"] in ("queued", "running"):
                assert "result" not in payload, (
                    "torn read: non-terminal status paired with a result"
                )
            else:
                assert payload["status"] == "done"
                assert payload["result"] == {"answer": 42}
        finally:
            release.set()
            service.shutdown()
