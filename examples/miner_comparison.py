"""Head-to-head of the mining algorithms on one workload.

Runs MineTopkRGS (three engines), FARMER (with/without the prefix tree
and confidence pruning), CHARM and CLOSET+ on the same discretized
dataset and compares runtimes, enumeration effort, and output volume —
a miniature of the paper's Section 6.1 narrative: bounded top-k output
vs. the exploding complete rule-group sets.

Run:  python examples/miner_comparison.py [--scale 0.1] [--fraction 0.8]
"""

import argparse
import time

from repro import mine_topk, relative_minsup
from repro.baselines import mine_charm, mine_closetplus, mine_farmer
from repro.data import generate_paper_dataset
from repro.data.discretize import EntropyDiscretizer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="ALL",
                        choices=("ALL", "LC", "OC", "PC"))
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--fraction", type=float, default=0.8,
                        help="minimum support as a fraction of class 1")
    parser.add_argument("--budget", type=float, default=30.0,
                        help="per-miner wall-clock budget in seconds")
    args = parser.parse_args()

    train, _test = generate_paper_dataset(args.dataset, scale=args.scale)
    items = EntropyDiscretizer().fit_transform(train)
    minsup = relative_minsup(items, 1, args.fraction)
    print(f"{args.dataset} x{args.scale:g}: {items.n_rows} rows, "
          f"{items.n_items} items, minsup={minsup} "
          f"({args.fraction:g} of class 1)\n")
    print(f"{'miner':28s} {'time':>10s} {'output':>8s}  notes")

    def report(name: str, seconds: float, output: int, note: str = "") -> None:
        print(f"{name:28s} {seconds:9.3f}s {output:8d}  {note}")

    for k in (1, 100):
        start = time.perf_counter()
        result = mine_topk(items, 1, minsup, k=k, engine="tree",
                           time_budget=args.budget)
        report(f"MineTopkRGS k={k}", time.perf_counter() - start,
               len(result.unique_groups()),
               f"{result.stats.nodes_visited} nodes")

    for label, engine, minconf in (
        ("FARMER", "table", 0.0),
        ("FARMER minconf=0.9", "table", 0.9),
        ("FARMER+prefix", "tree", 0.0),
    ):
        start = time.perf_counter()
        result = mine_farmer(items, 1, minsup, minconf=minconf,
                             engine=engine, time_budget=args.budget)
        note = "" if result.completed else "BUDGET EXPIRED"
        report(label, time.perf_counter() - start, len(result.groups), note)

    start = time.perf_counter()
    charm = mine_charm(items, 1, minsup, node_budget=2_000_000)
    note = "" if charm.completed else "BUDGET EXPIRED"
    report("CHARM (diffsets)", time.perf_counter() - start,
           len(charm.groups), note)

    start = time.perf_counter()
    closet = mine_closetplus(items, 1, minsup, node_budget=2_000_000)
    note = "" if closet.completed else "BUDGET EXPIRED"
    report("CLOSET+", time.perf_counter() - start, len(closet.groups), note)

    print("\nMineTopkRGS output is bounded by k x rows; the exhaustive "
          "miners' output (and runtime) explodes as minsup drops.\n"
          "(Column enumeration can win at tiny scales like this demo's — "
          "its search space grows with the ITEM count, so increase "
          "--scale or lower --fraction to watch it fall over.)")


if __name__ == "__main__":
    main()
