"""Hybrid column-then-row enumeration (the Section 8 extension).

The paper's row enumeration assumes few rows and many columns.  Its
discussion section sketches the extension to *tall* datasets: "utilizing
column-wise mining first, then switching to row-wise enumeration in later
levels to mine top-k covering rules in the partition formed by
column-wise mining, and finally aggregating the top-k covering rules in
all partitions."

This module implements that sketch:

1. **Column phase** — one partition per frequent item ``i``: the rows
   containing ``i``, with the item universe restricted to ``j >= i``.
   Because every antecedent mined inside the partition contains ``i``,
   its support set lies entirely inside the partition, so supports and
   confidences measured locally are exact global values.
2. **Row phase** — ordinary MineTopkRGS row enumeration inside each
   partition.
3. **Aggregation** — each discovered group is attributed to the partition
   of its closure's *smallest* item (so every group is produced exactly
   once), re-closed over the full item universe, and offered into global
   per-row top-k lists.

The output is identical to :func:`repro.core.topk_miner.mine_topk` (the
cross-validation tests assert this); the benefit is that each row
enumeration runs over a partition instead of the whole table, which is
the paper's proposed route to datasets with many rows and to disk-based
operation (partitions are independent and can be processed one at a
time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .bitset import iter_indices, popcount
from .rules import RuleGroup, TopKList
from .topk_miner import TopkResult, mine_topk

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["HybridStats", "mine_topk_hybrid"]


@dataclass
class HybridStats:
    """Aggregate statistics of a hybrid run."""

    n_partitions: int = 0
    n_skipped_partitions: int = 0
    total_nodes: int = 0
    max_partition_rows: int = 0
    completed: bool = True


def _partition_dataset(
    dataset: "DiscretizedDataset", anchor: int, row_ids: list[int]
) -> "DiscretizedDataset":
    """Rows containing ``anchor``, items restricted to ids >= anchor."""
    from ..data.dataset import DiscretizedDataset

    rows = [
        frozenset(item for item in dataset.rows[row] if item >= anchor)
        for row in row_ids
    ]
    return DiscretizedDataset(
        rows,
        [dataset.labels[row] for row in row_ids],
        dataset.items,
        class_names=list(dataset.class_names),
        name=f"{dataset.name}|{anchor}",
    )


def mine_topk_hybrid(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    k: int = 1,
    engine: str = "bitset",
    node_budget_per_partition: Optional[int] = None,
    spill_dir: Optional[str] = None,
) -> TopkResult:
    """Top-k covering rule groups via column-partitioned row enumeration.

    Args:
        dataset: discretized dataset (works for any row count; intended
            for tall datasets where direct row enumeration struggles).
        consequent: class id of the rule consequent.
        minsup: absolute minimum support.
        k: rule groups to keep per row.
        engine: row-enumeration engine used inside each partition.
        node_budget_per_partition: optional per-partition node cap; a
            capped partition marks the overall result incomplete.
        spill_dir: when set, each partition is written to this directory
            and read back before mining — the paper's second Section 8
            route ("database projection (disk-based) techniques"): only
            one projected partition is resident while it is mined, so
            peak memory is bounded by the largest partition rather than
            the whole table.

    Returns:
        A :class:`TopkResult` equal to the direct miner's output; its
        ``stats`` carries the summed node counts.
    """
    class_mask = dataset.class_mask(consequent)
    item_rows = dataset.item_row_sets()

    # Frequent items by consequent-class support, as in Figure 3 step 1.
    frequent = [
        item
        for item in range(dataset.n_items)
        if popcount(item_rows[item] & class_mask) >= minsup
    ]

    lists: dict[int, TopKList] = {
        row: TopKList(k)
        for row, label in enumerate(dataset.labels)
        if label == consequent
    }
    stats = HybridStats()
    closure_cache: dict[int, frozenset[int]] = {}

    for anchor in frequent:
        row_ids = list(iter_indices(item_rows[anchor]))
        stats.n_partitions += 1
        stats.max_partition_rows = max(stats.max_partition_rows, len(row_ids))
        partition = _partition_dataset(dataset, anchor, row_ids)
        if spill_dir is not None:
            from pathlib import Path

            from ..data.loaders import load_discretized, save_discretized

            path = Path(spill_dir) / f"partition_{anchor}.json"
            save_discretized(partition, path)
            partition = load_discretized(path)
        result = mine_topk(
            partition,
            consequent,
            minsup,
            k=k,
            engine=engine,
            node_budget=node_budget_per_partition,
        )
        stats.total_nodes += result.stats.nodes_visited
        if not result.stats.completed:
            stats.completed = False
        for group in result.unique_groups():
            # Translate the partition-local row bitset to global rows.
            global_bits = 0
            for local_row in iter_indices(group.row_set):
                global_bits |= 1 << row_ids[local_row]
            closure = closure_cache.get(global_bits)
            if closure is None:
                closure = dataset.common_items(global_bits)
                closure_cache[global_bits] = closure
            if min(closure) != anchor:
                # This group's canonical partition is its smallest item;
                # it will be (or was) produced there.
                continue
            full_group = RuleGroup(
                antecedent=closure,
                consequent=consequent,
                row_set=global_bits,
                support=group.support,
                confidence=group.confidence,
            )
            for row in iter_indices(global_bits & class_mask):
                lists[row].offer(full_group)

    per_row = {row: list(topk) for row, topk in lists.items()}
    from .enumeration import MinerStats

    miner_stats = MinerStats(
        nodes_visited=stats.total_nodes,
        groups_emitted=sum(len(groups) for groups in per_row.values()),
        engine=f"hybrid/{engine}",
        completed=stats.completed,
    )
    result = TopkResult(
        per_row=per_row,
        consequent=consequent,
        minsup=minsup,
        k=k,
        stats=miner_stats,
    )
    result.hybrid_stats = stats  # type: ignore[attr-defined]
    return result
