"""Tests for the IRG (upper-bound-rule) classifier."""

import pytest

from repro.classifiers import CBAClassifier, IRGClassifier
from repro.errors import NotFittedError


class TestTraining:
    def test_fits_benchmark(self, small_benchmark):
        model = IRGClassifier(minconf=0.8).fit(small_benchmark.train_items)
        assert model.selected_ is not None
        assert model.score(small_benchmark.train_items) >= 0.8

    def test_rules_are_long_upper_bounds(self, small_benchmark):
        irg = IRGClassifier(minconf=0.8).fit(small_benchmark.train_items)
        cba = CBAClassifier().fit(small_benchmark.train_items)
        if irg.selected_.rules and cba.rules_:
            mean_irg = sum(len(r.antecedent) for r in irg.selected_.rules) / len(
                irg.selected_.rules
            )
            mean_cba = sum(len(r.antecedent) for r in cba.rules_) / len(
                cba.rules_
            )
            assert mean_irg >= mean_cba

    def test_rules_satisfy_minconf(self, small_benchmark):
        model = IRGClassifier(minconf=0.8).fit(small_benchmark.train_items)
        assert all(r.confidence >= 0.8 for r in model.selected_.rules)

    def test_budget_marks_truncation(self, small_benchmark):
        model = IRGClassifier(node_budget=2).fit(small_benchmark.train_items)
        assert model.mining_completed_ in (True, False)


class TestPrediction:
    def test_not_fitted(self, figure1):
        with pytest.raises(NotFittedError):
            IRGClassifier().predict_with_sources(figure1)

    def test_defaults_at_least_as_often_as_cba(self, small_benchmark):
        """Upper bounds are maximally specific, so IRG matches test rows
        no more often than lower-bound-based CBA — the paper's
        explanation for its weak Table 2 showing."""
        train, test = small_benchmark.train_items, small_benchmark.test_items
        irg = IRGClassifier(minconf=0.8).fit(train)
        cba = CBAClassifier().fit(train)
        _p, irg_sources = irg.predict_with_sources(test)
        _p, cba_sources = cba.predict_with_sources(test)
        assert irg_sources.count("default") >= cba_sources.count("default")

    def test_sources(self, small_benchmark):
        model = IRGClassifier().fit(small_benchmark.train_items)
        _preds, sources = model.predict_with_sources(
            small_benchmark.test_items
        )
        assert set(sources) <= {"main", "default"}
