"""Pluggable vectorized bitset-operation backends.

Every hot path in the reproduction — closure intersection, backward
pruning subset tests, support popcounts (paper §4.1, Figure 3) —
bottoms out in operations over row bitsets.  This package makes the
*implementation* of those operations pluggable while keeping the
*representation* at the API boundary fixed: *every backend consumes and
returns plain Python ``int`` bitsets* (bit ``i`` set means row ``i``
present, exactly as in :mod:`repro.core.bitset`), so results are
bit-identical across backends by construction.  What a backend may vary
is how it stores an *encoded support table* internally and how it
executes the batch operations over it:

``int`` (default)
    The pure arbitrary-precision-integer implementation the package has
    always used.  No encoding, no dependencies; batch calls are tight
    loops over ``&``/``|``/``int.bit_count``.

``packed``
    Supports packed into 64-bit words (``array("Q")``) with a
    table-driven 16-bit popcount.  Pure stdlib.

``numpy``
    Supports packed into a ``uint64`` matrix; ``intersect_many`` is one
    ``np.bitwise_and.reduce`` over a row slice, popcounts go through
    ``np.bitwise_count``.  Import-guarded: the backend registers only
    when numpy is importable, and nothing else in the package imports
    numpy.

Selection precedence (see :func:`resolve_backend`):

1. an explicit ``backend=`` argument (a name or a
   :class:`~repro.core.backends.base.BitsetBackend` instance) threaded
   through ``MiningView``/``mine_topk``/``mine_farmer``/the service;
2. the ``REPRO_BITSET_BACKEND`` environment variable;
3. the ``int`` default.

The batch contract every backend honours (and
``tests/test_backends.py`` enforces on audit-generator cases):

* ``encode_supports(bitsets, n_bits)`` returns an opaque handle over a
  support table; ``intersect_many(handle, ids)`` /
  ``union_many(handle, ids)`` / ``intersect_union_many(handle, ids)``
  fold the selected supports in one call and return plain ``int``
  bitsets equal to the ``&``/``|`` folds;
* ``popcount_many(bitsets)`` equals ``[popcount(b) for b in bitsets]``;
* the scalar index helpers (``bit``/``from_indices``/``mask_below``/
  ``mask_upto``...) share one validated implementation, so every
  backend agrees on edge semantics — negative indices raise
  ``ValueError`` everywhere.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .base import BitsetBackend
from .int_backend import IntBackend
from .packed_backend import PackedBackend

__all__ = [
    "BitsetBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

ENV_VAR = "REPRO_BITSET_BACKEND"
DEFAULT_BACKEND = "int"

# Name -> singleton instance.  Backends are stateless (the per-view
# state lives in the encoded handles), so one shared instance per
# process is enough and lets SupportIndex compare backends by identity.
_REGISTRY: dict[str, BitsetBackend] = {
    "int": IntBackend(),
    "packed": PackedBackend(),
}

try:  # numpy is optional: pure Python stays the default.
    from .numpy_backend import NumpyBackend

    _REGISTRY["numpy"] = NumpyBackend()
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    NumpyBackend = None

# Names a user may ask for, available or not — used for CLI choices and
# for the "unavailable" (vs "unknown") error distinction.
KNOWN_BACKENDS = ("int", "packed", "numpy")


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this process, default first."""
    return tuple(
        sorted(_REGISTRY, key=lambda name: (name != DEFAULT_BACKEND, name))
    )


def get_backend(name: str) -> BitsetBackend:
    """The registered backend singleton for ``name``.

    Raises:
        ValueError: unknown name, or a known backend whose optional
            dependency is missing in this environment.
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        if name in KNOWN_BACKENDS:
            raise ValueError(
                f"bitset backend {name!r} is not available in this "
                f"environment (is its dependency installed?); available: "
                f"{', '.join(available_backends())}"
            )
        raise ValueError(
            f"unknown bitset backend {name!r}; expected one of "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    return backend


def resolve_backend(
    backend: Optional[Union[str, BitsetBackend]] = None,
) -> BitsetBackend:
    """Apply the selection precedence: argument > environment > default."""
    if isinstance(backend, BitsetBackend):
        return backend
    if backend is not None:
        return get_backend(backend)
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return get_backend(env)
    return _REGISTRY[DEFAULT_BACKEND]
