"""Ablation study: which RCBT ingredients buy its accuracy (Section 6.2).

The paper attributes RCBT's Table 2 lead to two factors — the standby
classifiers and the committee vote over ``nl`` lower bounds.  This driver
isolates them:

* ``RCBT`` — full configuration (k standby levels, score voting);
* ``no standby`` — k = 1 (main classifier only);
* ``first match`` — voting replaced by CBA-style first-match per level;
* ``nl = 1`` — one lower bound per group (no committee);
* ``CBA`` — the baseline all of the above collapse toward.

It also reports the miner-side ablations (top-k pruning, single-item
initialization, dynamic minsup) as enumeration node counts.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..classifiers import CBAClassifier, RCBTClassifier
from ..core.topk_miner import mine_topk, relative_minsup
from .harness import DATASET_NAMES, prepare, render_table

__all__ = ["AblationResult", "run_classifier_ablation", "run_miner_ablation",
           "render", "main"]

CLASSIFIER_VARIANTS = ("RCBT", "no standby", "first match", "nl=1", "CBA")


@dataclass
class AblationResult:
    """Accuracy per dataset per classifier variant, plus miner counters."""

    accuracy: dict[str, dict[str, float]] = field(default_factory=dict)
    miner_nodes: dict[str, dict[str, int]] = field(default_factory=dict)
    k: int = 10
    nl: int = 20


def run_classifier_ablation(
    scale: float = 1.0,
    datasets: Sequence[str] = ("ALL", "PC"),
    k: int = 10,
    nl: int = 20,
    minsup_fraction: float = 0.7,
) -> AblationResult:
    """Fit every RCBT variant (and CBA) on each dataset."""
    result = AblationResult(k=k, nl=nl)
    for name in datasets:
        benchmark = prepare(name, scale)
        train, test = benchmark.train_items, benchmark.test_items
        variants = {
            "RCBT": RCBTClassifier(k=k, nl=nl,
                                   minsup_fraction=minsup_fraction),
            "no standby": RCBTClassifier(k=1, nl=nl,
                                         minsup_fraction=minsup_fraction),
            "first match": RCBTClassifier(k=k, nl=nl, use_voting=False,
                                          minsup_fraction=minsup_fraction),
            "nl=1": RCBTClassifier(k=k, nl=1,
                                   minsup_fraction=minsup_fraction),
            "CBA": CBAClassifier(minsup_fraction=minsup_fraction),
        }
        result.accuracy[name] = {
            label: model.fit(train).score(test)
            for label, model in variants.items()
        }
    return result


def run_miner_ablation(
    scale: float = 1.0,
    datasets: Sequence[str] = ("ALL",),
    minsup_fraction: float = 0.8,
) -> AblationResult:
    """Enumeration node counts with each optimization toggled off."""
    result = AblationResult()
    for name in datasets:
        benchmark = prepare(name, scale)
        train = benchmark.train_items
        minsup = relative_minsup(train, 1, minsup_fraction)
        configurations = {
            "all optimizations": dict(),
            "no top-k pruning": dict(
                use_topk_pruning=False,
                initialize_single_items=False,
                dynamic_minsup=False,
            ),
            "no single-item init": dict(initialize_single_items=False),
            "no dynamic minsup": dict(dynamic_minsup=False),
            "pruning only": dict(
                initialize_single_items=False, dynamic_minsup=False
            ),
        }
        result.miner_nodes[name] = {
            label: mine_topk(train, 1, minsup, k=1, **options)
            .stats.nodes_visited
            for label, options in configurations.items()
        }
    return result


def render(result: AblationResult) -> str:
    sections = []
    if result.accuracy:
        datasets = list(result.accuracy)
        headers = ["Variant", *datasets]
        body = [
            [variant,
             *(f"{result.accuracy[d].get(variant, 0):.2%}" for d in datasets)]
            for variant in CLASSIFIER_VARIANTS
            if any(variant in result.accuracy[d] for d in datasets)
        ]
        sections.append(render_table(
            headers, body,
            title=f"RCBT ablation (k={result.k}, nl={result.nl})",
        ))
    for name, counters in result.miner_nodes.items():
        headers = ["Configuration", "Enumeration nodes"]
        body = [[label, nodes] for label, nodes in counters.items()]
        sections.append(render_table(
            headers, body, title=f"MineTopkRGS ablation — {name}"
        ))
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--datasets", nargs="+", default=["ALL", "PC"],
                        choices=DATASET_NAMES)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--nl", type=int, default=20)
    parser.add_argument("--which", choices=["classifier", "miner", "both"],
                        default="both")
    args = parser.parse_args(argv)
    result = AblationResult(k=args.k, nl=args.nl)
    if args.which in ("classifier", "both"):
        partial = run_classifier_ablation(
            scale=args.scale, datasets=args.datasets, k=args.k, nl=args.nl
        )
        result.accuracy = partial.accuracy
    if args.which in ("miner", "both"):
        partial = run_miner_ablation(scale=args.scale,
                                     datasets=args.datasets[:1])
        result.miner_nodes = partial.miner_nodes
    print(render(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
