"""Synthetic gene expression workloads shaped like the paper's datasets.

The paper evaluates on four public microarray datasets (Table 1): ALL/AML
leukemia, lung cancer, ovarian cancer and prostate cancer.  Those files are
not available offline, so this module generates synthetic continuous
expression matrices with the *same shapes* (samples, genes, class splits)
and the structural properties the algorithms are sensitive to:

* a small number of rows and a very large number of columns;
* a minority of *informative* genes whose distribution depends on the
  class (these are the genes the MDL discretizer keeps);
* *co-expression blocks* — groups of genes driven by a shared latent
  factor, which discretize into items with near-identical support sets and
  hence produce the large rule groups (many lower bounds per upper bound)
  that make FARMER-style exhaustive mining explode;
* for the prostate-cancer analog, a systematic *test-set shift* on the
  top-ranked genes.  The real PC test samples came from a different lab,
  which is why single-gene-driven classifiers (the C4.5 family) collapse
  on it in the paper while rule committees survive; the shift reproduces
  that regime.

Alongside the paper-shaped "few rows, many columns" datasets, this
module also generates *tall cohorts* (:class:`TallCohortSpec`,
:func:`generate_tall_cohort`): thousands of rows over a modest item
catalog, the regime of consortium-scale sample collections rather than
single microarray studies.  Tall cohorts exist to exercise the
row-dimension scaling of the miners — their row bitsets span hundreds of
64-bit words, which is where the vectorized bitset backends
(:mod:`repro.core.backends`) earn their keep — and are registered as
first-class ``repro bench`` workloads.  Construction is chunked
(:func:`iter_tall_chunks`): each chunk of rows is drawn from its own
``(seed, chunk_index)``-keyed RNG stream, so generation is one
vectorized draw per chunk (generation never bottlenecks the benchmark),
chunks can be streamed without materializing the matrix, and a cohort's
prefix is stable — growing ``n_rows`` appends rows without reshuffling
the ones already drawn.

Every generator is deterministic given its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .dataset import DiscretizedDataset, GeneExpressionDataset, Item

__all__ = [
    "DatasetSpec",
    "ALL_AML",
    "LUNG_CANCER",
    "OVARIAN_CANCER",
    "PROSTATE_CANCER",
    "PAPER_DATASETS",
    "TALL_COHORTS",
    "TallCohortSpec",
    "generate_dataset",
    "generate_paper_dataset",
    "generate_tall_cohort",
    "iter_tall_chunks",
    "make_figure1_example",
    "random_discretized_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape and structure parameters of one synthetic dataset.

    The counts mirror Table 1 of the paper; the structural knobs control
    how hard the discretized dataset is to mine.

    Attributes:
        name: short dataset code (``ALL``, ``LC``, ``OC``, ``PC``).
        class_names: display names, index 0 = class 0, index 1 = class 1.
            Class 1 is the paper's "class 1" consequent.
        n_genes: total genes in the continuous matrix.
        train_per_class: training samples per class (class0, class1).
        test_per_class: test samples per class (class0, class1).
        n_informative: genes given a class-dependent signal.
        n_blocks: number of co-expression blocks among informative genes.
        block_size: genes per block.
        effect: mean class separation, in units of the noise std.
        noise: sample noise std.
        test_shift: batch-effect strength.  The strongest
            ``shift_fraction`` of informative genes (by class separation)
            have ``test_shift`` times their train-split class separation
            *subtracted* from every test sample.  With a value around
            1.5-2 this moves class-1 test samples onto the class-0 side
            of any threshold learned on those genes while keeping class-0
            samples on their own side — the cross-lab regime of the real
            prostate-cancer test set, where single-top-gene classifiers
            misclassify every tumor sample.  0 disables.
        shift_fraction: fraction of informative genes receiving the full
            targeted flip (the top of the gain ranking).
        shift_tail_fraction: fraction of the *remaining* informative genes
            (beyond ``shift_protect_top``) that additionally receive the
            flip, drawn at random.  This broad component degrades
            weight-spreading models (SVM) while the protected band of
            strong genes keeps rule committees healthy.
        shift_protect_top: number of top-ranked genes (beyond the fully
            flipped ones) excluded from the tail shift.
        latent_noise: std of the per-sample noise on block latent
            activations; larger values make item support sets within a
            block more diverse (more distinct rule groups, longer lower
            bounds).
        missing_rate: fraction of measurements replaced by NaN (missing
            values are common in real microarray files; the discretizer
            skips them, so rows get varying item counts).
        seed: RNG seed.
    """

    name: str
    class_names: tuple[str, str]
    n_genes: int
    train_per_class: tuple[int, int]
    test_per_class: tuple[int, int]
    n_informative: int
    n_blocks: int = 24
    block_size: int = 8
    effect: float = 2.6
    noise: float = 1.0
    test_shift: float = 0.0
    shift_fraction: float = 0.3
    shift_tail_fraction: float = 0.0
    shift_protect_top: int = 50
    latent_noise: float = 0.5
    missing_rate: float = 0.0
    seed: int = 7

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a spec with gene counts scaled by ``scale`` (0 < s <= 1).

        Sample counts are preserved — the paper's datasets are "few rows,
        many columns" and the row dimension is what drives enumeration.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n_informative = max(8, int(round(self.n_informative * scale)))
        n_blocks = max(2, int(round(self.n_blocks * scale)))
        # The batch effect must keep flipping every gene a single-gene
        # learner could root on: hold the *absolute* count of fully
        # flipped genes at >= 8 and shrink the protected band with the
        # gene dimension.
        shift_fraction = self.shift_fraction
        shift_protect_top = self.shift_protect_top
        if self.test_shift:
            shift_fraction = max(
                self.shift_fraction, min(0.15, 8.0 / n_informative)
            )
            shift_protect_top = max(
                12, int(round(self.shift_protect_top * scale))
            )
        return DatasetSpec(
            name=self.name,
            class_names=self.class_names,
            n_genes=max(n_informative * 2, int(round(self.n_genes * scale))),
            train_per_class=self.train_per_class,
            test_per_class=self.test_per_class,
            n_informative=n_informative,
            n_blocks=n_blocks,
            block_size=self.block_size,
            effect=self.effect,
            noise=self.noise,
            test_shift=self.test_shift,
            shift_fraction=shift_fraction,
            shift_tail_fraction=self.shift_tail_fraction,
            shift_protect_top=shift_protect_top,
            latent_noise=self.latent_noise,
            missing_rate=self.missing_rate,
            seed=self.seed,
        )

    @property
    def n_train(self) -> int:
        return sum(self.train_per_class)

    @property
    def n_test(self) -> int:
        return sum(self.test_per_class)


# Shapes from Table 1.  "class 1" in the paper is the first-listed label
# (ALL, MPM, tumor, tumor); we store it at class id 1.
ALL_AML = DatasetSpec(
    name="ALL",
    class_names=("AML", "ALL"),
    n_genes=7129,
    train_per_class=(11, 27),
    test_per_class=(14, 20),
    n_informative=880,
    n_blocks=30,
    block_size=9,
    seed=41,
)

LUNG_CANCER = DatasetSpec(
    name="LC",
    class_names=("ADCA", "MPM"),
    n_genes=12533,
    train_per_class=(16, 16),
    test_per_class=(134, 15),
    n_informative=2200,
    n_blocks=48,
    block_size=10,
    seed=42,
)

OVARIAN_CANCER = DatasetSpec(
    name="OC",
    class_names=("normal", "tumor"),
    n_genes=15154,
    train_per_class=(77, 133),
    test_per_class=(14, 29),
    n_informative=5800,
    n_blocks=80,
    block_size=12,
    effect=1.9,
    seed=43,
)

PROSTATE_CANCER = DatasetSpec(
    name="PC",
    class_names=("normal", "tumor"),
    n_genes=12600,
    train_per_class=(50, 52),
    test_per_class=(9, 25),
    n_informative=1570,
    n_blocks=40,
    block_size=9,
    effect=2.0,
    test_shift=1.7,
    shift_fraction=0.005,
    shift_tail_fraction=0.305,
    shift_protect_top=50,
    latent_noise=0.9,
    seed=44,
)

PAPER_DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (ALL_AML, LUNG_CANCER, OVARIAN_CANCER, PROSTATE_CANCER)
}


def _sample_matrix(
    spec: DatasetSpec,
    labels: np.ndarray,
    rng: np.random.Generator,
    base_means: np.ndarray,
    effects: np.ndarray,
    block_assignment: np.ndarray,
    block_loadings: np.ndarray,
    block_class_means: np.ndarray,
) -> np.ndarray:
    """Draw one expression matrix for the given label vector."""
    n = labels.shape[0]
    values = base_means[None, :] + rng.normal(0.0, spec.noise, size=(n, spec.n_genes))
    # Independent informative genes: additive class effect.
    values += labels[:, None] * effects[None, :]
    # Co-expression blocks: shared latent activation per sample.
    for block in range(spec.n_blocks):
        members = np.flatnonzero(block_assignment == block)
        if members.size == 0:
            continue
        latent = block_class_means[block, labels] + rng.normal(
            0.0, spec.latent_noise, size=n
        )
        values[:, members] += np.outer(latent, block_loadings[members])
    return values


def _single_split_gains(values: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Best single-threshold information gain of each gene (in bits).

    This is the quantity a decision stump (or the root of a C4.5 tree)
    maximizes; the batch-effect generator uses it to decide which genes a
    single-gene learner would depend on.
    """
    n, n_genes = values.shape
    base_counts = np.bincount(labels, minlength=2).astype(float)

    def _entropy_bits(counts: np.ndarray) -> np.ndarray:
        totals = counts.sum(axis=-1, keepdims=True)
        probs = counts / np.maximum(totals, 1e-12)
        logs = np.zeros_like(probs)
        positive = probs > 0
        logs[positive] = np.log2(probs[positive])
        return -(probs * logs).sum(axis=-1)

    base_entropy = float(_entropy_bits(base_counts[None, :])[0])
    gains = np.zeros(n_genes)
    for gene in range(n_genes):
        order = np.argsort(values[:, gene], kind="mergesort")
        sorted_labels = labels[order]
        ones = np.cumsum(sorted_labels)[:-1].astype(float)
        left_n = np.arange(1, n, dtype=float)
        left = np.stack([left_n - ones, ones], axis=1)
        right = base_counts[None, :] - left
        info = (left_n / n) * _entropy_bits(left) + (
            (n - left_n) / n
        ) * _entropy_bits(right)
        gains[gene] = base_entropy - info.min()
    return gains


def generate_dataset(
    spec: DatasetSpec,
) -> tuple[GeneExpressionDataset, GeneExpressionDataset]:
    """Generate (train, test) continuous datasets for ``spec``."""
    rng = np.random.default_rng(spec.seed)
    n_genes = spec.n_genes
    n_informative = min(spec.n_informative, n_genes)

    base_means = rng.normal(0.0, 1.0, size=n_genes)
    informative = rng.choice(n_genes, size=n_informative, replace=False)

    # Which informative genes belong to a block, which carry an
    # independent effect.  block_assignment[g] == -1 means no block.
    block_assignment = np.full(n_genes, -1, dtype=int)
    n_block_genes = min(spec.n_blocks * spec.block_size, n_informative)
    block_members = informative[:n_block_genes]
    for index, gene in enumerate(block_members):
        block_assignment[gene] = index % spec.n_blocks
    independent = informative[n_block_genes:]

    effects = np.zeros(n_genes)
    magnitudes = rng.gamma(shape=4.0, scale=spec.effect / 4.0, size=independent.size)
    signs = rng.choice([-1.0, 1.0], size=independent.size)
    effects[independent] = magnitudes * signs

    block_loadings = np.zeros(n_genes)
    block_loadings[block_members] = rng.uniform(0.7, 1.3, size=block_members.size)
    block_loadings[block_members] *= rng.choice([-1.0, 1.0], size=block_members.size)
    block_class_means = np.zeros((spec.n_blocks, 2))
    block_class_means[:, 1] = rng.choice([-1.0, 1.0], size=spec.n_blocks) * rng.uniform(
        spec.effect * 0.8, spec.effect * 1.2, size=spec.n_blocks
    )

    train_labels = np.concatenate(
        [np.zeros(spec.train_per_class[0], int), np.ones(spec.train_per_class[1], int)]
    )
    test_labels = np.concatenate(
        [np.zeros(spec.test_per_class[0], int), np.ones(spec.test_per_class[1], int)]
    )
    train_order = rng.permutation(train_labels.size)
    test_order = rng.permutation(test_labels.size)
    train_labels = train_labels[train_order]
    test_labels = test_labels[test_order]

    train_values = _sample_matrix(
        spec, train_labels, rng, base_means, effects,
        block_assignment, block_loadings, block_class_means,
    )
    test_values = _sample_matrix(
        spec, test_labels, rng, base_means, effects,
        block_assignment, block_loadings, block_class_means,
    )

    if spec.test_shift:
        # Batch effect on the test split, emulating the cross-lab PC test
        # set.  The genes to corrupt are the ones any single-gene learner
        # would latch onto: the top of the *empirical* information-gain
        # ranking on the training split.  Each gets its empirical class
        # separation (difference of training class means) subtracted from
        # every test sample, scaled by ``test_shift`` — class-1 test
        # samples land on the class-0 side of any threshold trained on
        # that gene while class-0 samples stay put.
        gains = _single_split_gains(train_values, train_labels)
        order = np.argsort(gains)[::-1]
        n_full = max(1, int(round(n_informative * spec.shift_fraction)))
        # Never flip more than a third of the near-perfect separators:
        # the point of the batch effect is to break single-gene learners
        # while the redundant signal rule committees rely on survives.
        near_perfect = int((gains >= 0.9 * gains[order[0]]).sum())
        n_full = min(n_full, max(1, near_perfect // 3))
        shifted = list(order[:n_full])
        if spec.shift_tail_fraction > 0:
            pool = order[n_full + spec.shift_protect_top : n_informative]
            n_tail = int(round(len(pool) * spec.shift_tail_fraction))
            if n_tail:
                shifted.extend(rng.choice(pool, size=n_tail, replace=False))
        shifted = np.asarray(shifted)
        class1 = train_labels == 1
        separation = (
            train_values[class1][:, shifted].mean(axis=0)
            - train_values[~class1][:, shifted].mean(axis=0)
        )
        test_values[:, shifted] -= spec.test_shift * separation[None, :]

    if spec.missing_rate > 0:
        for matrix in (train_values, test_values):
            mask = rng.random(matrix.shape) < spec.missing_rate
            matrix[mask] = np.nan

    gene_names = [f"{spec.name}_{i:05d}" for i in range(n_genes)]
    train = GeneExpressionDataset(
        train_values, train_labels, gene_names, list(spec.class_names),
        name=f"{spec.name}-train",
    )
    test = GeneExpressionDataset(
        test_values, test_labels, gene_names, list(spec.class_names),
        name=f"{spec.name}-test",
    )
    return train, test


def generate_paper_dataset(
    name: str, scale: float = 1.0
) -> tuple[GeneExpressionDataset, GeneExpressionDataset]:
    """Generate a paper-shaped dataset by code (``ALL``/``LC``/``OC``/``PC``).

    Args:
        name: dataset code from Table 1.
        scale: gene-count scale factor in (0, 1]; 1.0 reproduces the full
            Table 1 shapes.
    """
    try:
        spec = PAPER_DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_DATASETS))
        raise KeyError(f"unknown dataset {name!r}; expected one of: {known}")
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_dataset(spec)


def make_figure1_example() -> DiscretizedDataset:
    """The running example of Figure 1(a).

    Five rows over items a..p; rows 1-3 have class C (id 1) and rows 4-5
    class not-C (id 0).  Used throughout the tests to pin the paper's
    worked examples.
    """
    letters = ["a", "b", "c", "d", "e", "f", "g", "h", "o", "p"]
    ids = {letter: index for index, letter in enumerate(letters)}
    items = [
        Item(index, index, letter, float("-inf"), float("inf"))
        for index, letter in enumerate(letters)
    ]
    raw_rows = ["abcde", "abcop", "cdefg", "cdefg", "efgho"]
    rows = [frozenset(ids[ch] for ch in row) for row in raw_rows]
    labels = [1, 1, 1, 0, 0]
    return DiscretizedDataset(
        rows, labels, items, class_names=["not_C", "C"], name="figure1"
    )


@dataclass(frozen=True)
class TallCohortSpec:
    """Shape of one tall (many-rows) discretized cohort.

    The inverse regime of the paper's datasets: thousands of samples
    over a modest item catalog, as produced by pooling many studies into
    one cohort.  Structure is kept simple and fully parameterized — a
    band of *signal* items enriched in the positive class over a bed of
    class-independent noise items — so the mining workload is shaped by
    a handful of dials rather than a discretization pipeline:

    Attributes:
        name: registry/bench name (e.g. ``tall-4k``).
        n_rows: total samples.
        n_items: total items in the catalog.
        n_signal: leading items whose presence rate depends on the class.
        signal_rate_pos: P(signal item present | positive row).
        signal_rate_neg: P(signal item present | negative row).
        noise_rate: P(noise item present), class-independent.
        positive_fraction: P(row is labelled positive).
        chunk_rows: rows drawn per RNG chunk.  Part of the cohort's
            identity, not a tuning knob: each chunk is drawn from a
            ``(seed, chunk_index)``-keyed stream, so changing it
            re-deals every row.
        seed: base RNG seed.
    """

    name: str
    n_rows: int
    n_items: int = 32
    n_signal: int = 12
    signal_rate_pos: float = 0.88
    signal_rate_neg: float = 0.25
    noise_rate: float = 0.4
    positive_fraction: float = 0.55
    chunk_rows: int = 1024
    seed: int = 71

    def scaled(self, scale: float) -> "TallCohortSpec":
        """Return a spec with the row count scaled by ``scale``.

        The item catalog is preserved — rows are the dimension tall
        cohorts exist to stress.  The scaled count is floored at 96 rows
        so the bitsets always span multiple 64-bit words (the regime the
        vectorized backends are for).
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if scale == 1.0:
            return self
        return TallCohortSpec(
            name=self.name,
            n_rows=max(96, int(round(self.n_rows * scale))),
            n_items=self.n_items,
            n_signal=self.n_signal,
            signal_rate_pos=self.signal_rate_pos,
            signal_rate_neg=self.signal_rate_neg,
            noise_rate=self.noise_rate,
            positive_fraction=self.positive_fraction,
            chunk_rows=self.chunk_rows,
            seed=self.seed,
        )


# The committed bench tiers.  All share seed/chunk/item parameters, so
# each is a prefix of the next — the bench sweep measures pure row-count
# scaling, not a re-deal of the data.
TALL_COHORTS: dict[str, TallCohortSpec] = {
    spec.name: spec
    for spec in (
        TallCohortSpec(name="tall-1k", n_rows=1024),
        TallCohortSpec(name="tall-4k", n_rows=4096),
        TallCohortSpec(name="tall-16k", n_rows=16384),
        TallCohortSpec(name="tall-64k", n_rows=65536),
    )
}


def iter_tall_chunks(spec: TallCohortSpec):
    """Yield ``(rows, labels)`` chunks of at most ``spec.chunk_rows`` rows.

    Rows are frozensets of item ids, labels are ints.  Each chunk is one
    vectorized draw from ``np.random.default_rng((seed, chunk_index))``,
    independent of every other chunk — stream the chunks, or concatenate
    them for the full cohort.  Every row is non-empty (a row that draws
    no items keeps its first noise item).
    """
    if spec.n_rows < 1:
        raise ValueError(f"tall cohort needs n_rows >= 1, got {spec.n_rows}")
    if not 0 < spec.n_signal <= spec.n_items:
        raise ValueError(
            f"n_signal must be in 1..n_items, got {spec.n_signal} of "
            f"{spec.n_items}"
        )
    emitted = 0
    chunk_index = 0
    while emitted < spec.n_rows:
        size = min(spec.chunk_rows, spec.n_rows - emitted)
        rng = np.random.default_rng((spec.seed, chunk_index))
        # One full-width draw per chunk regardless of a short tail, so
        # the tail chunk of a small cohort equals the head of the same
        # chunk in a taller one (prefix stability).
        labels = (
            rng.random(spec.chunk_rows) < spec.positive_fraction
        ).astype(int)
        draws = rng.random((spec.chunk_rows, spec.n_items))
        thresholds = np.full((spec.chunk_rows, spec.n_items), spec.noise_rate)
        thresholds[:, : spec.n_signal] = np.where(
            labels[:, None] == 1, spec.signal_rate_pos, spec.signal_rate_neg
        )
        present = draws < thresholds
        empty = ~present.any(axis=1)
        present[empty, spec.n_signal % spec.n_items] = True
        rows = [
            frozenset(int(item) for item in np.flatnonzero(present[i]))
            for i in range(size)
        ]
        yield rows, [int(label) for label in labels[:size]]
        emitted += size
        chunk_index += 1


def generate_tall_cohort(
    spec: TallCohortSpec | str, scale: float = 1.0
) -> DiscretizedDataset:
    """Materialize a tall cohort as a :class:`DiscretizedDataset`.

    Args:
        spec: a :class:`TallCohortSpec` or a registry name from
            :data:`TALL_COHORTS` (``tall-1k``/``tall-4k``/``tall-16k``).
        scale: row-count scale factor in (0, 1], as in
            :meth:`TallCohortSpec.scaled`.
    """
    if isinstance(spec, str):
        try:
            spec = TALL_COHORTS[spec]
        except KeyError:
            known = ", ".join(sorted(TALL_COHORTS))
            raise KeyError(
                f"unknown tall cohort {spec!r}; expected one of: {known}"
            )
    if scale != 1.0:
        spec = spec.scaled(scale)
    rows: list[frozenset[int]] = []
    labels: list[int] = []
    for chunk_rows, chunk_labels in iter_tall_chunks(spec):
        rows.extend(chunk_rows)
        labels.extend(chunk_labels)
    # Guarantee both classes exist even in pathological tiny scalings.
    for class_id in (0, 1):
        if class_id not in labels:
            labels[class_id % len(labels)] = class_id
    items = [
        Item(index, index, f"t{index:03d}", float("-inf"), float("inf"))
        for index in range(spec.n_items)
    ]
    return DiscretizedDataset(
        rows, labels, items, class_names=["control", "case"], name=spec.name
    )


def random_discretized_dataset(
    n_rows: int,
    n_items: int,
    density: float = 0.4,
    n_classes: int = 2,
    seed: int = 0,
    name: str = "random",
) -> DiscretizedDataset:
    """A small random itemized dataset for tests and property checks.

    Every row is guaranteed non-empty and both classes are present
    whenever ``n_rows >= n_classes``.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        mask = rng.random(n_items) < density
        if not mask.any():
            mask[rng.integers(n_items)] = True
        rows.append(frozenset(int(i) for i in np.flatnonzero(mask)))
    labels = [int(rng.integers(n_classes)) for _ in range(n_rows)]
    for class_id in range(min(n_classes, n_rows)):
        if class_id not in labels:
            labels[class_id] = class_id
    items = [
        Item(index, index, f"i{index}", float("-inf"), float("inf"))
        for index in range(n_items)
    ]
    return DiscretizedDataset(rows, labels, items, name=name)
