"""The backend contract and the shared scalar index helpers.

A backend is a strategy object for bitset *operations*; bitset *values*
crossing the API are always plain Python ``int``s (the package-wide
representation of :mod:`repro.core.bitset`), which is what makes every
backend bit-identical by construction — only the execution of the batch
folds differs.

The scalar index helpers (``bit``/``from_indices``/``mask_below``/
``mask_upto``...) are implemented once on this base class, on top of the
validated functions in :mod:`repro.core.bitset`.  Subclasses are free to
override the *batch* operations but inherit the scalar ones, so the edge
semantics (negative index -> ``ValueError``) cannot drift between
backends; ``tests/test_backends.py`` drives every operation through
every backend to enforce exactly that.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Iterable, Iterator, Sequence

from .. import bitset as _bitset

__all__ = ["BitsetBackend", "NodeKernel", "ThresholdStore"]

#: The per-walk bound kernel the enumeration engines drive: three
#: callables closed over one support handle and one encoded mask, so a
#: backend can cache buffers/tables/scratch arrays across the nodes of a
#: single walk instead of re-materializing them per call.  One kernel is
#: created per enumeration run (never shared between threads), which is
#: what makes backend-private scratch state safe.
NodeKernel = namedtuple(
    "NodeKernel",
    ["intersect_union_counts", "intersect_counts", "masked_counts"],
)


class ThresholdStore:
    """Per-position (confidence, support) thresholds with a min-fold.

    The top-k policy maintains one threshold pair per consequent-class
    row (the k-th list entry of Equations 1-2) and, at every pruning
    check, needs the lexicographic minimum of those pairs over the rows
    of a ``threshold_bits`` bitset.  That fold is the dominant per-node
    cost on tall datasets — O(set bits) Python-loop iterations, each
    shaving the lowest bit off a multi-word int — so it is a backend
    strategy point: :meth:`BitsetBackend.make_threshold_store` lets an
    array backend keep the pairs in vectorized storage and fold them in
    a handful of C calls.

    The contract mirrors the rest of the package: ``update`` writes one
    position's pair, ``fold`` returns exactly what the reference loop
    below returns (a full lexicographic min; ``(0.0, 0)`` is the global
    minimum, so early exit never changes the result), and every store is
    bit-identical by construction.  Positions start at ``(0.0, 0)`` —
    the threshold of an underfull top-k list.
    """

    __slots__ = ("confs", "sups")

    def __init__(self, n_positive: int) -> None:
        self.confs: list[float] = [0.0] * n_positive
        self.sups: list[int] = [0] * n_positive

    def update(self, position: int, conf: float, sup: int) -> None:
        self.confs[position] = conf
        self.sups[position] = sup

    def fold(self, bits: int) -> tuple[float, int]:
        """Lexicographic min of ``(conf, sup)`` over the set positions.

        ``bits`` must be non-empty; the caller treats an empty row set
        as unconditionally prunable before consulting thresholds.
        """
        min_conf = float("inf")
        min_sup = 0
        confs = self.confs
        sups = self.sups
        while bits:
            low = bits & -bits
            bits ^= low
            position = low.bit_length() - 1
            conf = confs[position]
            sup = sups[position]
            if conf < min_conf or (conf == min_conf and sup < min_sup):
                min_conf = conf
                min_sup = sup
                if min_conf == 0.0 and min_sup == 0:
                    break
        return min_conf, min_sup


class BitsetBackend:
    """Base class: shared scalar ops + the batch-operation contract.

    Batch contract (``ids`` are indices into the encoded support
    table; results are plain ``int`` bitsets):

    * ``encode_supports(bitsets, n_bits)`` -> opaque handle; ``n_bits``
      is the universe size (row count) every bitset fits in.
    * ``intersect_many(handle, ids)`` == fold of ``&`` over the
      selected supports; ``ids`` must be non-empty (an ``&``-fold has
      no identity element bounded by the handle alone).
    * ``union_many(handle, ids)`` == fold of ``|``; empty ``ids`` -> 0.
    * ``intersect_union_many(handle, ids)`` == both folds in one call —
      the per-node shape of the bitset enumeration kernel.
    * ``popcount_many(bitsets)`` == ``[popcount(b) for b in bitsets]``
      over plain ints (no handle: the kernels count freshly derived
      masks, not table rows).
    """

    #: Registry name; subclasses set it.
    name: str = "base"

    # -- scalar index helpers (shared, validated) -------------------------

    @staticmethod
    def bit(index: int) -> int:
        return _bitset.bit(index)

    @staticmethod
    def from_indices(indices: Iterable[int]) -> int:
        return _bitset.from_indices(indices)

    @staticmethod
    def to_indices(bits: int) -> list[int]:
        return _bitset.to_indices(bits)

    @staticmethod
    def iter_indices(bits: int) -> Iterator[int]:
        return _bitset.iter_indices(bits)

    @staticmethod
    def is_subset(smaller: int, larger: int) -> bool:
        return _bitset.is_subset(smaller, larger)

    @staticmethod
    def contains(bits: int, index: int) -> bool:
        return _bitset.contains(bits, index)

    @staticmethod
    def lowest_bit_index(bits: int) -> int:
        return _bitset.lowest_bit_index(bits)

    @staticmethod
    def mask_below(index: int) -> int:
        return _bitset.mask_below(index)

    @staticmethod
    def mask_upto(index: int) -> int:
        return _bitset.mask_upto(index)

    def popcount(self, bits: int) -> int:
        return bits.bit_count()

    # -- batch operations (subclasses override) ---------------------------

    def encode_supports(self, bitsets: Sequence[int], n_bits: int):
        """Encode a support table for the batch folds.  Subclasses may
        return any handle their batch methods understand; the default is
        a plain tuple of the ints."""
        return tuple(bitsets)

    def intersect_many(self, handle, ids: Sequence[int]) -> int:
        raise NotImplementedError

    def union_many(self, handle, ids: Sequence[int]) -> int:
        raise NotImplementedError

    def intersect_union_many(self, handle, ids: Sequence[int]) -> tuple[int, int]:
        raise NotImplementedError

    def popcount_many(self, bitsets: Sequence[int]) -> list[int]:
        raise NotImplementedError

    # -- fused counting folds (the tall-dataset hot path) ------------------
    #
    # The enumeration kernels need, at every node, the closure/union fold
    # *and* the positive/total popcounts of the closure.  Computing them
    # as separate batch calls materializes intermediate bitsets
    # (``closure & positive_mask``) and, for array-encoded backends,
    # round-trips every derived mask through int<->array conversion.  The
    # fused methods below fold the mask popcount into the reduce itself;
    # the defaults compose the primitive batch methods, so a third-party
    # backend that only implements the primitives stays correct (and
    # bit-identical) automatically.

    def encode_mask(self, bits: int, n_bits: int):
        """Encode one long-lived mask (e.g. the positive-class mask of a
        view) for the counting folds below.  The default representation
        is the plain ``int`` itself; a backend overriding this must also
        override every method that receives an encoded mask."""
        return bits

    def intersect_union_counts(
        self, handle, ids: Sequence[int], mask
    ) -> tuple[int, int, int, int]:
        """``(inter, union, popcount(inter & mask), popcount(inter))``
        with both folds and both counts in one pass."""
        inter, union = self.intersect_union_many(handle, ids)
        return inter, union, (inter & mask).bit_count(), inter.bit_count()

    def intersect_counts(
        self, handle, ids: Sequence[int], mask
    ) -> tuple[int, int, int]:
        """``(inter, popcount(inter & mask), popcount(inter))``."""
        inter = self.intersect_many(handle, ids)
        return inter, (inter & mask).bit_count(), inter.bit_count()

    def masked_counts(self, bits: int, mask) -> tuple[int, int]:
        """``(popcount(bits & mask), popcount(bits))`` for one fresh
        bitset (the candidate set a node derives in int space)."""
        return (bits & mask).bit_count(), bits.bit_count()

    def make_threshold_store(self, n_positive: int) -> ThresholdStore:
        """Create the dynamic-threshold store for a top-k run.

        Array backends override this to keep the per-row threshold pairs
        in vectorized storage so the per-node min-fold of Equations 1-2
        runs in C instead of a Python bit-shaving loop.  Every store
        returns exactly what :meth:`ThresholdStore.fold` returns.
        """
        return ThresholdStore(n_positive)

    def node_kernel(self, handle, mask) -> NodeKernel:
        """Bind the fused folds for one enumeration walk.

        Subclasses override to close over pre-resolved state (unpacked
        handles, popcount tables, preallocated scratch buffers) so the
        per-node calls do no setup work.  Kernels are walk-private:
        callers create one per run and never share it across threads.
        """
        return NodeKernel(
            lambda ids: self.intersect_union_counts(handle, ids, mask),
            lambda ids: self.intersect_counts(handle, ids, mask),
            lambda bits: self.masked_counts(bits, mask),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
