"""Tests for the row-enumeration driver and its engines."""

import pytest

from repro.baselines.farmer import FarmerPolicy, mine_farmer
from repro.core.enumeration import ENGINES, run_enumeration
from repro.core.view import MiningView
from repro.data.synthetic import random_discretized_dataset
from repro.errors import MiningBudgetExceeded


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_engines_emit_identical_groups(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.45, seed=seed)
        outputs = {}
        for engine in ENGINES:
            result = mine_farmer(ds, 1, minsup=1, engine=engine)
            outputs[engine] = {
                (tuple(sorted(g.antecedent)), g.row_set, g.support)
                for g in result.groups
            }
        assert outputs["bitset"] == outputs["table"] == outputs["tree"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_duplicate_closed_sets(self, engine):
        ds = random_discretized_dataset(10, 9, density=0.5, seed=42)
        result = mine_farmer(ds, 1, minsup=1, engine=engine)
        row_sets = [g.row_set for g in result.groups]
        assert len(row_sets) == len(set(row_sets))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_all_emitted_groups_closed(self, engine, small_random):
        ds = small_random
        result = mine_farmer(ds, 1, minsup=1, engine=engine)
        for group in result.groups:
            # The antecedent must be closed over the frequent items.
            closed = ds.common_items(group.row_set)
            assert group.antecedent <= closed
            assert ds.support_set(group.antecedent) == group.row_set


class TestStats:
    def test_counters_populated(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        policy = FarmerPolicy(view)
        stats = run_enumeration(view, policy, engine="bitset")
        assert stats.nodes_visited > 0
        assert stats.groups_emitted == len(policy.groups)
        assert stats.completed
        assert stats.elapsed_seconds >= 0.0

    def test_as_dict_keys(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        stats = run_enumeration(view, FarmerPolicy(view), engine="bitset")
        payload = stats.as_dict()
        assert payload["engine"] == "bitset"
        assert payload["completed"] is True

    def test_unknown_engine(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        with pytest.raises(ValueError, match="unknown engine"):
            run_enumeration(view, FarmerPolicy(view), engine="nope")


class TestBudgets:
    def test_node_budget_raises_with_stats(self, small_random):
        view = MiningView(small_random, 1, minsup=1)
        policy = FarmerPolicy(view)
        with pytest.raises(MiningBudgetExceeded) as exc:
            run_enumeration(view, policy, engine="bitset", node_budget=3)
        assert exc.value.stats is not None
        assert exc.value.stats.nodes_visited == 4
        assert not exc.value.stats.completed

    def test_mine_farmer_returns_partial_on_budget(self, small_random):
        full = mine_farmer(small_random, 1, minsup=1)
        partial = mine_farmer(small_random, 1, minsup=1, node_budget=3)
        assert not partial.completed
        assert len(partial.groups) <= len(full.groups)

    def test_max_groups_budget(self, small_random):
        result = mine_farmer(small_random, 1, minsup=1, max_groups=2)
        if not result.completed:
            assert len(result.groups) >= 2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_budget_partial_groups_are_valid(self, engine, small_random):
        partial = mine_farmer(
            small_random, 1, minsup=1, engine=engine, node_budget=10
        )
        full_keys = {
            g.row_set for g in mine_farmer(small_random, 1, minsup=1).groups
        }
        for group in partial.groups:
            assert group.row_set in full_keys


class TestPruningEffect:
    def test_minsup_prunes_nodes(self, small_random):
        low = mine_farmer(small_random, 1, minsup=1)
        high = mine_farmer(small_random, 1, minsup=3)
        assert high.stats.nodes_visited <= low.stats.nodes_visited
        assert len(high.groups) <= len(low.groups)

    def test_minconf_prunes_output(self, small_random):
        all_groups = mine_farmer(small_random, 1, minsup=1, minconf=0.0)
        confident = mine_farmer(small_random, 1, minsup=1, minconf=0.8)
        assert all(g.confidence >= 0.8 for g in confident.groups)
        expected = {
            g.row_set for g in all_groups.groups if g.confidence >= 0.8
        }
        assert {g.row_set for g in confident.groups} == expected
