"""Tests for the gene ranking measures."""

import pytest

from repro.analysis.gene_ranking import (
    gene_chi_square_scores,
    gene_entropy_scores,
    item_scores,
    rank_genes,
)
from repro.data.dataset import DiscretizedDataset, Item


def two_gene_dataset():
    """Gene 0 separates the classes perfectly; gene 1 is uninformative.

    Items 0/1 are gene 0's intervals; items 2/3 are gene 1's.
    """
    items = [
        Item(0, 0, "g0", float("-inf"), 0.0),
        Item(1, 0, "g0", 0.0, float("inf")),
        Item(2, 1, "g1", float("-inf"), 0.0),
        Item(3, 1, "g1", 0.0, float("inf")),
    ]
    rows = [
        {0, 2}, {0, 3}, {0, 2}, {0, 3},  # class 0: always item 0
        {1, 2}, {1, 3}, {1, 2}, {1, 3},  # class 1: always item 1
    ]
    labels = [0, 0, 0, 0, 1, 1, 1, 1]
    return DiscretizedDataset(rows, labels, items)


class TestEntropyScores:
    def test_perfect_gene_scores_one_bit(self):
        scores = gene_entropy_scores(two_gene_dataset())
        assert scores[0] == pytest.approx(1.0)

    def test_uninformative_gene_scores_zero(self):
        scores = gene_entropy_scores(two_gene_dataset())
        assert scores[1] == pytest.approx(0.0)

    def test_ordering(self):
        scores = gene_entropy_scores(two_gene_dataset())
        assert scores[0] > scores[1]


class TestChiSquareScores:
    def test_perfect_gene_max_statistic(self):
        scores = gene_chi_square_scores(two_gene_dataset())
        # Perfect 2x2 association on 8 rows: chi-square == n == 8.
        assert scores[0] == pytest.approx(8.0)

    def test_uninformative_gene_zero(self):
        scores = gene_chi_square_scores(two_gene_dataset())
        assert scores[1] == pytest.approx(0.0)


class TestItemScores:
    def test_items_inherit_gene_scores(self):
        ds = two_gene_dataset()
        gene_scores = gene_entropy_scores(ds)
        per_item = item_scores(ds, gene_scores)
        assert per_item[0] == per_item[1] == gene_scores[0]
        assert per_item[2] == per_item[3] == gene_scores[1]

    def test_missing_gene_defaults_zero(self):
        ds = two_gene_dataset()
        per_item = item_scores(ds, {})
        assert all(score == 0.0 for score in per_item.values())


class TestRankGenes:
    def test_best_gene_rank_one(self):
        ranks = rank_genes({0: 5.0, 1: 1.0, 2: 3.0})
        assert ranks[0] == 1
        assert ranks[2] == 2
        assert ranks[1] == 3

    def test_ties_broken_by_index(self):
        ranks = rank_genes({3: 2.0, 1: 2.0})
        assert ranks[1] == 1
        assert ranks[3] == 2

    def test_empty(self):
        assert rank_genes({}) == {}
