"""Differential fuzzing and invariant auditing (``repro audit``).

The paper's central claims are equivalences — every enumeration engine
visits the same nodes, MineTopkRGS equals the naive top-k baseline, the
sharded parallel merge is bit-identical to serial — so correctness can
be audited without any hand-written expected outputs.  This package
exploits that:

* :mod:`.generator` — seeded randomized datasets (skew, duplicates,
  degenerate shapes) where ``(seed, index)`` fully determines a case;
* :mod:`.invariants` — the paper-invariant catalog, importable by tests
  and run inline by the miners under ``REPRO_CHECK=1``;
* :mod:`.oracle` — the differential cross-checks for one case;
* :mod:`.runner` — orchestration and failure reports, each carrying a
  one-line reproducing command.
"""

from .generator import AuditCase, generate_case, generate_cases
from .invariants import (
    InvariantViolation,
    check_cba_order,
    check_rcbt_coverage,
    check_topk_result,
    checks_enabled,
)
from .oracle import AuditFailure, audit_case
from .runner import AuditReport, run_audit

__all__ = [
    "AuditCase",
    "AuditFailure",
    "AuditReport",
    "InvariantViolation",
    "audit_case",
    "check_cba_order",
    "check_rcbt_coverage",
    "check_topk_result",
    "checks_enabled",
    "generate_case",
    "generate_cases",
    "run_audit",
]
