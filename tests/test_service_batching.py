"""Tests for the batched predict path and the classify micro-batcher."""

import threading

import pytest

from repro.classifiers import CBAClassifier, RCBTClassifier
from repro.errors import NotFittedError
from repro.service.batching import MicroBatcher


class TestPredictBatchEquivalence:
    """The bitset batch path must match per-row prediction exactly."""

    @pytest.mark.parametrize("factory", (
        lambda: RCBTClassifier(k=2, nl=2),
        lambda: RCBTClassifier(k=2, nl=2, use_voting=False),
        lambda: CBAClassifier(),
    ))
    def test_matches_predict_row(self, small_benchmark, factory):
        model = factory().fit(small_benchmark.train_items)
        rows = small_benchmark.test_items.rows
        expected = [model.predict_row(row) for row in rows]
        assert model.predict_batch(rows) == expected

    def test_empty_row_gets_default(self, small_benchmark):
        model = CBAClassifier().fit(small_benchmark.train_items)
        [(label, source)] = model.predict_batch([frozenset()])
        assert source == "default"
        assert label == model.default_class_

    def test_unfitted_batch_raises(self):
        with pytest.raises(NotFittedError):
            RCBTClassifier().predict_batch([frozenset()])


class TestMicroBatcher:
    def test_single_submit_round_trips(self):
        batcher = MicroBatcher(lambda rows: [len(row) for row in rows])
        try:
            assert batcher.submit([frozenset({1, 2}), frozenset()]) == [2, 0]
            assert batcher.submit([]) == []
        finally:
            batcher.close()

    def test_concurrent_submits_are_coalesced_and_correct(self):
        calls = []

        def predict(rows):
            calls.append(len(rows))
            return [sorted(row) for row in rows]

        batcher = MicroBatcher(predict, max_batch_rows=64, max_delay=0.05)
        results = {}
        errors = []

        def client(index):
            rows = [frozenset({index}), frozenset({index, 99})]
            try:
                results[index] = batcher.submit(rows)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        try:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            batcher.close()
        assert errors == []
        # Every caller got its own rows back, in order.
        for index in range(8):
            assert results[index] == [[index], [index, 99]]
        # Fewer underlying calls than callers proves coalescing happened.
        stats = batcher.stats()
        assert stats["requests"] == 8
        assert stats["rows"] == 16
        assert stats["batches"] == len(calls) <= 8

    def test_errors_propagate_to_callers(self):
        def explode(rows):
            raise RuntimeError("model on fire")

        batcher = MicroBatcher(explode)
        try:
            with pytest.raises(RuntimeError, match="model on fire"):
                batcher.submit([frozenset({1})])
        finally:
            batcher.close()

    def test_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda rows: [])
        try:
            with pytest.raises(RuntimeError, match="returned 0 results"):
                batcher.submit([frozenset({1})])
        finally:
            batcher.close()

    def test_close_is_idempotent_and_rejects_new_work(self):
        batcher = MicroBatcher(lambda rows: list(rows))
        batcher.close()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit([frozenset({1})])

    def test_close_leaves_no_nondaemon_threads(self):
        before = set(threading.enumerate())
        batcher = MicroBatcher(lambda rows: list(rows))
        batcher.submit([frozenset({1})])
        batcher.close()
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in before and thread.is_alive() and not thread.daemon
        ]
        assert leaked == []
