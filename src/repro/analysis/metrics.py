"""Evaluation metrics for the classification experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["accuracy", "confusion_matrix", "ClassificationReport", "evaluate"]


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of correct predictions (empty input -> 0.0)."""
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"length mismatch: {len(y_true)} labels vs {len(y_pred)} predictions"
        )
    if not y_true:
        return 0.0
    correct = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    return correct / len(y_true)


def confusion_matrix(
    y_true: Sequence[int], y_pred: Sequence[int], n_classes: Optional[int] = None
) -> list[list[int]]:
    """Row = true class, column = predicted class."""
    if n_classes is None:
        n_classes = max([*y_true, *y_pred], default=-1) + 1
    matrix = [[0] * n_classes for _ in range(n_classes)]
    for t, p in zip(y_true, y_pred):
        matrix[t][p] += 1
    return matrix


@dataclass
class ClassificationReport:
    """Accuracy plus the default-class bookkeeping Section 6.2 reports."""

    accuracy: float
    n_samples: int
    n_errors: int
    confusion: list[list[int]]
    default_class_used: int = 0
    default_class_errors: int = 0
    standby_used: int = 0
    standby_errors: int = 0
    details: dict = field(default_factory=dict)

    def summary(self) -> str:
        parts = [
            f"accuracy={self.accuracy:.2%} ({self.n_samples - self.n_errors}"
            f"/{self.n_samples})"
        ]
        if self.default_class_used:
            parts.append(
                f"default class used on {self.default_class_used} "
                f"({self.default_class_errors} errors)"
            )
        if self.standby_used:
            parts.append(
                f"standby classifiers used on {self.standby_used} "
                f"({self.standby_errors} errors)"
            )
        return "; ".join(parts)


def evaluate(
    y_true: Sequence[int],
    y_pred: Sequence[int],
    decision_sources: Optional[Sequence[str]] = None,
    n_classes: Optional[int] = None,
) -> ClassificationReport:
    """Build a report; ``decision_sources`` tags each prediction.

    Recognised tags: ``"main"``, ``"standby"``, ``"default"`` — rule-based
    classifiers in this package report them so the experiments can
    reproduce the paper's default-class usage comparison.
    """
    acc = accuracy(y_true, y_pred)
    errors = sum(1 for t, p in zip(y_true, y_pred) if t != p)
    report = ClassificationReport(
        accuracy=acc,
        n_samples=len(y_true),
        n_errors=errors,
        confusion=confusion_matrix(y_true, y_pred, n_classes),
    )
    if decision_sources is not None:
        if len(decision_sources) != len(y_true):
            raise ValueError("decision_sources length mismatch")
        for t, p, source in zip(y_true, y_pred, decision_sources):
            if source == "default":
                report.default_class_used += 1
                if t != p:
                    report.default_class_errors += 1
            elif source == "standby":
                report.standby_used += 1
                if t != p:
                    report.standby_errors += 1
    return report
