"""Figure 7: effect of the number of lower bound rules (nl) on accuracy.

Sweeps ``nl`` for RCBT on the ALL- and LC-shaped datasets (the two the
paper plots).  The published curves are flat for nl ≳ 15 — the committee
saturates — and that insensitivity is the claim this driver checks.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..classifiers import RCBTClassifier
from .harness import DATASET_NAMES, prepare, render_table

__all__ = ["Fig7Result", "run", "render", "main"]

DEFAULT_NL_VALUES = (1, 5, 10, 15, 20, 25)


@dataclass
class Fig7Result:
    """Accuracy per dataset per nl value."""

    curves: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    k: int = 10


def run(
    scale: float = 1.0,
    datasets: Sequence[str] = ("ALL", "LC"),
    nl_values: Sequence[int] = DEFAULT_NL_VALUES,
    k: int = 10,
    minsup_fraction: float = 0.7,
) -> Fig7Result:
    """Fit RCBT at each nl and record test accuracy."""
    result = Fig7Result(k=k)
    for name in datasets:
        benchmark = prepare(name, scale)
        curve = []
        for nl in nl_values:
            model = RCBTClassifier(
                k=k, nl=nl, minsup_fraction=minsup_fraction
            ).fit(benchmark.train_items)
            curve.append((nl, model.score(benchmark.test_items)))
        result.curves[name] = curve
    return result


def render(result: Fig7Result) -> str:
    datasets = list(result.curves)
    nl_values = [nl for nl, _acc in next(iter(result.curves.values()))]
    headers = ["nl", *datasets]
    body = []
    for index, nl in enumerate(nl_values):
        body.append(
            [nl, *(f"{result.curves[d][index][1]:.2%}" for d in datasets)]
        )
    return render_table(
        headers, body, title=f"Figure 7 — RCBT accuracy vs nl (k={result.k})"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--datasets", nargs="+", default=["ALL", "LC"],
                        choices=DATASET_NAMES)
    parser.add_argument("--nl-values", nargs="+", type=int,
                        default=list(DEFAULT_NL_VALUES))
    parser.add_argument("--k", type=int, default=10)
    args = parser.parse_args(argv)
    print(render(run(scale=args.scale, datasets=args.datasets,
                     nl_values=args.nl_values, k=args.k)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
