"""The differential oracle: one audit case, every cross-check.

The paper's correctness claims are equivalence claims, which makes the
repo rich in free oracles.  For one generated case this module:

* mines with every engine (``bitset``/``table``/``tree``) and asserts
  the results are **bit-identical** (engines visit the same closed nodes
  in the same order, so even tie order must agree);
* mines with every optimization-flag combination and asserts the
  (confidence, support) **profiles** match the naive brute-force
  baseline (flag variants may discover ties in a different order, so
  profiles — not antecedent identity — are the contract, exactly as in
  the paper);
* re-mines under a rotated non-default bitset backend
  (:mod:`repro.core.backends`: ``packed``/``numpy``) and asserts both
  the result and the deterministic :class:`MinerStats` counters are
  identical to the default backend's;
* re-mines with ``n_jobs > 1`` and asserts the sharded parallel merge
  is bit-identical to the serial run;
* on rotated cases, re-mines with ``strategy="hybrid"`` (the
  column-partitioned out-of-core miner) and asserts the result — and
  the ``completed`` honesty flag — are bit-identical to the direct run;
* on rotated cases, re-mines through the *warm* miner pool and with
  ``n_jobs="auto"`` and asserts the adaptive planner and pool reuse
  change nothing;
* on rotated cases, re-mines with an injected worker **kill** on shard 0
  (:class:`repro.parallel.FaultPlan`) and asserts the crash-recovery
  supervisor returns a result bit-identical to the serial oracle, with
  the retry visible in ``pool_stats()``;
* round-trips the result through the service cache and its JSON
  payload, the dataset through its payload codec (fingerprints and
  re-mined results must survive), and fitted RCBT/CBA classifiers
  through :mod:`repro.classifiers.persistence`;
* runs the invariant catalog of :mod:`.invariants` on every mined
  result.

Every failure message is prefixed with the case description and carries
the copy-pastable reproducing command.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass

from ..baselines.naive_topk import naive_topk
from ..classifiers.cba import CBAClassifier
from ..classifiers.persistence import classifier_from_payload, classifier_to_payload
from ..classifiers.rcbt import RCBTClassifier
from ..core.backends import available_backends
from ..core.enumeration import ENGINES
from ..core.topk_miner import TopkResult, mine_topk
from ..data.loaders import discretized_from_payload, discretized_to_payload
from ..parallel import FaultPlan, mine_topk_parallel, pool_stats, results_equal
from ..service.cache import MiningCache, dataset_fingerprint, mining_key
from ..service.server import topk_result_to_payload
from .generator import AuditCase
from .invariants import (
    InvariantViolation,
    check_cba_order,
    check_rcbt_coverage,
    check_topk_result,
)

__all__ = ["AuditFailure", "audit_case", "profiles"]

# All eight Section 4.1.1 optimization-flag combinations
# (initialize_single_items, dynamic_minsup, use_topk_pruning).
FLAG_COMBOS = tuple(itertools.product((True, False), repeat=3))
# The cheap subset used by --quick: defaults plus the all-off ablation.
QUICK_FLAG_COMBOS = ((True, True, True), (False, False, False))


@dataclass(frozen=True)
class AuditFailure:
    """One differential mismatch or invariant violation."""

    case_index: int
    check: str
    message: str
    repro_command: str

    def render(self) -> str:
        return (
            f"case {self.case_index} [{self.check}] {self.message}\n"
            f"    reproduce: {self.repro_command}"
        )


def profiles(per_row: dict) -> dict:
    """Tie-order-independent view of a per-row result: stats per rank."""
    return {
        row: [(group.confidence, group.support) for group in groups]
        for row, groups in per_row.items()
    }


def _counters(stats) -> dict:
    """The deterministic MinerStats counters (wall-clock excluded)."""
    return {
        "nodes_visited": stats.nodes_visited,
        "groups_emitted": stats.groups_emitted,
        "loose_pruned": stats.loose_pruned,
        "tight_pruned": stats.tight_pruned,
        "backward_pruned": stats.backward_pruned,
    }


class _CaseAuditor:
    """Collects failures for one case instead of stopping at the first."""

    def __init__(self, case: AuditCase) -> None:
        self.case = case
        self.failures: list[AuditFailure] = []
        self.checks_run = 0

    def record(self, check: str, message: str) -> None:
        self.failures.append(
            AuditFailure(
                case_index=self.case.index,
                check=check,
                message=f"{self.case.describe()}: {message}",
                repro_command=self.case.repro_command(),
            )
        )

    def run(self, check: str, fn) -> None:
        """Run one named check, converting any failure into a record."""
        self.checks_run += 1
        try:
            fn()
        except InvariantViolation as violation:
            self.record(check, str(violation))
        except Exception as error:  # unexpected crash is also a finding
            self.record(check, f"crashed: {type(error).__name__}: {error}")

    def expect(self, check: str, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self.record(check, message)

    def mine(self, check: str, **kwargs) -> TopkResult | None:
        """Mine this case's request; a crash records a failure."""
        self.checks_run += 1
        case = self.case
        try:
            return mine_topk(
                case.dataset, case.consequent, case.minsup, k=case.k, **kwargs
            )
        except Exception as error:
            self.record(check, f"mine_topk crashed: "
                               f"{type(error).__name__}: {error}")
            return None


def audit_case(
    case: AuditCase,
    parallel_jobs: int = 2,
    quick: bool = False,
) -> tuple[list[AuditFailure], int]:
    """Run every differential and invariant check on one case.

    Args:
        case: the generated case to audit.
        parallel_jobs: worker processes for the serial-vs-parallel
            check; values < 2 skip it (e.g. in sandboxes without a
            usable multiprocessing context).
        quick: trim the flag matrix and skip classifier round-trips —
            the bounded CI profile.

    Returns:
        ``(failures, checks_run)``.
    """
    auditor = _CaseAuditor(case)
    dataset = case.dataset

    # -- engines: bit-identical results + full invariant catalog ----------
    engine_results: dict[str, TopkResult] = {}
    for engine in ENGINES:
        result = auditor.mine(f"engine:{engine}", engine=engine)
        if result is None:
            continue
        engine_results[engine] = result
        auditor.run(
            f"invariants:{engine}",
            lambda r=result: check_topk_result(dataset, r),
        )
    reference = engine_results.get("bitset")
    if reference is None:
        return auditor.failures, auditor.checks_run
    for engine, result in engine_results.items():
        if engine == "bitset":
            continue
        auditor.expect(
            f"engine-equal:{engine}",
            results_equal(reference, result),
            f"{engine} result differs bit-for-bit from bitset",
        )

    # -- bitset backends: bit-identical results AND stats ------------------
    # Rotate the non-default backends across cases (like the engine
    # rotation below) so the suite covers packed and numpy without mining
    # every case under every backend.  The contract is stronger than for
    # engines: a backend only changes how the folds execute, so even the
    # MinerStats counters must match the default run exactly.
    alternates = [name for name in available_backends() if name != "int"]
    if alternates:
        backend = alternates[case.index % len(alternates)]
        engine = ENGINES[case.index % len(ENGINES)]
        serial = engine_results.get(engine)
        rotated = auditor.mine(
            f"backend:{backend}:{engine}", engine=engine, backend=backend
        )
        if rotated is not None and serial is not None:
            auditor.expect(
                f"backend-equal:{backend}:{engine}",
                results_equal(serial, rotated),
                f"{backend} backend result differs bit-for-bit from the "
                f"default ({engine} engine)",
            )
            auditor.expect(
                f"backend-stats:{backend}:{engine}",
                _counters(rotated.stats) == _counters(serial.stats),
                f"{backend} backend MinerStats differ from the default "
                f"({engine} engine): {_counters(rotated.stats)} vs "
                f"{_counters(serial.stats)}",
            )

    # -- naive baseline: profile equality ---------------------------------
    expected_profiles: dict | None = None

    def _naive() -> None:
        nonlocal expected_profiles
        expected_profiles = profiles(
            naive_topk(dataset, case.consequent, case.minsup, case.k)
        )

    auditor.run("naive-oracle", _naive)
    if expected_profiles is not None:
        auditor.expect(
            "naive-vs-miner",
            profiles(reference.per_row) == expected_profiles,
            "MineTopkRGS profiles differ from the naive top-k baseline",
        )

    # -- optimization flags: profiles invariant under every combination ---
    combos = QUICK_FLAG_COMBOS if quick else FLAG_COMBOS
    for init, dynamic, pruning in combos:
        if (init, dynamic, pruning) == (True, True, True):
            continue  # the reference itself
        name = f"flags:init={init:d},dyn={dynamic:d},prune={pruning:d}"
        result = auditor.mine(
            name,
            engine="bitset",
            initialize_single_items=init,
            dynamic_minsup=dynamic,
            use_topk_pruning=pruning,
        )
        if result is None:
            continue
        auditor.expect(
            name,
            profiles(result.per_row) == profiles(reference.per_row),
            "profiles changed under optimization flags",
        )
        auditor.run(
            f"invariants:{name}",
            lambda r=result: check_topk_result(dataset, r),
        )

    # -- hybrid strategy: bit-identical to direct --------------------------
    if case.index % 4 == 2:
        # Rotated like the backend check: the column-partitioned hybrid
        # miner (strategy="hybrid") must reproduce the direct result bit
        # for bit — per-row lists AND the completed honesty flag — on the
        # same rotated engine.
        engine = ENGINES[case.index % len(ENGINES)]
        serial = engine_results.get(engine)
        hybrid = auditor.mine(
            f"hybrid:{engine}", engine=engine, strategy="hybrid"
        )
        if hybrid is not None and serial is not None:
            auditor.expect(
                f"hybrid-equal:{engine}",
                results_equal(serial, hybrid),
                f"strategy='hybrid' result differs bit-for-bit from "
                f"direct ({engine} engine)",
            )
            auditor.expect(
                f"hybrid-completed:{engine}",
                hybrid.stats.completed == serial.stats.completed,
                "strategy='hybrid' completed flag differs from direct",
            )
            auditor.run(
                f"invariants:hybrid:{engine}",
                lambda r=hybrid: check_topk_result(dataset, r),
            )

    # -- serial vs sharded parallel: bit-identical -------------------------
    if parallel_jobs > 1:
        # Rotate the engine so the whole suite covers all three without
        # paying three process-pool spin-ups per case.
        engine = ENGINES[case.index % len(ENGINES)]
        serial = engine_results.get(engine)
        parallel = auditor.mine(
            f"parallel:{engine}", engine=engine, n_jobs=parallel_jobs
        )
        if parallel is not None and serial is not None:
            auditor.expect(
                f"parallel-equal:{engine}",
                results_equal(serial, parallel),
                f"n_jobs={parallel_jobs} result differs from serial "
                f"({engine} engine)",
            )

    # -- warm pool + adaptive planner: bit-identical -----------------------
    if parallel_jobs > 1 and case.index % 3 == 0:
        # Rotated like the engine above.  Two properties ride this check:
        # the planner path (n_jobs="auto" picks serial or parallel per
        # workload and must change nothing either way), and miner-pool
        # reuse — the pool is warm from the parallel check just above, so
        # this mine rides already-running workers.
        engine = ENGINES[case.index % len(ENGINES)]
        serial = engine_results.get(engine)
        auto = auditor.mine(f"pool:auto:{engine}", engine=engine, n_jobs="auto")
        if auto is not None and serial is not None:
            auditor.expect(
                f"pool-auto-equal:{engine}",
                results_equal(serial, auto),
                f"n_jobs='auto' result differs from serial ({engine} engine)",
            )
        reused = auditor.mine(
            f"pool:reuse:{engine}", engine=engine, n_jobs=parallel_jobs
        )
        if reused is not None and serial is not None:
            auditor.expect(
                f"pool-reuse-equal:{engine}",
                results_equal(serial, reused),
                f"warm-pool reuse differs from serial ({engine} engine)",
            )

    # -- crash recovery: a mine surviving an injected worker kill ----------
    if parallel_jobs > 1 and case.index % 5 == 1:
        # Rotated like the pool checks above (every fault costs a pool
        # generation).  FaultPlan kills the worker mining shard 0 on its
        # first attempt; the supervisor must heal the pool, resubmit the
        # lost shards, and hand back a result bit-identical to the
        # serial oracle — with the retry visible in pool_stats() and no
        # BrokenProcessPool escaping to us.
        def _crash_survival() -> None:
            retries_before = pool_stats()["shard_retries"]
            result = mine_topk_parallel(
                case.dataset, case.consequent, case.minsup, k=case.k,
                n_jobs=parallel_jobs, fault=FaultPlan.parse("kill@0.0"),
            )
            if not results_equal(reference, result):
                raise InvariantViolation(
                    "result after an injected shard-0 worker crash "
                    "differs bit-for-bit from the serial oracle"
                )
            if pool_stats()["shard_retries"] <= retries_before:
                raise InvariantViolation(
                    "injected worker crash was not retried "
                    "(shard_retries did not advance)"
                )

        auditor.run("fault-recovery", _crash_survival)

    # -- service cache + payload round-trips -------------------------------
    def _cache_roundtrip() -> None:
        cache = MiningCache(max_bytes=16 * 1024 * 1024)
        key = mining_key(
            dataset_fingerprint(dataset), case.consequent, case.minsup,
            case.k, "bitset",
        )
        cache.put(key, reference)
        cached = cache.get(key)
        if cached is None or not results_equal(reference, cached):
            raise InvariantViolation("cache get() does not return the "
                                     "result put()")
        payload = topk_result_to_payload(cached)
        if json.loads(json.dumps(payload)) != payload:
            raise InvariantViolation(
                "topk_result_to_payload is not JSON-stable"
            )

    auditor.run("cache-roundtrip", _cache_roundtrip)

    def _dataset_roundtrip() -> None:
        payload = json.loads(json.dumps(discretized_to_payload(dataset)))
        restored = discretized_from_payload(payload)
        if dataset_fingerprint(restored) != dataset_fingerprint(dataset):
            raise InvariantViolation(
                "dataset fingerprint changed across the payload codec"
            )
        remined = mine_topk(
            restored, case.consequent, case.minsup, k=case.k
        )
        if not results_equal(reference, remined):
            raise InvariantViolation(
                "mining the payload-round-tripped dataset changed the result"
            )

    auditor.run("dataset-roundtrip", _dataset_roundtrip)

    # -- CBA total order over the mined rules ------------------------------
    auditor.run(
        "cba-order",
        lambda: check_cba_order(
            [group.upper_bound_rule() for group in reference.unique_groups()]
        ),
    )

    # -- classifier coverage + persistence round-trips ---------------------
    if not quick and dataset.n_classes >= 2:
        auditor.run("rcbt", lambda: _audit_rcbt(dataset))
        auditor.run("cba", lambda: _audit_cba(dataset))

    return auditor.failures, auditor.checks_run


def _roundtrip(model):
    return classifier_from_payload(
        json.loads(json.dumps(classifier_to_payload(model)))
    )


def _audit_rcbt(dataset) -> None:
    model = RCBTClassifier(k=2, nl=3, max_lb_size=3).fit(dataset)
    check_rcbt_coverage(model, dataset)
    restored = _roundtrip(model)
    if restored.predict_batch(dataset.rows) != model.predict_batch(dataset.rows):
        raise InvariantViolation(
            "RCBT predictions changed across the persistence round-trip"
        )


def _audit_cba(dataset) -> None:
    model = CBAClassifier(max_lb_size=3).fit(dataset)
    check_cba_order(model.selected_.rules)
    restored = _roundtrip(model)
    if restored.predict_batch(dataset.rows) != model.predict_batch(dataset.rows):
        raise InvariantViolation(
            "CBA predictions changed across the persistence round-trip"
        )
