"""CLOSET+-style closed itemset mining over an FP-tree.

The second column-enumeration baseline of Section 6.1.  Rows are inserted
into a frequency-ordered prefix tree (we reuse
:class:`~repro.core.prefix_tree.PrefixTree`, which is exactly an FP-tree
when the inserted sequences are transactions); closed itemsets are grown
by recursive conditional projection with CLOSET's two core optimizations:

* *item merging* — conditional items whose count equals the prefix
  support are absorbed into the prefix (they are part of its closure);
* *sub-itemset pruning* — a branch is skipped when an already-found
  closed set with the same support subsumes its prefix.

Like CHARM, the miner works over the frequent-item-reduced space and its
output (after filtering by consequent-class support) equals FARMER's rule
groups at ``minconf = 0``; the cross-miner tests rely on that.  Budgets
return partial results, which is how the experiments reproduce the
paper's "CLOSET+ is usually unable to run to completion" observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.bitset import popcount
from ..core.prefix_tree import PrefixTree
from ..core.rules import RuleGroup
from ..core.view import MiningView
from ..errors import MiningBudgetExceeded

if TYPE_CHECKING:  # pragma: no cover - import is for annotations only
    from ..data.dataset import DiscretizedDataset

__all__ = ["ClosetResult", "mine_closetplus"]


@dataclass
class ClosetResult:
    """Outcome of one CLOSET+ run."""

    groups: list[RuleGroup]
    consequent: int
    minsup: int
    completed: bool
    nodes_visited: int
    elapsed_seconds: float = 0.0


def mine_closetplus(
    dataset: "DiscretizedDataset",
    consequent: int,
    minsup: int,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> ClosetResult:
    """Mine all rule-group upper bounds by FP-tree pattern growth.

    Args:
        dataset: discretized dataset.
        consequent: class id whose support defines the final filter.
        minsup: absolute minimum consequent-class support.  Total support
            is used as the (sound) anti-monotone bound during growth and
            the class-support filter is applied to the closed results.
        node_budget: optional cap on conditional projections.
        time_budget: optional wall-clock cap in seconds.

    Returns:
        A :class:`ClosetResult`; partial when the budget ran out.
    """
    start = time.monotonic()
    view = MiningView(dataset, consequent, minsup)
    positive_mask = view.positive_mask

    # Global ascending-frequency order.  Transactions inserted in this
    # order put rare items near the root, so PrefixTree.project(item)
    # yields precisely the conditional database of that item (the more
    # frequent remainder of every transaction containing it).
    totals = {item: popcount(view.item_rows[item]) for item in view.frequent_items}
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(view.frequent_items, key=lambda i: (totals[i], i))
        )
    }

    tree = PrefixTree()
    for position, items in enumerate(view.row_items):
        if items:
            tree.insert(position, sorted(items, key=order.__getitem__))

    # Every recorded candidate: itemset -> total support.  Subsumption is
    # resolved in a final pass; during the walk the registry only powers
    # sub-itemset pruning.
    recorded: dict[frozenset[int], int] = {}
    by_support: dict[int, list[frozenset[int]]] = {}
    state = {"nodes": 0, "completed": True}

    def record(itemset: frozenset[int], support: int) -> None:
        if itemset and itemset not in recorded:
            recorded[itemset] = support
            by_support.setdefault(support, []).append(itemset)

    def subsumed(itemset: frozenset[int], support: int) -> bool:
        return any(
            existing > itemset for existing in by_support.get(support, ())
        )

    deadline = time.monotonic() + time_budget if time_budget else None

    def grow(current: PrefixTree, prefix: frozenset[int], support: int) -> None:
        state["nodes"] += 1
        if node_budget is not None and state["nodes"] > node_budget:
            raise MiningBudgetExceeded(f"node budget {node_budget} exceeded")
        if deadline is not None and time.monotonic() > deadline:
            raise MiningBudgetExceeded("time budget exceeded")
        counts = current.row_frequencies()
        # Item merging: full-count items are in the prefix closure.
        merged = prefix | {item for item, count in counts.items() if count == support}
        record(merged, support)
        extendable = sorted(
            (
                (item, count)
                for item, count in counts.items()
                if count < support and count >= minsup
            ),
            key=lambda pair: (order[pair[0]], pair[0]),
        )
        for item, count in extendable:
            candidate = merged | {item}
            if subsumed(candidate, count):
                continue
            grow(current.project(item), candidate, count)

    try:
        grow(tree, frozenset(), tree.n_items)
    except MiningBudgetExceeded:
        state["completed"] = False

    # Closure filter: drop any candidate subsumed by a same-support
    # superset, then translate the survivors into rule groups and apply
    # the consequent-class support threshold.
    groups: dict[int, RuleGroup] = {}
    for itemset, support in recorded.items():
        if subsumed(itemset, support):
            continue
        row_bits = view.closure_rows(sorted(itemset))
        if row_bits is None:
            continue
        class_support = popcount(row_bits & positive_mask)
        if class_support < minsup:
            continue
        existing = groups.get(row_bits)
        if existing is not None and len(existing.antecedent) >= len(itemset):
            continue
        groups[row_bits] = RuleGroup(
            antecedent=itemset,
            consequent=consequent,
            row_set=view.positions_to_rows(row_bits),
            support=class_support,
            confidence=class_support / popcount(row_bits),
        )
    return ClosetResult(
        groups=list(groups.values()),
        consequent=consequent,
        minsup=minsup,
        completed=state["completed"],
        nodes_visited=state["nodes"],
        elapsed_seconds=time.monotonic() - start,
    )
