"""The paper's worked examples and lemmas, pinned as tests.

Each test cites the paper construct it checks.  Example 1.1's claim for
row r3 is knowingly *not* reproduced verbatim: see
``test_topk_miner.TestFigure1`` — the example contradicts Definition 2.2
(the rule group of {c} covers r3 with higher confidence than cde).
"""

import pytest

from repro.baselines import mine_farmer
from repro.classifiers import CBAClassifier
from repro.core.bitset import from_indices, popcount
from repro.core.lower_bounds import find_lower_bounds
from repro.core.topk_miner import mine_topk
from repro.data.synthetic import random_discretized_dataset

A, B, C, D, E, F, G, H, O, P = range(10)


class TestExample21:
    """Example 2.1: R(I') and I(R')."""

    def test_item_support_set(self, figure1):
        assert figure1.support_set({C, D, E}) == from_indices([0, 2, 3])

    def test_row_support_set(self, figure1):
        assert figure1.common_items(from_indices([0, 2])) == {C, D, E}


class TestExample22:
    """Example 2.2: the rule group of {r1, r2} with upper bound abc."""

    def test_all_members_share_support_set(self, figure1):
        target = from_indices([0, 1])
        for antecedent in ({A}, {B}, {A, B}, {A, C}, {B, C}, {A, B, C}):
            assert figure1.support_set(antecedent) == target

    def test_upper_bound_unique(self, figure1):
        """Lemma 2.1: the upper bound is unique (= the closure)."""
        assert figure1.common_items(from_indices([0, 1])) == {A, B, C}

    def test_lower_bounds_are_a_and_b(self, figure1):
        result = mine_topk(figure1, 1, minsup=2, k=1)
        group = result.per_row[0][0]
        bounds = find_lower_bounds(figure1, group, nl=5)
        assert {tuple(sorted(r.antecedent)) for r in bounds.rules} == {
            (A,), (B,),
        }


class TestLemma31:
    """Lemma 3.1: I(X) -> C is the upper bound of the group with
    antecedent support set R(I(X))."""

    @pytest.mark.parametrize("rows", ([0, 1], [0, 2], [2, 3], [3, 4]))
    def test_closure_is_upper_bound(self, figure1, rows):
        bits = from_indices(rows)
        items = figure1.common_items(bits)
        if not items:
            return
        support = figure1.support_set(items)
        closure = figure1.common_items(support)
        assert closure == items  # I(R(I(X))) == I(X)


class TestExample31:
    """Example 3.1's concrete numbers for the top-1 discovery walk."""

    def test_abc_group_stats(self, figure1):
        result = mine_topk(figure1, 1, minsup=2, k=1)
        group = result.per_row[0][0]
        assert group.confidence == 1.0
        assert group.support == 2

    def test_cde_group_stats(self, figure1):
        # The group found at node {1,3}: cde -> C, conf 66.7%, sup 2
        # (it closes to rows {r1, r3, r4}).
        farmer = mine_farmer(figure1, 1, minsup=2)
        cde = next(
            g for g in farmer.groups if g.antecedent == frozenset({C, D, E})
        )
        assert cde.support == 2
        assert cde.confidence == pytest.approx(2 / 3)
        assert cde.row_set == from_indices([0, 2, 3])


class TestLemma22:
    """Lemma 2.2: CBA's selected rules come from top-1 covering groups.

    Checked structurally on random data: every rule CBA deploys must have
    the statistics of the top-1 covering rule group of every training row
    it correctly covers first.
    """

    @pytest.mark.parametrize("seed", range(4))
    def test_selected_rules_are_top1_for_covered_rows(self, seed):
        ds = random_discretized_dataset(10, 9, density=0.5, seed=seed)
        model = CBAClassifier(minsup_fraction=0.3).fit(ds)
        top1 = {}
        for class_id in range(ds.n_classes):
            from repro.core.topk_miner import relative_minsup

            minsup = relative_minsup(ds, class_id, 0.3)
            for row, groups in mine_topk(
                ds, class_id, minsup, k=1
            ).per_row.items():
                if groups:
                    top1[(row, class_id)] = (
                        groups[0].confidence,
                        groups[0].support,
                    )
        for rule in model.rules_:
            row_set = ds.support_set(rule.antecedent)
            covered_same_class = [
                row
                for row in range(ds.n_rows)
                if row_set >> row & 1 and ds.labels[row] == rule.consequent
            ]
            assert covered_same_class
            # The rule's stats equal some covered row's top-1 stats —
            # CBA never deploys a rule that is not top-1 anywhere.
            stats = (rule.confidence, rule.support)
            assert any(
                top1.get((row, rule.consequent)) == stats
                for row in covered_same_class
            )


class TestBoundedOutput:
    """Introduction claim: |TopkRGS| <= k x number of rows."""

    @pytest.mark.parametrize("k", (1, 2, 5))
    def test_output_bounded(self, k, small_random):
        result = mine_topk(small_random, 1, minsup=1, k=k)
        n_class_rows = small_random.class_counts()[1]
        assert len(result.unique_groups()) <= k * n_class_rows

    def test_every_coverable_row_covered(self, small_random):
        """TopkRGS covers every row that any >=minsup group covers."""
        result = mine_topk(small_random, 1, minsup=1, k=1)
        farmer = mine_farmer(small_random, 1, minsup=1)
        coverable = set()
        class_mask = small_random.class_mask(1)
        for group in farmer.groups:
            for row in range(small_random.n_rows):
                if group.row_set >> row & 1 and class_mask >> row & 1:
                    coverable.add(row)
        covered = {
            row for row, groups in result.per_row.items() if groups
        }
        assert covered == coverable
