#!/usr/bin/env python
"""Run the core perf harness and write BENCH_core.json.

Thin wrapper over :mod:`repro.bench` so the bench can run straight from
a checkout (``python benchmarks/bench_runner.py --quick``) without
installing the package; all options are forwarded unchanged, including
``--compare BASELINE`` (regression gate against a committed report) and
``--include-quick`` (fold the CI smoke workloads into a full baseline).
The pytest-benchmark files next to this script cover paper-shape
assertions; this runner owns the serial-vs-parallel trajectory file.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main  # noqa: E402 - path bootstrap above

if __name__ == "__main__":
    raise SystemExit(main())
